//! Umbrella crate for the TrackerSift reproduction.
//!
//! The real functionality lives in the workspace crates; this crate exists
//! so the repository-level examples (`examples/`) and the cross-crate
//! integration tests (`tests/`) have a home, and so downstream users can
//! depend on one crate and get the whole stack re-exported under a single
//! namespace.
//!
//! The pipeline itself is a staged, parallel execution engine:
//! [`trackersift::Study::run`] chains named, individually timed stages
//! (`generate → crawl → label → classify`, see [`trackersift::stage`]),
//! runs the crawl and labeling stages on a worker pool sized by
//! [`crawler::ClusterConfig::workers`], and groups requests by interned
//! [`trackersift::ResourceKey`] symbols instead of per-request strings.
//! Parallel runs are deterministic: they produce byte-identical results to
//! single-threaded runs.
//!
//! For deployment, the study is a producer of serving handles:
//! [`trackersift::Study::sifter`] trains a [`trackersift::Sifter`] that
//! answers per-request verdicts allocation-free, ingests new observations
//! incrementally (`observe` + `commit`), and persists its trained state as
//! a versioned [`trackersift::SifterSnapshot`].

#![warn(missing_docs)]

/// The filter-list engine (EasyList / EasyPrivacy semantics).
pub use filterlist;

/// The synthetic web corpus generator.
pub use websim;

/// The instrumented browser simulator and crawl database.
pub use crawler;

/// The rule-driven URL rewriter behind `Decision::Rewrite`.
pub use rewriter;

/// TrackerSift itself: labeling, hierarchical classification, sensitivity,
/// call-stack analysis, surrogates, breakage.
pub use trackersift;

/// The HTTP/1.1 verdict server over lock-free reader handles.
pub use trackersift_server;

/// The read-only replica fleet driver (delta-snapshot follower loop).
pub use trackersift_replica;

/// The continuous re-crawl loop over an evolving websim web.
pub use scheduler;

/// Commonly used items, re-exported for the examples and tests.
pub mod prelude {
    pub use crawler::{ClusterConfig, CrawlCluster, CrawlDatabase, LoadOptions, PageLoadSimulator};
    pub use filterlist::{FilterEngine, FilterRequest, ListKind, RequestLabel, ResourceType};
    pub use rewriter::{RewriterBuilder, RewrittenUrl, UrlRewriter};
    pub use scheduler::{Scheduler, SchedulerConfig, ScriptKeying};
    pub use trackersift::{
        shard_index, Breakage, Classification, CommitStats, Decision, DecisionRequest,
        DecisionSource, DeltaSnapshot, FollowerState, Granularity, HierarchicalClassifier,
        IngestStats, KeyInterner, Labeler, ObserveOutcome, RatioHistogram, ResourceKey,
        SensitivitySweep, ServiceStats, ShardedReader, ShardedWriter, Sifter, SifterBuilder,
        SifterReader, SifterSnapshot, SifterWriter, SnapshotError, Stage, StageTimings, Study,
        StudyConfig, Thresholds, Verdict, VerdictRequest, VerdictTable,
    };
    pub use trackersift_replica::{ReplicaConfig, ReplicaServer};
    pub use trackersift_server::{
        ReplicaStatus, SchedulerDriver, SchedulerStats, ServerConfig, TickSummary, VerdictServer,
    };
    pub use websim::{
        CorpusGenerator, CorpusProfile, EcosystemMutator, MutationConfig, Purpose, ScriptArchetype,
        WebCorpus,
    };
}
