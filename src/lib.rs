//! Umbrella crate for the TrackerSift reproduction.
//!
//! The real functionality lives in the workspace crates; this crate exists
//! so the repository-level examples (`examples/`) and the cross-crate
//! integration tests (`tests/`) have a home, and so downstream users can
//! depend on one crate and get the whole stack re-exported under a single
//! namespace.

#![warn(missing_docs)]

/// The filter-list engine (EasyList / EasyPrivacy semantics).
pub use filterlist;

/// The synthetic web corpus generator.
pub use websim;

/// The instrumented browser simulator and crawl database.
pub use crawler;

/// TrackerSift itself: labeling, hierarchical classification, sensitivity,
/// call-stack analysis, surrogates, breakage.
pub use trackersift;

/// Commonly used items, re-exported for the examples and tests.
pub mod prelude {
    pub use crawler::{ClusterConfig, CrawlCluster, CrawlDatabase, LoadOptions, PageLoadSimulator};
    pub use filterlist::{FilterEngine, FilterRequest, RequestLabel, ResourceType};
    pub use trackersift::{
        Breakage, Classification, Granularity, HierarchicalClassifier, Labeler, RatioHistogram,
        SensitivitySweep, Study, StudyConfig, Thresholds,
    };
    pub use websim::{CorpusGenerator, CorpusProfile, Purpose, ScriptArchetype, WebCorpus};
}
