//! The crawl database.
//!
//! The paper stores every captured event in a database that the (post hoc,
//! offline) hierarchical analysis then consumes. [`CrawlDatabase`] is that
//! store: one [`SiteCrawl`] per website, holding the site metadata and the
//! raw request events. It serialises to JSON so crawls can be persisted and
//! re-analysed without re-crawling.

use crate::events::RequestWillBeSent;
use crate::json::{object, FromJson, JsonError, ToJson, Value};
use crate::page_load::PageLoadResult;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Everything recorded while crawling one website.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCrawl {
    /// Rank of the site in the crawl list.
    pub rank: usize,
    /// Landing page URL.
    pub page_url: String,
    /// Registrable domain of the site.
    pub site_domain: String,
    /// Every `requestWillBeSent` captured during the load (responses are
    /// dropped here: the analysis never uses them, matching the paper's
    /// pipeline which only needs request metadata and call stacks).
    pub requests: Vec<RequestWillBeSent>,
    /// Simulated page load time in milliseconds.
    pub load_time_ms: u64,
}

impl SiteCrawl {
    /// Build a site crawl record from a page-load result.
    pub fn from_load(
        rank: usize,
        page_url: &str,
        site_domain: &str,
        result: &PageLoadResult,
    ) -> Self {
        SiteCrawl {
            rank,
            page_url: page_url.to_string(),
            site_domain: site_domain.to_string(),
            requests: result.requests().cloned().collect(),
            load_time_ms: result.load_time_ms,
        }
    }

    /// Only the script-initiated requests (what TrackerSift analyses).
    pub fn script_initiated(&self) -> impl Iterator<Item = &RequestWillBeSent> {
        self.requests.iter().filter(|r| r.is_script_initiated())
    }
}

/// The whole crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlDatabase {
    /// Per-site records, ordered by site rank.
    pub sites: Vec<SiteCrawl>,
}

impl CrawlDatabase {
    /// Create an empty database.
    pub fn new() -> Self {
        CrawlDatabase::default()
    }

    /// Number of crawled sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total number of captured requests (script-initiated or not).
    pub fn total_requests(&self) -> usize {
        self.sites.iter().map(|s| s.requests.len()).sum()
    }

    /// Total number of script-initiated requests.
    pub fn script_initiated_requests(&self) -> usize {
        self.sites
            .iter()
            .map(|s| s.script_initiated().count())
            .sum()
    }

    /// Iterate over every captured request with its site.
    pub fn requests(&self) -> impl Iterator<Item = (&SiteCrawl, &RequestWillBeSent)> {
        self.sites
            .iter()
            .flat_map(|s| s.requests.iter().map(move |r| (s, r)))
    }

    /// Add a site record, keeping the database ordered by rank.
    pub fn push(&mut self, site: SiteCrawl) {
        self.sites.push(site);
        self.sites.sort_by_key(|s| s.rank);
    }

    /// Merge another database into this one (used by the cluster to combine
    /// per-worker shards).
    pub fn merge(&mut self, other: CrawlDatabase) {
        self.sites.extend(other.sites);
        self.sites.sort_by_key(|s| s.rank);
    }

    /// Average simulated page load time across sites, in milliseconds.
    pub fn average_load_time_ms(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        self.sites
            .iter()
            .map(|s| s.load_time_ms as f64)
            .sum::<f64>()
            / self.sites.len() as f64
    }

    /// Serialise to JSON (via the deterministic [`crate::json`] codec).
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(self.to_json_value().render())
    }

    /// Deserialise from JSON.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Value::parse(json)?)
    }

    /// Write the database to a file as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        let mut file = std::fs::File::create(path)?;
        file.write_all(json.as_bytes())
    }

    /// Load a database previously written with [`CrawlDatabase::save`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let mut file = std::fs::File::open(path)?;
        let mut json = String::new();
        file.read_to_string(&mut json)?;
        Self::from_json(&json).map_err(std::io::Error::other)
    }
}

impl ToJson for SiteCrawl {
    fn to_json_value(&self) -> Value {
        object(vec![
            ("rank", Value::Number(self.rank as f64)),
            ("page_url", Value::String(self.page_url.clone())),
            ("site_domain", Value::String(self.site_domain.clone())),
            (
                "requests",
                Value::Array(self.requests.iter().map(ToJson::to_json_value).collect()),
            ),
            ("load_time_ms", Value::number_u64(self.load_time_ms)),
        ])
    }
}

impl FromJson for SiteCrawl {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(SiteCrawl {
            rank: value.field("rank")?.as_usize()?,
            page_url: value.field("page_url")?.as_str()?.to_string(),
            site_domain: value.field("site_domain")?.as_str()?.to_string(),
            requests: value
                .field("requests")?
                .as_array()?
                .iter()
                .map(RequestWillBeSent::from_json_value)
                .collect::<Result<_, _>>()?,
            load_time_ms: value.field("load_time_ms")?.as_u64()?,
        })
    }
}

impl ToJson for CrawlDatabase {
    fn to_json_value(&self) -> Value {
        object(vec![(
            "sites",
            Value::Array(self.sites.iter().map(ToJson::to_json_value).collect()),
        )])
    }
}

impl FromJson for CrawlDatabase {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(CrawlDatabase {
            sites: value
                .field("sites")?
                .as_array()?
                .iter()
                .map(SiteCrawl::from_json_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_load::PageLoadSimulator;
    use websim::{CorpusGenerator, CorpusProfile};

    fn db() -> CrawlDatabase {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(20), 3);
        let mut sim = PageLoadSimulator::new(0);
        let mut db = CrawlDatabase::new();
        for site in &corpus.websites {
            let result = sim.load(site);
            db.push(SiteCrawl::from_load(
                site.rank,
                &site.url,
                &site.domain,
                &result,
            ));
        }
        db
    }

    #[test]
    fn database_counts_are_consistent() {
        let db = db();
        assert_eq!(db.site_count(), 20);
        assert!(db.total_requests() > db.script_initiated_requests());
        assert!(db.script_initiated_requests() > 0);
        assert!(db.average_load_time_ms() > 0.0);
    }

    #[test]
    fn database_round_trips_through_json() {
        let db = db();
        let json = db.to_json().unwrap();
        let back = CrawlDatabase::from_json(&json).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn save_and_load_round_trip() {
        let db = db();
        let dir = std::env::temp_dir().join("trackersift-test-db");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crawl.json");
        db.save(&path).unwrap();
        let back = CrawlDatabase::load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_keeps_rank_order() {
        let db = db();
        let mut left = CrawlDatabase::new();
        let mut right = CrawlDatabase::new();
        for (i, site) in db.sites.iter().enumerate() {
            if i % 2 == 0 {
                left.sites.push(site.clone());
            } else {
                right.sites.push(site.clone());
            }
        }
        left.merge(right);
        assert_eq!(left, db);
    }

    #[test]
    fn push_keeps_rank_order() {
        let db = db();
        let mut shuffled = CrawlDatabase::new();
        for site in db.sites.iter().rev() {
            shuffled.push(site.clone());
        }
        assert_eq!(shuffled, db);
    }
}
