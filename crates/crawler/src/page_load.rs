//! Simulated page loads.
//!
//! [`PageLoadSimulator`] plays the role of the instrumented Chrome instance:
//! it walks a [`websim::Website`] description and produces the stream of
//! network events that loading the page would generate — parser-initiated
//! document requests without call stacks, dynamically injected script
//! fetches, and every script-initiated request with its full initiator call
//! stack (including tag-manager ancestry and async-stack prepending).
//!
//! Blocking is modelled the way a content blocker behaves at runtime: a
//! blocked *script* never executes (none of its requests are issued and the
//! features depending on it break); a blocked *request* is simply not sent.
//! This is what the breakage analysis (paper Table 3) exercises.

use crate::events::{CallStack, NetworkEvent, RequestWillBeSent, ResponseReceived, StackFrame};
use filterlist::ResourceType;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use websim::{FeatureImportance, PageScript, ScriptMethodSpec, Website};

/// Options controlling one page load.
#[derive(Debug, Clone, Default)]
pub struct LoadOptions {
    /// Script URLs that are blocked (the script does not execute at all).
    pub blocked_script_urls: HashSet<String>,
    /// Exact request URLs that are blocked (the request is not sent).
    pub blocked_request_urls: HashSet<String>,
}

impl LoadOptions {
    /// No blocking: the control condition.
    pub fn unblocked() -> Self {
        LoadOptions::default()
    }

    /// Block the given script URLs: the treatment condition of the paper's
    /// breakage analysis.
    pub fn blocking_scripts<I, S>(urls: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LoadOptions {
            blocked_script_urls: urls.into_iter().map(Into::into).collect(),
            blocked_request_urls: HashSet::new(),
        }
    }
}

/// The outcome of loading one page.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageLoadResult {
    /// Every network event, in emission order.
    pub events: Vec<NetworkEvent>,
    /// Names of page features that worked during this load.
    pub working_features: Vec<String>,
    /// Names of features that broke (a required script did not execute),
    /// with their importance.
    pub broken_features: Vec<(String, FeatureImportance)>,
    /// Simulated time until the `onLoad` event fired, in milliseconds.
    pub load_time_ms: u64,
}

impl PageLoadResult {
    /// Only the `requestWillBeSent` events.
    pub fn requests(&self) -> impl Iterator<Item = &RequestWillBeSent> {
        self.events.iter().filter_map(|e| match e {
            NetworkEvent::Request(r) => Some(r),
            NetworkEvent::Response(_) => None,
        })
    }

    /// Count of script-initiated requests.
    pub fn script_initiated_count(&self) -> usize {
        self.requests().filter(|r| r.is_script_initiated()).count()
    }
}

/// The page-load simulator. Stateless between loads (the paper's crawler
/// clears all cookies and local state between consecutive crawls).
#[derive(Debug, Clone, Default)]
pub struct PageLoadSimulator {
    next_request_id: u64,
    clock_ms: u64,
}

impl PageLoadSimulator {
    /// Create a simulator whose request ids start at `first_request_id`
    /// (lets the cluster keep ids globally unique without coordination).
    pub fn new(first_request_id: u64) -> Self {
        PageLoadSimulator {
            next_request_id: first_request_id,
            clock_ms: 0,
        }
    }

    /// Load a page without blocking anything.
    pub fn load(&mut self, site: &Website) -> PageLoadResult {
        self.load_with(site, &LoadOptions::unblocked())
    }

    /// Load a page under the given blocking options.
    pub fn load_with(&mut self, site: &Website, options: &LoadOptions) -> PageLoadResult {
        self.clock_ms = 0;
        let mut result = PageLoadResult::default();

        // 1. The document itself.
        self.emit(
            &mut result,
            &site.url,
            site,
            ResourceType::Document,
            CallStack::empty(),
            "text/html",
        );

        // 2. Parser-initiated document requests (no call stack). TrackerSift
        //    excludes these downstream; the browser still fetches them.
        for req in &site.non_script_requests {
            if options.blocked_request_urls.contains(&req.url) {
                continue;
            }
            self.emit(
                &mut result,
                &req.url,
                site,
                req.resource_type,
                CallStack::empty(),
                mime_for(req.resource_type),
            );
        }

        // 3. Which scripts execute? A blocked script never runs. A script
        //    that is only injected by another (blocked) script never runs
        //    either.
        let executed = executed_scripts(site, options);

        // 4. Dynamic script injection: a script listed in `loads_scripts`
        //    of an executing script is fetched *by* that script, so the
        //    fetch itself is a script-initiated request.
        for (loader_idx, loader) in site.scripts.iter().enumerate() {
            if !executed[loader_idx] {
                continue;
            }
            for &loaded_idx in &loader.loads_scripts {
                if !executed[loaded_idx] {
                    continue;
                }
                let loaded_url = site.scripts[loaded_idx].origin.url().to_string();
                if options.blocked_request_urls.contains(&loaded_url) {
                    continue;
                }
                let stack = injection_stack(loader, loader_idx);
                self.emit(
                    &mut result,
                    &loaded_url,
                    site,
                    ResourceType::Script,
                    stack,
                    "application/javascript",
                );
            }
        }

        // 5. Script execution: every method's planned requests, each with
        //    its synthesized call stack.
        for (idx, script) in site.scripts.iter().enumerate() {
            if !executed[idx] {
                continue;
            }
            let ancestor_frames = ancestor_stack(site, idx, &executed);
            for (method_idx, method) in script.methods.iter().enumerate() {
                let caller_chain = caller_chain(script, method_idx);
                for request in &method.requests {
                    if options.blocked_request_urls.contains(&request.url) {
                        continue;
                    }
                    let stack = build_stack(
                        script,
                        method,
                        &caller_chain,
                        &ancestor_frames,
                        request.is_async,
                        request.via_caller.as_deref(),
                    );
                    self.emit(
                        &mut result,
                        &request.url,
                        site,
                        request.resource_type,
                        stack,
                        mime_for(request.resource_type),
                    );
                }
            }
        }

        // 6. Feature outcome (used by the breakage analysis).
        for feature in &site.features {
            let works = feature.required_scripts.iter().all(|&i| executed[i]);
            if works {
                result.working_features.push(feature.name.clone());
            } else {
                result
                    .broken_features
                    .push((feature.name.clone(), feature.importance));
            }
        }

        // The paper reports ~10s average page load; our simulated clock
        // advances ~3ms per request which lands in the same order of
        // magnitude for request-heavy pages without pretending to model
        // real network latency.
        result.load_time_ms = self.clock_ms;
        result
    }

    fn emit(
        &mut self,
        result: &mut PageLoadResult,
        url: &str,
        site: &Website,
        resource_type: ResourceType,
        call_stack: CallStack,
        mime: &str,
    ) {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        self.clock_ms += 3;
        result.events.push(NetworkEvent::Request(RequestWillBeSent {
            request_id,
            top_level_url: site.url.clone(),
            frame_url: site.url.clone(),
            url: url.to_string(),
            resource_type,
            call_stack,
            timestamp_ms: self.clock_ms,
        }));
        self.clock_ms += 2;
        result.events.push(NetworkEvent::Response(ResponseReceived {
            request_id,
            status: 200,
            mime_type: mime.to_string(),
            body_length: 256 + (url.len() as u64) * 7,
            timestamp_ms: self.clock_ms,
        }));
    }
}

/// Which scripts execute under the blocking options. A script executes when
/// its own URL is not blocked AND (it is statically included, i.e. nothing
/// loads it dynamically, OR at least one of its loaders executes).
fn executed_scripts(site: &Website, options: &LoadOptions) -> Vec<bool> {
    let n = site.scripts.len();
    // loaded_by[i] = scripts that dynamically inject script i.
    let mut loaded_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (loader, script) in site.scripts.iter().enumerate() {
        for &loaded in &script.loads_scripts {
            if loaded < n {
                loaded_by[loaded].push(loader);
            }
        }
    }
    // Fixed-point: start by assuming statically-included, unblocked scripts
    // run, then propagate through dynamic injection.
    let mut executed = vec![false; n];
    for (i, script) in site.scripts.iter().enumerate() {
        if loaded_by[i].is_empty() && !options.blocked_script_urls.contains(script.origin.url()) {
            executed[i] = true;
        }
    }
    loop {
        let mut changed = false;
        for (i, script) in site.scripts.iter().enumerate() {
            if executed[i] || loaded_by[i].is_empty() {
                continue;
            }
            if options.blocked_script_urls.contains(script.origin.url()) {
                continue;
            }
            if loaded_by[i].iter().any(|&l| executed[l]) {
                executed[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    executed
}

/// Stack for the fetch of a dynamically injected script.
fn injection_stack(loader: &PageScript, _loader_idx: usize) -> CallStack {
    let url = loader.origin.url();
    let mut frames = Vec::new();
    // The injecting call comes from the loader's first method (bootstrap).
    if let Some(method) = loader.methods.first() {
        frames.push(StackFrame::new(url, method.name.clone(), 1, 1));
    } else {
        frames.push(StackFrame::new(url, "", 1, 1));
    }
    CallStack {
        frames,
        async_boundary: None,
    }
}

/// Frames contributed by the scripts that (transitively) injected `idx`.
fn ancestor_stack(site: &Website, idx: usize, executed: &[bool]) -> Vec<StackFrame> {
    let mut frames = Vec::new();
    let mut current = idx;
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > site.scripts.len() {
            break; // cycle guard; generator never creates cycles
        }
        let loader = site
            .scripts
            .iter()
            .enumerate()
            .find(|(l, s)| executed[*l] && s.loads_scripts.contains(&current))
            .map(|(l, _)| l);
        match loader {
            Some(l) => {
                let loader_script = &site.scripts[l];
                let method_name = loader_script
                    .methods
                    .first()
                    .map(|m| m.name.clone())
                    .unwrap_or_default();
                frames.push(StackFrame::new(
                    loader_script.origin.url(),
                    method_name,
                    1,
                    1,
                ));
                current = l;
            }
            None => break,
        }
    }
    frames
}

/// The chain of callers of `method_idx` within the same script (a method
/// whose `callees` list contains `method_idx`), outermost last.
fn caller_chain(script: &PageScript, method_idx: usize) -> Vec<usize> {
    let mut chain = Vec::new();
    let mut current = method_idx;
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > script.methods.len() {
            break;
        }
        match script
            .methods
            .iter()
            .enumerate()
            .find(|(_, m)| m.callees.contains(&current))
        {
            Some((caller, _)) => {
                chain.push(caller);
                current = caller;
            }
            None => break,
        }
    }
    chain
}

/// Build the full call stack for one request.
fn build_stack(
    script: &PageScript,
    method: &ScriptMethodSpec,
    caller_chain: &[usize],
    ancestor_frames: &[StackFrame],
    is_async: bool,
    via_caller: Option<&str>,
) -> CallStack {
    let url = script.origin.url();
    let mut frames = Vec::new();
    // Innermost: the method issuing the request. Line/column derive from the
    // method's position so they are stable and distinct.
    let method_pos = script
        .methods
        .iter()
        .position(|m| std::ptr::eq(m, method))
        .unwrap_or(0);
    frames.push(StackFrame::new(
        url,
        method.name.clone(),
        (method_pos as u32 + 1) * 10,
        1,
    ));
    // Per-request calling context: the method that invoked this dispatcher
    // for this particular request (shared-transport pattern).
    if let Some(caller) = via_caller {
        if let Some(pos) = script.methods.iter().position(|m| m.name == caller) {
            frames.push(StackFrame::new(
                url,
                caller.to_string(),
                (pos as u32 + 1) * 10,
                1,
            ));
        } else {
            frames.push(StackFrame::new(url, caller.to_string(), 1, 1));
        }
    }
    for &caller in caller_chain {
        let caller_method = &script.methods[caller];
        frames.push(StackFrame::new(
            url,
            caller_method.name.clone(),
            (caller as u32 + 1) * 10,
            1,
        ));
    }
    let sync_len = frames.len();
    frames.extend(ancestor_frames.iter().cloned());
    CallStack {
        frames,
        async_boundary: if is_async { Some(sync_len) } else { None },
    }
}

fn mime_for(ty: ResourceType) -> &'static str {
    match ty {
        ResourceType::Script => "application/javascript",
        ResourceType::Image => "image/png",
        ResourceType::Stylesheet => "text/css",
        ResourceType::Xhr => "application/json",
        ResourceType::Subdocument | ResourceType::Document => "text/html",
        ResourceType::Font => "font/woff2",
        ResourceType::Media => "video/mp4",
        ResourceType::Websocket => "application/octet-stream",
        ResourceType::Ping => "text/plain",
        ResourceType::Other => "application/octet-stream",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::{CorpusGenerator, CorpusProfile, ScriptArchetype};

    fn small_corpus() -> websim::WebCorpus {
        CorpusGenerator::generate(&CorpusProfile::small().with_sites(40), 11)
    }

    #[test]
    fn every_planned_script_request_is_emitted_when_unblocked() {
        let corpus = small_corpus();
        let mut sim = PageLoadSimulator::new(0);
        for site in &corpus.websites {
            let result = sim.load(site);
            assert_eq!(
                result.script_initiated_count(),
                site.script_initiated_request_count() + dynamic_injections(site),
                "site {}",
                site.domain
            );
        }
    }

    fn dynamic_injections(site: &Website) -> usize {
        site.scripts.iter().map(|s| s.loads_scripts.len()).sum()
    }

    #[test]
    fn request_ids_are_unique_and_monotonic() {
        let corpus = small_corpus();
        let mut sim = PageLoadSimulator::new(0);
        let mut last = None;
        for site in &corpus.websites {
            for req in sim
                .load(site)
                .requests()
                .map(|r| r.request_id)
                .collect::<Vec<_>>()
            {
                if let Some(prev) = last {
                    assert!(req > prev);
                }
                last = Some(req);
            }
        }
    }

    #[test]
    fn document_requests_have_no_call_stack() {
        let corpus = small_corpus();
        let mut sim = PageLoadSimulator::new(0);
        let site = &corpus.websites[0];
        let result = sim.load(site);
        let doc_reqs: Vec<_> = result
            .requests()
            .filter(|r| site.non_script_requests.iter().any(|p| p.url == r.url))
            .collect();
        assert!(!doc_reqs.is_empty());
        assert!(doc_reqs.iter().all(|r| !r.is_script_initiated()));
    }

    #[test]
    fn injected_scripts_carry_their_loader_in_the_stack() {
        let corpus = small_corpus();
        let mut sim = PageLoadSimulator::new(0);
        for site in &corpus.websites {
            let loaders: Vec<(usize, &PageScript)> = site
                .scripts
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.loads_scripts.is_empty())
                .collect();
            if loaders.is_empty() {
                continue;
            }
            let result = sim.load(site);
            for (_, loader) in loaders {
                for &loaded in &loader.loads_scripts {
                    let loaded_url = site.scripts[loaded].origin.url();
                    // Every request issued by the loaded script must have the
                    // loader somewhere in its ancestral scripts.
                    let loaded_requests: Vec<_> = result
                        .requests()
                        .filter(|r| r.call_stack.initiator_script() == Some(loaded_url))
                        .collect();
                    for req in loaded_requests {
                        assert!(
                            req.call_stack
                                .ancestral_scripts()
                                .contains(&loader.origin.url()),
                            "request {} lacks loader ancestry",
                            req.url
                        );
                    }
                }
            }
            return; // one site with loaders is enough
        }
    }

    #[test]
    fn async_requests_record_the_boundary() {
        let corpus = small_corpus();
        let mut sim = PageLoadSimulator::new(0);
        let mut seen_async = false;
        for site in &corpus.websites {
            let result = sim.load(site);
            for req in result.requests() {
                if let Some(boundary) = req.call_stack.async_boundary {
                    assert!(boundary <= req.call_stack.frames.len());
                    assert!(boundary >= 1);
                    seen_async = true;
                }
            }
        }
        assert!(seen_async, "corpus should contain async requests");
    }

    #[test]
    fn blocking_a_script_suppresses_its_requests_and_breaks_features() {
        let corpus = small_corpus();
        let mut sim = PageLoadSimulator::new(0);
        // Find a site with a feature depending on its first script.
        let site = corpus
            .websites
            .iter()
            .find(|s| s.features.iter().any(|f| f.required_scripts.contains(&0)))
            .expect("some site depends on its app script");
        let app_url = site.scripts[0].origin.url().to_string();

        let control = sim.load(site);
        let treatment = sim.load_with(site, &LoadOptions::blocking_scripts([app_url.clone()]));

        assert!(control.broken_features.is_empty());
        assert!(!treatment.broken_features.is_empty());
        assert!(treatment.script_initiated_count() < control.script_initiated_count());
        // None of the blocked script's requests were sent.
        assert!(treatment
            .requests()
            .all(|r| r.call_stack.initiator_script() != Some(app_url.as_str())));
    }

    #[test]
    fn blocking_an_individual_request_url_only_drops_that_request() {
        let corpus = small_corpus();
        let mut sim = PageLoadSimulator::new(0);
        let site = &corpus.websites[1];
        let control = sim.load(site);
        let victim = control
            .requests()
            .find(|r| r.is_script_initiated())
            .map(|r| r.url.clone())
            .expect("site has script-initiated requests");
        let mut opts = LoadOptions::unblocked();
        opts.blocked_request_urls.insert(victim.clone());
        let treatment = sim.load_with(site, &opts);
        assert!(treatment
            .requests()
            .all(|r| r.url != victim || !r.is_script_initiated()));
        assert!(treatment.events.len() < control.events.len());
    }

    #[test]
    fn mixed_scripts_issue_both_kinds_of_planned_intent() {
        // Sanity link between websim ground truth and the simulator output.
        let corpus = small_corpus();
        let site = corpus
            .websites
            .iter()
            .find(|s| {
                s.scripts
                    .iter()
                    .any(|sc| sc.archetype == ScriptArchetype::Mixed)
            })
            .expect("corpus contains mixed scripts");
        let mixed = site
            .scripts
            .iter()
            .find(|sc| sc.archetype == ScriptArchetype::Mixed)
            .unwrap();
        let mut sim = PageLoadSimulator::new(0);
        let result = sim.load(site);
        let urls: Vec<&str> = mixed
            .planned_requests()
            .map(|(_, r)| r.url.as_str())
            .collect();
        let emitted = result
            .requests()
            .filter(|r| urls.contains(&r.url.as_str()))
            .count();
        assert_eq!(emitted, urls.len());
    }
}
