//! DevTools-style network events.
//!
//! The paper's crawler is a purpose-built Chrome extension listening to two
//! DevTools network events: `requestWillBeSent` (request metadata plus the
//! initiator call stack) and `responseReceived` (response metadata). These
//! types mirror the fields §3 enumerates: a unique `request_id`, the page's
//! `top_level_url`, the `frame_url`, the `resource_type`, a timestamp, and a
//! `call_stack` object with the initiator information and the stack trace
//! for script-initiated requests.

use filterlist::ResourceType;
use serde::{Deserialize, Serialize};

/// One frame of a JavaScript call stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StackFrame {
    /// URL of the script the frame belongs to (for inline scripts this is
    /// the document URL, exactly as DevTools reports it).
    pub script_url: String,
    /// Function (method) name; empty for anonymous frames.
    pub function_name: String,
    /// 1-based line number within the script (synthetic but stable).
    pub line: u32,
    /// 1-based column number within the script (synthetic but stable).
    pub column: u32,
}

impl StackFrame {
    /// Construct a frame.
    pub fn new(
        script_url: impl Into<String>,
        function_name: impl Into<String>,
        line: u32,
        column: u32,
    ) -> Self {
        StackFrame {
            script_url: script_url.into(),
            function_name: function_name.into(),
            line,
            column,
        }
    }
}

/// The initiator call stack attached to a script-initiated request.
///
/// `frames[0]` is the innermost frame — the method that actually issued the
/// request — matching DevTools ordering. For asynchronous requests the stack
/// that *preceded* the asynchronous hop is appended after the synchronous
/// frames (the paper: "the stack trace that preceded the request is
/// prepended" to the ancestry), with `async_boundary` recording where the
/// synchronous portion ends.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CallStack {
    /// Stack frames, innermost first.
    pub frames: Vec<StackFrame>,
    /// Index of the first frame that belongs to the asynchronous parent
    /// stack, if the request was issued from an async continuation.
    pub async_boundary: Option<usize>,
}

impl CallStack {
    /// An empty stack (used for requests that are not script-initiated).
    pub fn empty() -> Self {
        CallStack::default()
    }

    /// `true` when there is at least one script frame.
    pub fn is_script_initiated(&self) -> bool {
        !self.frames.is_empty()
    }

    /// The innermost frame (the method that issued the request).
    pub fn initiator_frame(&self) -> Option<&StackFrame> {
        self.frames.first()
    }

    /// The URL of the script that issued the request (innermost frame).
    pub fn initiator_script(&self) -> Option<&str> {
        self.initiator_frame().map(|f| f.script_url.as_str())
    }

    /// All distinct script URLs appearing anywhere in the stack, innermost
    /// first — the "ancestral scripts" the paper also labels.
    pub fn ancestral_scripts(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for frame in &self.frames {
            if !seen.contains(&frame.script_url.as_str()) {
                seen.push(frame.script_url.as_str());
            }
        }
        seen
    }
}

/// The `requestWillBeSent` event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestWillBeSent {
    /// Unique identifier of the request within the crawl.
    pub request_id: u64,
    /// URL of the page being crawled.
    pub top_level_url: String,
    /// URL of the document (frame) the request was issued from.
    pub frame_url: String,
    /// The request URL.
    pub url: String,
    /// Resource type reported by the browser.
    pub resource_type: ResourceType,
    /// Initiator call stack (empty for parser-initiated requests).
    pub call_stack: CallStack,
    /// Milliseconds since the start of the page load (simulated clock).
    pub timestamp_ms: u64,
}

impl RequestWillBeSent {
    /// `true` when a script initiated this request (the only requests the
    /// paper's analysis keeps).
    pub fn is_script_initiated(&self) -> bool {
        self.call_stack.is_script_initiated()
    }
}

/// The `responseReceived` event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseReceived {
    /// Identifier matching the corresponding [`RequestWillBeSent`].
    pub request_id: u64,
    /// HTTP status code (the simulator answers 200 unless the resource was
    /// blocked, in which case no response event is emitted at all).
    pub status: u16,
    /// Response MIME type.
    pub mime_type: String,
    /// Size of the response body in bytes (synthetic).
    pub body_length: u64,
    /// Milliseconds since the start of the page load.
    pub timestamp_ms: u64,
}

/// A network event: either request or response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkEvent {
    /// A request is about to be sent.
    Request(RequestWillBeSent),
    /// A response arrived.
    Response(ResponseReceived),
}

impl NetworkEvent {
    /// The request id the event refers to.
    pub fn request_id(&self) -> u64 {
        match self {
            NetworkEvent::Request(r) => r.request_id,
            NetworkEvent::Response(r) => r.request_id,
        }
    }
}

mod codec {
    //! JSON codec impls for the event types (see [`crate::json`]).
    use super::{CallStack, NetworkEvent, RequestWillBeSent, ResponseReceived, StackFrame};
    use crate::json::{object, FromJson, JsonError, ToJson, Value};
    use filterlist::ResourceType;

    fn resource_type_from_name(name: &str) -> Result<ResourceType, JsonError> {
        ResourceType::ALL
            .iter()
            .copied()
            .find(|t| t.option_name() == name)
            .ok_or_else(|| JsonError(format!("unknown resource type `{name}`")))
    }

    impl ToJson for StackFrame {
        fn to_json_value(&self) -> Value {
            object(vec![
                ("script_url", Value::String(self.script_url.clone())),
                ("function_name", Value::String(self.function_name.clone())),
                ("line", Value::Number(self.line as f64)),
                ("column", Value::Number(self.column as f64)),
            ])
        }
    }

    impl FromJson for StackFrame {
        fn from_json_value(value: &Value) -> Result<Self, JsonError> {
            Ok(StackFrame {
                script_url: value.field("script_url")?.as_str()?.to_string(),
                function_name: value.field("function_name")?.as_str()?.to_string(),
                line: value.field("line")?.as_u32()?,
                column: value.field("column")?.as_u32()?,
            })
        }
    }

    impl ToJson for CallStack {
        fn to_json_value(&self) -> Value {
            let frames = Value::Array(self.frames.iter().map(ToJson::to_json_value).collect());
            let boundary = match self.async_boundary {
                Some(i) => Value::Number(i as f64),
                None => Value::Null,
            };
            object(vec![("frames", frames), ("async_boundary", boundary)])
        }
    }

    impl FromJson for CallStack {
        fn from_json_value(value: &Value) -> Result<Self, JsonError> {
            let frames = value
                .field("frames")?
                .as_array()?
                .iter()
                .map(StackFrame::from_json_value)
                .collect::<Result<_, _>>()?;
            let async_boundary = match value.field("async_boundary")? {
                Value::Null => None,
                number => Some(number.as_usize()?),
            };
            Ok(CallStack {
                frames,
                async_boundary,
            })
        }
    }

    impl ToJson for RequestWillBeSent {
        fn to_json_value(&self) -> Value {
            object(vec![
                ("request_id", Value::number_u64(self.request_id)),
                ("top_level_url", Value::String(self.top_level_url.clone())),
                ("frame_url", Value::String(self.frame_url.clone())),
                ("url", Value::String(self.url.clone())),
                (
                    "resource_type",
                    Value::String(self.resource_type.option_name().to_string()),
                ),
                ("call_stack", self.call_stack.to_json_value()),
                ("timestamp_ms", Value::number_u64(self.timestamp_ms)),
            ])
        }
    }

    impl FromJson for RequestWillBeSent {
        fn from_json_value(value: &Value) -> Result<Self, JsonError> {
            Ok(RequestWillBeSent {
                request_id: value.field("request_id")?.as_u64()?,
                top_level_url: value.field("top_level_url")?.as_str()?.to_string(),
                frame_url: value.field("frame_url")?.as_str()?.to_string(),
                url: value.field("url")?.as_str()?.to_string(),
                resource_type: resource_type_from_name(value.field("resource_type")?.as_str()?)?,
                call_stack: CallStack::from_json_value(value.field("call_stack")?)?,
                timestamp_ms: value.field("timestamp_ms")?.as_u64()?,
            })
        }
    }

    impl ToJson for ResponseReceived {
        fn to_json_value(&self) -> Value {
            object(vec![
                ("request_id", Value::number_u64(self.request_id)),
                ("status", Value::Number(self.status as f64)),
                ("mime_type", Value::String(self.mime_type.clone())),
                ("body_length", Value::number_u64(self.body_length)),
                ("timestamp_ms", Value::number_u64(self.timestamp_ms)),
            ])
        }
    }

    impl FromJson for ResponseReceived {
        fn from_json_value(value: &Value) -> Result<Self, JsonError> {
            Ok(ResponseReceived {
                request_id: value.field("request_id")?.as_u64()?,
                status: value.field("status")?.as_u16()?,
                mime_type: value.field("mime_type")?.as_str()?.to_string(),
                body_length: value.field("body_length")?.as_u64()?,
                timestamp_ms: value.field("timestamp_ms")?.as_u64()?,
            })
        }
    }

    impl ToJson for NetworkEvent {
        fn to_json_value(&self) -> Value {
            // Externally tagged, matching serde's default enum representation.
            match self {
                NetworkEvent::Request(r) => object(vec![("Request", r.to_json_value())]),
                NetworkEvent::Response(r) => object(vec![("Response", r.to_json_value())]),
            }
        }
    }

    impl FromJson for NetworkEvent {
        fn from_json_value(value: &Value) -> Result<Self, JsonError> {
            if let Some(request) = value.get("Request") {
                Ok(NetworkEvent::Request(RequestWillBeSent::from_json_value(
                    request,
                )?))
            } else if let Some(response) = value.get("Response") {
                Ok(NetworkEvent::Response(ResponseReceived::from_json_value(
                    response,
                )?))
            } else {
                Err(JsonError("expected `Request` or `Response` variant".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, ToJson};

    fn stack() -> CallStack {
        CallStack {
            frames: vec![
                StackFrame::new("https://cdn.x.com/clone.js", "m2", 10, 4),
                StackFrame::new("https://cdn.x.com/clone.js", "init", 2, 1),
                StackFrame::new("https://tm.example/gtm.js?id=1", "bootstrap", 1, 1),
            ],
            async_boundary: None,
        }
    }

    #[test]
    fn initiator_is_innermost_frame() {
        let s = stack();
        assert_eq!(s.initiator_frame().unwrap().function_name, "m2");
        assert_eq!(s.initiator_script().unwrap(), "https://cdn.x.com/clone.js");
    }

    #[test]
    fn ancestral_scripts_deduplicate_in_order() {
        let s = stack();
        assert_eq!(
            s.ancestral_scripts(),
            vec![
                "https://cdn.x.com/clone.js",
                "https://tm.example/gtm.js?id=1"
            ]
        );
    }

    #[test]
    fn empty_stack_is_not_script_initiated() {
        assert!(!CallStack::empty().is_script_initiated());
        assert!(stack().is_script_initiated());
    }

    #[test]
    fn events_round_trip_through_json() {
        let ev = NetworkEvent::Request(RequestWillBeSent {
            request_id: 7,
            top_level_url: "https://site.com/".into(),
            frame_url: "https://site.com/".into(),
            url: "https://t.co/collect?v=1&x=1".into(),
            resource_type: ResourceType::Xhr,
            call_stack: stack(),
            timestamp_ms: 120,
        });
        let json = ev.to_json_value().render();
        let back =
            NetworkEvent::from_json_value(&crate::json::Value::parse(&json).unwrap()).unwrap();
        assert_eq!(ev, back);
        assert_eq!(back.request_id(), 7);
    }
}
