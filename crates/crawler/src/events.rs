//! DevTools-style network events.
//!
//! The paper's crawler is a purpose-built Chrome extension listening to two
//! DevTools network events: `requestWillBeSent` (request metadata plus the
//! initiator call stack) and `responseReceived` (response metadata). These
//! types mirror the fields §3 enumerates: a unique `request_id`, the page's
//! `top_level_url`, the `frame_url`, the `resource_type`, a timestamp, and a
//! `call_stack` object with the initiator information and the stack trace
//! for script-initiated requests.

use filterlist::ResourceType;
use serde::{Deserialize, Serialize};

/// One frame of a JavaScript call stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StackFrame {
    /// URL of the script the frame belongs to (for inline scripts this is
    /// the document URL, exactly as DevTools reports it).
    pub script_url: String,
    /// Function (method) name; empty for anonymous frames.
    pub function_name: String,
    /// 1-based line number within the script (synthetic but stable).
    pub line: u32,
    /// 1-based column number within the script (synthetic but stable).
    pub column: u32,
}

impl StackFrame {
    /// Construct a frame.
    pub fn new(script_url: impl Into<String>, function_name: impl Into<String>, line: u32, column: u32) -> Self {
        StackFrame {
            script_url: script_url.into(),
            function_name: function_name.into(),
            line,
            column,
        }
    }
}

/// The initiator call stack attached to a script-initiated request.
///
/// `frames[0]` is the innermost frame — the method that actually issued the
/// request — matching DevTools ordering. For asynchronous requests the stack
/// that *preceded* the asynchronous hop is appended after the synchronous
/// frames (the paper: "the stack trace that preceded the request is
/// prepended" to the ancestry), with `async_boundary` recording where the
/// synchronous portion ends.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CallStack {
    /// Stack frames, innermost first.
    pub frames: Vec<StackFrame>,
    /// Index of the first frame that belongs to the asynchronous parent
    /// stack, if the request was issued from an async continuation.
    pub async_boundary: Option<usize>,
}

impl CallStack {
    /// An empty stack (used for requests that are not script-initiated).
    pub fn empty() -> Self {
        CallStack::default()
    }

    /// `true` when there is at least one script frame.
    pub fn is_script_initiated(&self) -> bool {
        !self.frames.is_empty()
    }

    /// The innermost frame (the method that issued the request).
    pub fn initiator_frame(&self) -> Option<&StackFrame> {
        self.frames.first()
    }

    /// The URL of the script that issued the request (innermost frame).
    pub fn initiator_script(&self) -> Option<&str> {
        self.initiator_frame().map(|f| f.script_url.as_str())
    }

    /// All distinct script URLs appearing anywhere in the stack, innermost
    /// first — the "ancestral scripts" the paper also labels.
    pub fn ancestral_scripts(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for frame in &self.frames {
            if !seen.contains(&frame.script_url.as_str()) {
                seen.push(frame.script_url.as_str());
            }
        }
        seen
    }
}

/// The `requestWillBeSent` event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestWillBeSent {
    /// Unique identifier of the request within the crawl.
    pub request_id: u64,
    /// URL of the page being crawled.
    pub top_level_url: String,
    /// URL of the document (frame) the request was issued from.
    pub frame_url: String,
    /// The request URL.
    pub url: String,
    /// Resource type reported by the browser.
    pub resource_type: ResourceType,
    /// Initiator call stack (empty for parser-initiated requests).
    pub call_stack: CallStack,
    /// Milliseconds since the start of the page load (simulated clock).
    pub timestamp_ms: u64,
}

impl RequestWillBeSent {
    /// `true` when a script initiated this request (the only requests the
    /// paper's analysis keeps).
    pub fn is_script_initiated(&self) -> bool {
        self.call_stack.is_script_initiated()
    }
}

/// The `responseReceived` event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseReceived {
    /// Identifier matching the corresponding [`RequestWillBeSent`].
    pub request_id: u64,
    /// HTTP status code (the simulator answers 200 unless the resource was
    /// blocked, in which case no response event is emitted at all).
    pub status: u16,
    /// Response MIME type.
    pub mime_type: String,
    /// Size of the response body in bytes (synthetic).
    pub body_length: u64,
    /// Milliseconds since the start of the page load.
    pub timestamp_ms: u64,
}

/// A network event: either request or response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkEvent {
    /// A request is about to be sent.
    Request(RequestWillBeSent),
    /// A response arrived.
    Response(ResponseReceived),
}

impl NetworkEvent {
    /// The request id the event refers to.
    pub fn request_id(&self) -> u64 {
        match self {
            NetworkEvent::Request(r) => r.request_id,
            NetworkEvent::Response(r) => r.request_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> CallStack {
        CallStack {
            frames: vec![
                StackFrame::new("https://cdn.x.com/clone.js", "m2", 10, 4),
                StackFrame::new("https://cdn.x.com/clone.js", "init", 2, 1),
                StackFrame::new("https://tm.example/gtm.js?id=1", "bootstrap", 1, 1),
            ],
            async_boundary: None,
        }
    }

    #[test]
    fn initiator_is_innermost_frame() {
        let s = stack();
        assert_eq!(s.initiator_frame().unwrap().function_name, "m2");
        assert_eq!(s.initiator_script().unwrap(), "https://cdn.x.com/clone.js");
    }

    #[test]
    fn ancestral_scripts_deduplicate_in_order() {
        let s = stack();
        assert_eq!(
            s.ancestral_scripts(),
            vec!["https://cdn.x.com/clone.js", "https://tm.example/gtm.js?id=1"]
        );
    }

    #[test]
    fn empty_stack_is_not_script_initiated() {
        assert!(!CallStack::empty().is_script_initiated());
        assert!(stack().is_script_initiated());
    }

    #[test]
    fn events_round_trip_through_serde() {
        let ev = NetworkEvent::Request(RequestWillBeSent {
            request_id: 7,
            top_level_url: "https://site.com/".into(),
            frame_url: "https://site.com/".into(),
            url: "https://t.co/collect?v=1&x=1".into(),
            resource_type: ResourceType::Xhr,
            call_stack: stack(),
            timestamp_ms: 120,
        });
        let json = serde_json::to_string(&ev).unwrap();
        let back: NetworkEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
        assert_eq!(back.request_id(), 7);
    }
}
