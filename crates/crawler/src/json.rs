//! A small, dependency-free JSON codec for crawl persistence.
//!
//! The build environment has no access to a crate registry, so the crawl
//! database serialises through this hand-rolled codec instead of
//! `serde_json`. The format is plain JSON — objects keep insertion order and
//! the writer is deterministic, so equal databases always render to equal
//! bytes (a property the persistence tests rely on). The [`ToJson`] /
//! [`FromJson`] traits are implemented by the event and database types in
//! [`crate::events`] and [`crate::database`].

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; all persisted integers fit 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for deterministic output.
    Object(Vec<(String, Value)>),
}

/// Errors from parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(message.into()))
}

/// Types that render to a JSON [`Value`].
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json_value(&self) -> Value;
}

/// Types that decode from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Decode from a JSON node.
    fn from_json_value(value: &Value) -> Result<Self, JsonError>;
}

impl Value {
    /// A number from an unsigned integer, checked for exact `f64`
    /// representability. The codec stores numbers as `f64`, so integers
    /// above 2^53 would silently round on round-trip; refusing them at
    /// encode time keeps the "equal databases render to equal bytes"
    /// guarantee honest.
    ///
    /// # Panics
    /// Panics if `value` exceeds 2^53.
    pub fn number_u64(value: u64) -> Value {
        assert!(
            value <= 1 << 53,
            "integer {value} exceeds 2^53 and is not exactly representable in JSON"
        );
        Value::Number(value as f64)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// The value as a u64 (integral, in range).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Ok(*n as u64)
            }
            other => err(format!("expected unsigned integer, got {other:?}")),
        }
    }

    /// The value as a usize.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as a u32.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        let n = self.as_u64()?;
        u32::try_from(n).map_err(|_| JsonError(format!("{n} out of u32 range")))
    }

    /// The value as a u16.
    pub fn as_u16(&self) -> Result<u16, JsonError> {
        let n = self.as_u64()?;
        u16::try_from(n).map_err(|_| JsonError(format!("{n} out of u16 range")))
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::String(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                assert!(
                    n.is_finite(),
                    "non-finite number {n} is not representable in JSON"
                );
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Crawl databases nest four
/// levels deep; the limit only exists so corrupted or hostile input returns
/// a [`JsonError`] instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::parse_object),
            Some(b'[') => self.nested(Parser::parse_array),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => err(format!("unexpected input {other:?} at byte {}", self.pos)),
        }
    }

    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<Value, JsonError>,
    ) -> Result<Value, JsonError> {
        if self.depth >= MAX_DEPTH {
            return err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid utf-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Copy the literal run up to the next quote or escape in one
            // validated chunk (multi-byte UTF-8 units are all >= 0x80 and
            // can never collide with `"` or `\`, so a byte scan is safe and
            // string parsing stays linear in the document size).
            let run_start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if run_start < self.pos {
                let chunk = std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                out.push_str(chunk);
            }
            let Some(&b) = self.bytes.get(self.pos) else {
                return err("unterminated string");
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return err("invalid low surrogate");
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return err(format!("invalid code point {code:#x}")),
                            }
                        }
                        other => return err(format!("invalid escape `\\{}`", char::from(other))),
                    }
                }
                _ => unreachable!("the literal-run scan stops only at `\"` or `\\`"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("invalid utf-8 in \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| JsonError(format!("invalid hex `{hex}`")))
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

/// Convenience: build an object value.
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let value = Value::parse(text).unwrap();
            assert_eq!(value.render(), text);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":"x","c":null}],"d":true}"#;
        let value = Value::parse(text).unwrap();
        assert_eq!(value.render(), text);
        assert_eq!(value.field("d").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "quote\" slash\\ newline\n tab\t unicode é 中 🦀";
        let mut rendered = String::new();
        render_string(original, &mut rendered);
        let back = Value::parse(&rendered).unwrap();
        assert_eq!(back.as_str().unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_parse() {
        let value = Value::parse("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(value.as_str().unwrap(), "🦀");
    }

    #[test]
    fn errors_are_reported() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("nulL").is_err());
        assert!(Value::parse("{}extra").is_err());
        assert!(Value::parse("\"\\q\"").is_err());
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        let hostile = "[".repeat(100_000);
        let error = Value::parse(&hostile).unwrap_err();
        assert!(error.0.contains("nesting"), "{error}");
        // Legitimate nesting well past the crawl format's four levels works.
        let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Value::parse(&deep).is_ok());
    }

    #[test]
    fn out_of_range_scalars_error_on_decode() {
        assert!(Value::parse("65736").unwrap().as_u16().is_err());
        assert!(Value::parse("65535").unwrap().as_u16().is_ok());
        assert!(Value::parse("-1").unwrap().as_u64().is_err());
    }

    #[test]
    #[should_panic(expected = "2^53")]
    fn unrepresentable_integers_are_refused_at_encode_time() {
        let _ = Value::number_u64((1u64 << 53) + 1);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let value = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(value.render(), r#"{"a":[1,2]}"#);
    }
}
