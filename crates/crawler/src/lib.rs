//! # crawler — an instrumented browser simulator for TrackerSift
//!
//! The paper collects its data with Selenium-driven Chrome plus a
//! purpose-built extension that records `requestWillBeSent` /
//! `responseReceived` DevTools events, including the initiator call stack of
//! every script-initiated request, across a 13-node crawling cluster. This
//! crate reproduces that measurement substrate against the synthetic corpus
//! from `websim`:
//!
//! * [`events`] — the DevTools-style event types ([`RequestWillBeSent`],
//!   [`ResponseReceived`], [`CallStack`], [`StackFrame`]);
//! * [`page_load`] — the per-page simulator that turns a
//!   [`websim::Website`] into an event stream (with tag-manager ancestry,
//!   async-stack prepending, and optional script/request blocking for
//!   breakage experiments);
//! * [`cluster`] — the parallel, stateless crawl orchestrator;
//! * [`database`] — the crawl database the offline analysis consumes, with
//!   JSON persistence.
//!
//! ```
//! use crawler::{ClusterConfig, CrawlCluster};
//! use websim::{CorpusGenerator, CorpusProfile};
//!
//! let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(10), 1);
//! let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
//! assert_eq!(db.site_count(), 10);
//! assert!(db.script_initiated_requests() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod database;
pub mod events;
pub mod json;
pub mod page_load;

pub use cluster::{with_worker_pool, ClusterConfig, CrawlCluster, CrawlSummary};
pub use database::{CrawlDatabase, SiteCrawl};
pub use events::{CallStack, NetworkEvent, RequestWillBeSent, ResponseReceived, StackFrame};
pub use page_load::{LoadOptions, PageLoadResult, PageLoadSimulator};
