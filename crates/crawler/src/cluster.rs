//! Parallel crawl orchestration.
//!
//! The paper's crawl ran on a 13-node cluster, each node crawling a disjoint
//! subset of the 100K sites inside its own Docker container, statelessly
//! (all browser state cleared between consecutive page loads). The
//! [`CrawlCluster`] reproduces that shape in-process with a rayon data-parallel
//! map: each site is loaded by its own [`PageLoadSimulator`] (fresh state per
//! page) on a pool sized by [`ClusterConfig::workers`] — the `--threads`-style
//! knob of the pipeline. Each site's request-id space is derived from its rank
//! and results are re-assembled in rank order, so the output is byte-identical
//! regardless of worker count or scheduling — a property the tests assert.

use crate::database::{CrawlDatabase, SiteCrawl};
use crate::page_load::{LoadOptions, PageLoadSimulator};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use websim::WebCorpus;

/// Configuration for a crawl.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker threads ("nodes"). Defaults to the number of
    /// available CPUs, capped at 13 in homage to the paper's cluster.
    pub workers: usize,
    /// Base request id; each site's ids are offset deterministically from it.
    pub base_request_id: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ClusterConfig {
            workers: cpus.clamp(1, 13),
            base_request_id: 0,
        }
    }
}

impl ClusterConfig {
    /// A single-threaded configuration (useful for debugging and as the
    /// reference the parallel runs are compared against).
    pub fn sequential() -> Self {
        ClusterConfig {
            workers: 1,
            base_request_id: 0,
        }
    }

    /// Set the number of workers.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// `--threads`-style alias for [`ClusterConfig::with_workers`]: the same
    /// knob governs the crawl pool and the parallel labeling stage.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_workers(threads)
    }
}

/// Summary statistics of a finished crawl.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrawlSummary {
    /// Sites crawled.
    pub sites: usize,
    /// Total requests captured.
    pub total_requests: usize,
    /// Script-initiated requests captured.
    pub script_initiated_requests: usize,
    /// Average simulated page load time (ms).
    pub average_load_time_ms: f64,
    /// Workers used.
    pub workers: usize,
}

/// The parallel crawler.
#[derive(Debug, Clone, Default)]
pub struct CrawlCluster {
    config: ClusterConfig,
}

/// Run `op` on a rayon pool of `workers` threads (0 = the ambient default).
///
/// Shared by the crawl and labeling stages so the degradation policy lives
/// in one place: if pool construction fails (resource exhaustion), `op`
/// runs on the ambient rayon threads rather than aborting.
pub fn with_worker_pool<R>(workers: usize, op: impl FnOnce() -> R) -> R {
    match rayon::ThreadPoolBuilder::new().num_threads(workers).build() {
        Ok(pool) => pool.install(op),
        Err(_) => op(),
    }
}

impl CrawlCluster {
    /// Create a cluster with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        CrawlCluster { config }
    }

    /// Crawl every website in the corpus with no blocking.
    pub fn crawl(&self, corpus: &WebCorpus) -> CrawlDatabase {
        self.crawl_with(corpus, &LoadOptions::unblocked())
    }

    /// Crawl every website under the given blocking options.
    ///
    /// Each site's request ids are derived from its rank, so results do not
    /// depend on scheduling.
    pub fn crawl_with(&self, corpus: &WebCorpus, options: &LoadOptions) -> CrawlDatabase {
        if corpus.websites.is_empty() {
            return CrawlDatabase::new();
        }
        let workers = self.config.workers.min(corpus.websites.len()).max(1);
        if workers == 1 {
            return self.crawl_sequential(corpus, options);
        }

        let base = self.config.base_request_id;
        let crawl_all = || {
            corpus
                .websites
                .par_iter()
                .map(|site| {
                    // A fresh simulator per page load = stateless crawling.
                    // Request-id space is partitioned by rank so ids are
                    // globally unique and deterministic.
                    let mut sim = PageLoadSimulator::new(base + (site.rank as u64) * 1_000_000);
                    let result = sim.load_with(site, options);
                    SiteCrawl::from_load(site.rank, &site.url, &site.domain, &result)
                })
                .collect::<Vec<SiteCrawl>>()
        };
        let sites = with_worker_pool(workers, crawl_all);
        let mut db = CrawlDatabase { sites };
        db.sites.sort_by_key(|s| s.rank);
        db
    }

    fn crawl_sequential(&self, corpus: &WebCorpus, options: &LoadOptions) -> CrawlDatabase {
        let mut db = CrawlDatabase::new();
        for site in &corpus.websites {
            let mut sim = PageLoadSimulator::new(
                self.config.base_request_id + (site.rank as u64) * 1_000_000,
            );
            let result = sim.load_with(site, options);
            db.sites.push(SiteCrawl::from_load(
                site.rank,
                &site.url,
                &site.domain,
                &result,
            ));
        }
        db.sites.sort_by_key(|s| s.rank);
        db
    }

    /// Crawl and also compute summary statistics.
    pub fn crawl_with_summary(&self, corpus: &WebCorpus) -> (CrawlDatabase, CrawlSummary) {
        let db = self.crawl(corpus);
        let summary = CrawlSummary {
            sites: db.site_count(),
            total_requests: db.total_requests(),
            script_initiated_requests: db.script_initiated_requests(),
            average_load_time_ms: db.average_load_time_ms(),
            workers: self.config.workers,
        };
        (db, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::{CorpusGenerator, CorpusProfile};

    fn corpus(sites: usize) -> WebCorpus {
        CorpusGenerator::generate(&CorpusProfile::small().with_sites(sites), 23)
    }

    #[test]
    fn parallel_crawl_equals_sequential_crawl() {
        let corpus = corpus(60);
        let sequential = CrawlCluster::new(ClusterConfig::sequential()).crawl(&corpus);
        let parallel = CrawlCluster::new(ClusterConfig::default().with_workers(8)).crawl(&corpus);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn crawl_covers_every_site_exactly_once() {
        let corpus = corpus(35);
        let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
        assert_eq!(db.site_count(), 35);
        let mut ranks: Vec<usize> = db.sites.iter().map(|s| s.rank).collect();
        ranks.dedup();
        assert_eq!(ranks, (0..35).collect::<Vec<_>>());
    }

    #[test]
    fn request_ids_are_globally_unique() {
        let corpus = corpus(30);
        let db = CrawlCluster::new(ClusterConfig::default().with_workers(4)).crawl(&corpus);
        let mut ids: Vec<u64> = db.requests().map(|(_, r)| r.request_id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn summary_matches_database() {
        let corpus = corpus(25);
        let (db, summary) = CrawlCluster::new(ClusterConfig::default()).crawl_with_summary(&corpus);
        assert_eq!(summary.sites, db.site_count());
        assert_eq!(summary.total_requests, db.total_requests());
        assert_eq!(
            summary.script_initiated_requests,
            db.script_initiated_requests()
        );
    }

    #[test]
    fn empty_corpus_yields_empty_database() {
        let corpus = WebCorpus {
            websites: vec![],
            ecosystem: Default::default(),
            seed: 0,
        };
        let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
        assert_eq!(db.site_count(), 0);
    }
}
