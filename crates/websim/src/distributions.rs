//! Heavy-tailed samplers used by the corpus generator.
//!
//! Web measurements are dominated by heavy tails: a handful of third-party
//! services appear on most pages while thousands appear on a few; request
//! counts per resource follow similar skew. We implement the samplers we
//! need directly on top of `rand` (Zipf via rejection-inversion would be
//! overkill at our sizes, so we precompute the CDF; log-normal via
//! Box–Muller) rather than adding a `rand_distr` dependency.

use rand::Rng;

/// A Zipf-like discrete distribution over ranks `0..n` with exponent `s`.
///
/// Rank 0 is the most popular. Sampling is by binary search over the
/// precomputed cumulative weights, O(log n) per draw.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `n` ranks with exponent `s`
    /// (`s ≈ 1.0` matches classic web popularity curves).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank as f64 + 1.0).powf(s));
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` if the distribution has no ranks (never constructible).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// The probability mass of a rank (useful for tests).
    pub fn pmf(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        (self.cumulative[rank] - lo) / total
    }
}

/// Log-normal sampler via Box–Muller; used for per-resource request volumes.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a log-normal distribution with the given parameters of the
    /// underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Draw a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Draw a sample rounded up to an integer count, clamped to `[min, max]`.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R, min: usize, max: usize) -> usize {
        let v = self.sample(rng).ceil() as usize;
        v.clamp(min, max)
    }
}

/// Weighted choice over a small fixed set of alternatives.
#[derive(Debug, Clone)]
pub struct WeightedChoice {
    cumulative: Vec<f64>,
}

impl WeightedChoice {
    /// Build from non-negative weights. At least one weight must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for w in weights {
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "at least one weight must be positive");
        WeightedChoice { cumulative }
    }

    /// Draw an index into the original weight slice.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Bernoulli helper: `true` with probability `p` (clamped to [0, 1]).
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    rng.gen_range(0.0..1.0) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn lognormal_counts_respect_bounds() {
        let d = LogNormal::new(1.0, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let c = d.sample_count(&mut rng, 1, 40);
            assert!((1..=40).contains(&c));
        }
    }

    #[test]
    fn lognormal_mean_roughly_matches() {
        // mean of lognormal = exp(mu + sigma^2/2)
        let d = LogNormal::new(0.5, 0.4);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        let expected = (0.5f64 + 0.4f64 * 0.4 / 2.0).exp();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let w = WeightedChoice::new(&[8.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > 6500 && counts[0] < 9500, "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_choice_rejects_all_zero() {
        let _ = WeightedChoice::new(&[0.0, 0.0]);
    }

    #[test]
    fn coin_is_deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(coin(&mut a, 0.3), coin(&mut b, 0.3));
        }
    }
}
