//! # websim — a synthetic web corpus for TrackerSift experiments
//!
//! The paper measures 100K live websites through an instrumented browser.
//! This crate is the offline stand-in for that measurement substrate: it
//! generates a deterministic corpus of websites whose landing pages embed a
//! realistic third-party ecosystem — advertising networks, analytics
//! providers, tag managers, consent platforms, social/search platforms with
//! mixed hostnames, shared content CDNs, functional libraries — together
//! with the circumvention behaviours TrackerSift studies: first-party
//! hosting of tracking endpoints, webpack-style bundling of tracking modules
//! into functional code, and inlined tracking snippets.
//!
//! The output of [`generator::CorpusGenerator::generate`] is a pure data
//! structure: every website lists its scripts, every script its methods,
//! every method the requests it will issue. The `crawler` crate turns that
//! description into DevTools-style events; the `trackersift` crate runs the
//! paper's hierarchical analysis over the result.
//!
//! ```
//! use websim::{CorpusGenerator, CorpusProfile};
//!
//! let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(25), 42);
//! assert_eq!(corpus.websites.len(), 25);
//! assert!(corpus.total_script_initiated_requests() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod ecosystem;
pub mod filter_rules;
pub mod fingerprint;
pub mod generator;
pub mod model;
pub mod mutator;
pub mod names;
pub mod profiles;
pub mod scripts;

pub use ecosystem::{Ecosystem, HostRole, Service, ServiceKind};
pub use fingerprint::{fingerprint_key, script_fingerprint};
pub use generator::{CorpusGenerator, CorpusStats};
pub use model::{
    Feature, FeatureImportance, PageScript, PlannedRequest, Purpose, ScriptArchetype,
    ScriptMethodSpec, ScriptOrigin, WebCorpus, Website,
};
pub use mutator::{EcosystemMutator, MutationConfig, MutationReport, ScriptRotation};
pub use profiles::{CorpusProfile, EcosystemCounts};
