//! Synthetic filter rules for the generated ecosystem.
//!
//! The real EasyList/EasyPrivacy enumerate the tracker domains that exist on
//! the real web. The synthetic ecosystem's ad networks, analytics providers,
//! tag managers and consent platforms do not exist on the real web, so the
//! embedded curated lists cannot know their domains. This module plays the
//! role of the filter-list community: it emits `||domain^$third-party`
//! rules for every *listed* tracking service and host-anchored rules for the
//! dedicated tracking hostnames of mixed platforms (the `pixel.wp.com` /
//! `stats.wp.com` pattern), which is exactly the knowledge the real lists
//! encode. Mixed hostnames are deliberately **not** listed — that is the
//! whole point of the paper: the lists cannot block them without breakage,
//! and only generic endpoint rules catch their tracking traffic.

use crate::ecosystem::{Ecosystem, HostRole};
use filterlist::{parse_rule, FilterRule, ListKind};

/// Render the synthetic rules as filter-list text (useful for persisting a
/// reproducible "list snapshot" next to a crawl).
pub fn ecosystem_rules_text(ecosystem: &Ecosystem) -> String {
    let mut out = String::from("! Synthetic ecosystem rules generated for this corpus\n");
    for service in &ecosystem.services {
        if service.listed_in_filters {
            out.push_str(&format!("||{}^$third-party\n", service.domain));
        } else if service.kind.is_platform() {
            for host in service.hosts_with_role(HostRole::Tracking) {
                out.push_str(&format!("||{}^\n", host.hostname));
            }
        }
    }
    out
}

/// Parse the synthetic rules into [`FilterRule`]s ready to extend a
/// [`filterlist::FilterEngine`].
pub fn ecosystem_rules(ecosystem: &Ecosystem) -> Vec<FilterRule> {
    ecosystem_rules_text(ecosystem)
        .lines()
        .enumerate()
        .filter_map(|(i, line)| parse_rule(line, ListKind::Custom, i + 1))
        .collect()
}

/// Convenience: the engine the reproduction's experiments use — curated
/// EasyList + EasyPrivacy snapshots extended with the ecosystem rules.
pub fn engine_for(ecosystem: &Ecosystem) -> filterlist::FilterEngine {
    let mut engine = filterlist::FilterEngine::easylist_easyprivacy();
    engine.extend_with_rules(ecosystem_rules(ecosystem));
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::{build_ecosystem, ServiceKind};
    use crate::profiles::CorpusProfile;
    use filterlist::{FilterRequest, RequestLabel, ResourceType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eco() -> Ecosystem {
        let mut rng = StdRng::seed_from_u64(77);
        build_ecosystem(&CorpusProfile::small().ecosystem_counts(), &mut rng)
    }

    #[test]
    fn listed_services_get_domain_rules() {
        let eco = eco();
        let text = ecosystem_rules_text(&eco);
        for svc in &eco.services {
            if svc.listed_in_filters {
                assert!(
                    text.contains(&format!("||{}^", svc.domain)),
                    "missing rule for {}",
                    svc.domain
                );
            }
        }
    }

    #[test]
    fn platform_tracking_hosts_get_host_rules_but_mixed_hosts_do_not() {
        let eco = eco();
        let text = ecosystem_rules_text(&eco);
        for svc in eco.matching(|k| k.is_platform()) {
            for host in svc.hosts_with_role(HostRole::Tracking) {
                assert!(text.contains(&format!("||{}^", host.hostname)));
            }
            for host in svc.hosts_with_role(HostRole::Mixed) {
                assert!(
                    !text.contains(&format!("||{}^", host.hostname)),
                    "mixed host {} must not be list-blocked",
                    host.hostname
                );
            }
        }
    }

    #[test]
    fn all_rules_parse() {
        let eco = eco();
        let text = ecosystem_rules_text(&eco);
        let rule_lines = text.lines().filter(|l| !l.starts_with('!')).count();
        assert_eq!(ecosystem_rules(&eco).len(), rule_lines);
    }

    #[test]
    fn extended_engine_labels_synthetic_trackers() {
        let eco = eco();
        let engine = engine_for(&eco);
        let ad = eco.of_kind(ServiceKind::AdNetwork)[0];
        let host = &ad.hosts[0].hostname;
        let req = FilterRequest::new(
            &format!("https://{host}/some/unusual/path.js"),
            "publisher-1.com",
            ResourceType::Script,
        )
        .unwrap();
        assert_eq!(engine.label(&req), RequestLabel::Tracking);

        let cdn = eco.of_kind(ServiceKind::FunctionalCdn)[0];
        let host = &cdn.hosts[0].hostname;
        let req = FilterRequest::new(
            &format!("https://{host}/libs/jquery-3.6.0.min.js"),
            "publisher-1.com",
            ResourceType::Script,
        )
        .unwrap();
        assert_eq!(engine.label(&req), RequestLabel::Functional);
    }
}
