//! Script archetype factory: builds the [`PageScript`]s a website executes.
//!
//! Each constructor corresponds to a behaviour the paper observes in the
//! wild: third-party analytics tags, ad-network loaders, tag managers that
//! inject other vendors' code, consent-management scripts that call ad
//! vendors, platform SDKs (social widgets with impression tracking),
//! functional libraries served from shared CDNs, first-party application
//! code, webpack-style bundles that fold a tracking module in with
//! functional ones, and inline snippets whose script identity collapses to
//! the page URL.

use crate::distributions::{coin, LogNormal};
use crate::ecosystem::{endpoint_url, service_script_url, HostRole, Service, ServiceKind};
use crate::model::{
    PageScript, PlannedRequest, Purpose, ScriptArchetype, ScriptMethodSpec, ScriptOrigin,
};
use crate::names::NameFactory;
use crate::profiles::CorpusProfile;
use rand::Rng;

/// Context shared by the factory while building one website.
pub struct SiteContext<'a> {
    /// Profile in force.
    pub profile: &'a CorpusProfile,
    /// Landing-page URL of the site being generated.
    pub page_url: String,
    /// Primary hostname of the site (`www.<domain>`).
    pub hostname: String,
    /// Registrable domain of the site.
    pub domain: String,
    /// Site rank (used to derive per-site script URL variants).
    pub rank: usize,
    /// Log-normal request-volume sampler.
    pub volume: LogNormal,
}

impl<'a> SiteContext<'a> {
    /// How many requests a single emission point produces.
    pub fn volume<R: Rng + ?Sized>(&self, rng: &mut R, max: usize) -> usize {
        self.volume.sample_count(rng, 1, max)
    }
}

/// Build `count` requests of `purpose` aimed at `hostname`, honouring the
/// profile's label noise (a noisy request keeps its intent but gets a URL of
/// the *opposite* shape, modelling filter-list mistakes).
pub fn planned_requests<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    rng: &mut R,
    hostname: &str,
    purpose: Purpose,
    count: usize,
    is_async: bool,
) -> Vec<PlannedRequest> {
    (0..count)
        .map(|_| {
            let noisy = coin(rng, ctx.profile.label_noise);
            let url_purpose = if noisy {
                match purpose {
                    Purpose::Tracking => Purpose::Functional,
                    Purpose::Functional => Purpose::Tracking,
                }
            } else {
                purpose
            };
            let (url, resource_type) = endpoint_url(hostname, url_purpose, rng);
            PlannedRequest {
                url,
                resource_type,
                intent: purpose,
                is_async,
                via_caller: None,
            }
        })
        .collect()
}

/// Like [`planned_requests`], but draws the request count from the profile's
/// log-normal volume distribution (capped at `max`).
pub fn emit<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    rng: &mut R,
    hostname: &str,
    purpose: Purpose,
    max: usize,
    is_async: bool,
) -> Vec<PlannedRequest> {
    let count = ctx.volume(rng, max);
    planned_requests(ctx, rng, hostname, purpose, count, is_async)
}

/// A third-party analytics tag: tracking beacons to the vendor's own hosts.
pub fn analytics_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    service: &Service,
    rng: &mut R,
) -> PageScript {
    debug_assert_eq!(service.kind, ServiceKind::Analytics);
    let url = format!("{}&pub={}", service_script_url(service, rng), ctx.rank);
    let host = service
        .host_with_role(HostRole::Tracking)
        .expect("analytics services have tracking hosts")
        .hostname
        .clone();
    let beacons = emit(ctx, rng, &host, Purpose::Tracking, 8, false);
    let async_beacons = emit(ctx, rng, &host, Purpose::Tracking, 4, true);
    PageScript {
        origin: ScriptOrigin::External { url },
        methods: vec![
            ScriptMethodSpec {
                name: "init".into(),
                requests: Vec::new(),
                callees: vec![1],
            },
            ScriptMethodSpec {
                name: "sendBeacon".into(),
                requests: beacons,
                callees: Vec::new(),
            },
            ScriptMethodSpec {
                name: "flushQueue".into(),
                requests: async_beacons,
                callees: Vec::new(),
            },
        ],
        loads_scripts: Vec::new(),
        archetype: ScriptArchetype::Tracking,
    }
}

/// An ad-network loader: ad requests to the vendor plus creative fetches
/// that ride on a shared content CDN (a *mixed* hostname), which is what
/// drags ad scripts into the script-level analysis.
pub fn ad_network_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    service: &Service,
    cdn_mixed_host: Option<&str>,
    rng: &mut R,
) -> PageScript {
    debug_assert_eq!(service.kind, ServiceKind::AdNetwork);
    let url = format!(
        "{}?client=pub-{}",
        service_script_url(service, rng),
        ctx.rank
    );
    let own_host = service
        .host_with_role(HostRole::Tracking)
        .expect("ad networks have tracking hosts")
        .hostname
        .clone();
    let mut methods = vec![
        ScriptMethodSpec {
            name: "init".into(),
            requests: Vec::new(),
            callees: vec![1],
        },
        ScriptMethodSpec {
            name: "requestAds".into(),
            requests: emit(ctx, rng, &own_host, Purpose::Tracking, 6, false),
            callees: Vec::new(),
        },
    ];
    if let Some(cdn) = cdn_mixed_host {
        methods.push(ScriptMethodSpec {
            name: "renderCreative".into(),
            requests: emit(ctx, rng, cdn, Purpose::Tracking, 4, true),
            callees: Vec::new(),
        });
    }
    PageScript {
        origin: ScriptOrigin::External { url },
        methods,
        loads_scripts: Vec::new(),
        archetype: ScriptArchetype::Tracking,
    }
}

/// A tag manager: emits a couple of beacons of its own and dynamically
/// injects other tracking scripts (which therefore carry it in their
/// ancestral call stacks). The indices of the injected scripts are patched
/// in by the generator via `loads_scripts`.
pub fn tag_manager_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    service: &Service,
    rng: &mut R,
) -> PageScript {
    debug_assert_eq!(service.kind, ServiceKind::TagManager);
    let url = format!(
        "{}&l=dataLayer&site={}",
        service_script_url(service, rng),
        ctx.rank
    );
    let host = service.hosts[0].hostname.clone();
    PageScript {
        origin: ScriptOrigin::External { url },
        methods: vec![
            ScriptMethodSpec {
                name: "bootstrap".into(),
                requests: Vec::new(),
                callees: vec![1],
            },
            ScriptMethodSpec {
                name: "pushEvent".into(),
                requests: emit(ctx, rng, &host, Purpose::Tracking, 3, false),
                callees: Vec::new(),
            },
        ],
        loads_scripts: Vec::new(),
        archetype: ScriptArchetype::Tracking,
    }
}

/// A consent-management script which, once consent is (assumed) granted,
/// calls out to advertising vendors — the `uc.js` example from the paper.
pub fn consent_manager_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    service: &Service,
    ad_vendors: &[&Service],
    rng: &mut R,
) -> PageScript {
    debug_assert_eq!(service.kind, ServiceKind::ConsentManager);
    let url = format!("{}?cbid={}", service_script_url(service, rng), ctx.rank);
    let own_host = service.hosts[0].hostname.clone();
    let mut vendor_calls = Vec::new();
    for vendor in ad_vendors.iter().take(3) {
        if let Some(host) = vendor.host_with_role(HostRole::Tracking) {
            vendor_calls.extend(emit(ctx, rng, &host.hostname, Purpose::Tracking, 2, true));
        }
    }
    PageScript {
        origin: ScriptOrigin::External { url },
        methods: vec![
            ScriptMethodSpec {
                name: "loadConsentState".into(),
                requests: planned_requests(ctx, rng, &own_host, Purpose::Tracking, 1, false),
                callees: vec![1],
            },
            ScriptMethodSpec {
                name: "fireVendorTags".into(),
                requests: vendor_calls,
                callees: Vec::new(),
            },
        ],
        loads_scripts: Vec::new(),
        archetype: ScriptArchetype::Tracking,
    }
}

/// How a site uses a platform SDK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformSdkMode {
    /// Only functional widget content (e.g. an embedded post).
    WidgetOnly,
    /// Only conversion/impression tracking (pixel mode).
    PixelOnly,
    /// Both — a mixed script.
    WidgetAndPixel,
}

/// A platform SDK (social widget / embedded content SDK).
pub fn platform_sdk_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    service: &Service,
    mode: PlatformSdkMode,
    rng: &mut R,
) -> PageScript {
    debug_assert!(service.kind.is_platform());
    let url = format!(
        "{}?app_id={}",
        service_script_url(service, rng),
        10_000 + ctx.rank
    );
    let mixed_host = service
        .host_with_role(HostRole::Mixed)
        .expect("platforms have a mixed host")
        .hostname
        .clone();
    let functional_host = service
        .host_with_role(HostRole::Functional)
        .map(|h| h.hostname.clone())
        .unwrap_or_else(|| mixed_host.clone());
    let tracking_host = service
        .host_with_role(HostRole::Tracking)
        .map(|h| h.hostname.clone())
        .unwrap_or_else(|| mixed_host.clone());

    let mut methods = vec![ScriptMethodSpec::empty("init")];
    let mut archetype = ScriptArchetype::Functional;

    if matches!(
        mode,
        PlatformSdkMode::WidgetOnly | PlatformSdkMode::WidgetAndPixel
    ) {
        methods.push(ScriptMethodSpec {
            name: "renderWidget".into(),
            requests: {
                let mut reqs = emit(ctx, rng, &mixed_host, Purpose::Functional, 4, false);
                reqs.extend(emit(
                    ctx,
                    rng,
                    &functional_host,
                    Purpose::Functional,
                    3,
                    false,
                ));
                reqs
            },
            callees: Vec::new(),
        });
    }
    if matches!(
        mode,
        PlatformSdkMode::PixelOnly | PlatformSdkMode::WidgetAndPixel
    ) {
        methods.push(ScriptMethodSpec {
            name: "trackImpression".into(),
            requests: {
                let mut reqs = emit(ctx, rng, &mixed_host, Purpose::Tracking, 3, false);
                reqs.extend(emit(ctx, rng, &tracking_host, Purpose::Tracking, 2, true));
                reqs
            },
            callees: Vec::new(),
        });
        archetype = if mode == PlatformSdkMode::PixelOnly {
            ScriptArchetype::Tracking
        } else {
            ScriptArchetype::Mixed
        };
    }
    // Wire init to call the first operational method so stacks have depth.
    if methods.len() > 1 {
        methods[0].callees = vec![1];
    }

    let mut script = PageScript {
        origin: ScriptOrigin::External { url },
        methods,
        loads_scripts: Vec::new(),
        archetype,
    };
    // A mixed SDK sometimes routes both kinds of request through one shared
    // transport method — the finest-granularity residue the paper measures.
    if archetype == ScriptArchetype::Mixed && coin(rng, ctx.profile.mixed_method_rate) {
        add_shared_dispatcher(&mut script, rng);
    }
    script
}

/// A functional library served from a shared CDN (jquery/lazysizes-like):
/// lazily loads content, including from shared *mixed* image CDNs.
pub fn functional_library_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    cdn: &Service,
    mixed_cdn_host: Option<&str>,
    rng: &mut R,
) -> PageScript {
    debug_assert_eq!(cdn.kind, ServiceKind::FunctionalCdn);
    let url = service_script_url(cdn, rng);
    let own_host = cdn.hosts[0].hostname.clone();
    let mut methods = vec![
        ScriptMethodSpec::empty("init"),
        ScriptMethodSpec {
            name: "loadAssets".into(),
            requests: emit(ctx, rng, &own_host, Purpose::Functional, 3, false),
            callees: Vec::new(),
        },
    ];
    if let Some(host) = mixed_cdn_host {
        methods.push(ScriptMethodSpec {
            name: "lazyLoadImages".into(),
            requests: emit(ctx, rng, host, Purpose::Functional, 5, true),
            callees: Vec::new(),
        });
    }
    methods[0].callees = vec![1];
    PageScript {
        origin: ScriptOrigin::External { url },
        methods,
        loads_scripts: Vec::new(),
        archetype: ScriptArchetype::Functional,
    }
}

/// A pure functional content/API integration (maps, payments, search).
pub fn api_service_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    service: &Service,
    rng: &mut R,
) -> PageScript {
    debug_assert_eq!(service.kind, ServiceKind::ApiService);
    let url = service_script_url(service, rng);
    let host = service.hosts[0].hostname.clone();
    PageScript {
        origin: ScriptOrigin::External { url },
        methods: vec![
            ScriptMethodSpec::empty("init"),
            ScriptMethodSpec {
                name: "fetchData".into(),
                requests: emit(ctx, rng, &host, Purpose::Functional, 4, false),
                callees: Vec::new(),
            },
        ],
        loads_scripts: Vec::new(),
        archetype: ScriptArchetype::Functional,
    }
}

/// Options controlling the first-party application script.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstPartyOptions {
    /// Site self-hosts tracking and the beacon lives in this script.
    pub embed_tracking_beacon: bool,
    /// Ship as a webpack bundle.
    pub bundle: bool,
    /// Fold a third-party tracking module into the bundle.
    pub bundle_tracking_module: bool,
}

/// The site's own application code (`main.js` or a webpack bundle).
///
/// Functional XHRs go to the site's own hostname; content is also pulled
/// from shared platform CDNs (mixed hostnames). Depending on the options it
/// may also carry tracking behaviour — the first-party hosting and bundling
/// circumvention patterns.
pub fn first_party_app_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    platform_cdn_host: Option<&str>,
    tracking_vendor: Option<&Service>,
    opts: FirstPartyOptions,
    rng: &mut R,
) -> PageScript {
    let mut methods = vec![
        ScriptMethodSpec::empty("bootstrap"),
        ScriptMethodSpec {
            name: "fetchContent".into(),
            requests: emit(ctx, rng, &ctx.hostname, Purpose::Functional, 5, false),
            callees: Vec::new(),
        },
    ];
    let mut modules = vec!["app".to_string(), "router".to_string()];
    if let Some(host) = platform_cdn_host {
        let (lo, hi) = ctx.profile.platform_cdn_fetches_per_site;
        let n = rng.gen_range(lo..=hi.max(lo));
        methods.push(ScriptMethodSpec {
            name: "loadMedia".into(),
            requests: planned_requests(ctx, rng, host, Purpose::Functional, n.max(1), true),
            callees: Vec::new(),
        });
        modules.push("media-loader".to_string());
    }

    let mut archetype = ScriptArchetype::Functional;
    if opts.embed_tracking_beacon {
        methods.push(ScriptMethodSpec {
            name: "reportUsage".into(),
            requests: emit(ctx, rng, &ctx.hostname, Purpose::Tracking, 3, false),
            callees: Vec::new(),
        });
        modules.push("usage-reporter".to_string());
        archetype = ScriptArchetype::Mixed;
    }
    if opts.bundle && opts.bundle_tracking_module {
        if let Some(vendor) = tracking_vendor {
            if let Some(host) = vendor
                .host_with_role(HostRole::Mixed)
                .or_else(|| vendor.host_with_role(HostRole::Tracking))
            {
                methods.push(ScriptMethodSpec {
                    name: "firePixel".into(),
                    requests: emit(ctx, rng, &host.hostname, Purpose::Tracking, 3, false),
                    callees: Vec::new(),
                });
                modules.push(format!("{}-pixel", vendor.name));
                archetype = ScriptArchetype::Mixed;
            }
        }
    }
    methods[0].callees = vec![1];

    let origin = if opts.bundle {
        ScriptOrigin::Bundled {
            url: format!(
                "https://{}/assets/{}",
                ctx.hostname,
                NameFactory::bundle_filename(rng)
            ),
            modules,
        }
    } else {
        ScriptOrigin::External {
            url: format!(
                "https://{}/assets/main.js?v={}",
                ctx.hostname,
                rng.gen_range(1..20)
            ),
        }
    };
    let mut script = PageScript {
        origin,
        methods,
        loads_scripts: Vec::new(),
        archetype,
    };
    if archetype == ScriptArchetype::Mixed && coin(rng, ctx.profile.mixed_method_rate) {
        add_shared_dispatcher(&mut script, rng);
    }
    script
}

/// A dedicated self-hosted tracking script (`/js/stats.js`) used by sites
/// that first-party-host their analytics but keep it out of the app bundle.
pub fn self_hosted_tracker_script<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    rng: &mut R,
) -> PageScript {
    // Many self-hosting publishers put the collection endpoint on a
    // dedicated first-party hostname (`stats.<domain>`, the CNAME-cloaking
    // pattern); the rest reuse the main `www` host. Either way the *domain*
    // becomes mixed, but only the latter makes the `www` hostname mixed.
    let beacon_host = if coin(rng, 0.6) {
        format!("stats.{}", ctx.domain)
    } else {
        ctx.hostname.clone()
    };
    PageScript {
        origin: ScriptOrigin::External {
            url: format!("https://{}/js/stats.js", ctx.hostname),
        },
        methods: vec![
            ScriptMethodSpec::empty("init"),
            ScriptMethodSpec {
                name: "sendHit".into(),
                requests: emit(ctx, rng, &beacon_host, Purpose::Tracking, 4, false),
                callees: Vec::new(),
            },
        ],
        loads_scripts: Vec::new(),
        archetype: ScriptArchetype::Tracking,
    }
}

/// An inline snippet. Its script identity is the page URL, so several inline
/// snippets on one page collapse into one script-level resource — the
/// script-inlining circumvention pattern.
pub fn inline_snippet<R: Rng + ?Sized>(
    ctx: &SiteContext<'_>,
    position: usize,
    purpose: Purpose,
    target_host: &str,
    rng: &mut R,
) -> PageScript {
    let method_name = match purpose {
        Purpose::Tracking => "fbqTrack".to_string(),
        Purpose::Functional => "setupCarousel".to_string(),
    };
    PageScript {
        origin: ScriptOrigin::Inline {
            page_url: ctx.page_url.clone(),
            position,
        },
        methods: vec![ScriptMethodSpec {
            name: method_name,
            requests: emit(ctx, rng, target_host, purpose, 3, false),
            callees: Vec::new(),
        }],
        loads_scripts: Vec::new(),
        archetype: match purpose {
            Purpose::Tracking => ScriptArchetype::Tracking,
            Purpose::Functional => ScriptArchetype::Functional,
        },
    }
}

/// Reroute roughly half of each purpose's requests through a single shared
/// dispatcher method (`<x>.xhrRequest`), creating a *mixed method* — the
/// paper's `Pa.xhrRequest` example.
pub fn add_shared_dispatcher<R: Rng + ?Sized>(script: &mut PageScript, rng: &mut R) {
    let mut moved: Vec<PlannedRequest> = Vec::new();
    for method in &mut script.methods {
        if method.requests.len() < 2 {
            continue;
        }
        let take = method.requests.len() / 2;
        for _ in 0..take {
            let mut request = method.requests.remove(0);
            // The dispatcher is *called by* the original method, so the
            // calling context still distinguishes tracking from functional
            // invocations — exactly what the Figure 5 analysis relies on.
            request.via_caller = Some(method.name.clone());
            moved.push(request);
        }
    }
    if moved.is_empty() {
        return;
    }
    let name = NameFactory::minified_method_name(rng);
    script.methods.push(ScriptMethodSpec {
        name: if name.contains('.') {
            name
        } else {
            format!("{name}.xhrRequest")
        },
        requests: moved,
        callees: Vec::new(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::build_ecosystem;
    use crate::profiles::CorpusProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CorpusProfile, crate::ecosystem::Ecosystem, StdRng) {
        let profile = CorpusProfile::small();
        let mut rng = StdRng::seed_from_u64(99);
        let eco = build_ecosystem(&profile.ecosystem_counts(), &mut rng);
        (profile, eco, rng)
    }

    fn ctx(profile: &CorpusProfile) -> SiteContext<'_> {
        SiteContext {
            profile,
            page_url: "https://www.testsite42.com/".into(),
            hostname: "www.testsite42.com".into(),
            domain: "testsite42.com".into(),
            rank: 42,
            volume: LogNormal::new(profile.request_volume_mu, profile.request_volume_sigma),
        }
    }

    #[test]
    fn analytics_script_is_pure_tracking() {
        let (profile, eco, mut rng) = setup();
        let ctx = ctx(&profile);
        let svc = eco.of_kind(ServiceKind::Analytics)[0];
        let s = analytics_script(&ctx, svc, &mut rng);
        assert_eq!(s.archetype, ScriptArchetype::Tracking);
        assert!(s.planned_request_count() >= 2);
        assert!(s
            .planned_requests()
            .all(|(_, r)| r.intent == Purpose::Tracking));
    }

    #[test]
    fn platform_sdk_modes_control_archetype() {
        let (profile, eco, mut rng) = setup();
        let ctx = ctx(&profile);
        let svc = eco.of_kind(ServiceKind::Platform)[0];
        let w = platform_sdk_script(&ctx, svc, PlatformSdkMode::WidgetOnly, &mut rng);
        let p = platform_sdk_script(&ctx, svc, PlatformSdkMode::PixelOnly, &mut rng);
        let m = platform_sdk_script(&ctx, svc, PlatformSdkMode::WidgetAndPixel, &mut rng);
        assert_eq!(w.archetype, ScriptArchetype::Functional);
        assert_eq!(p.archetype, ScriptArchetype::Tracking);
        assert_eq!(m.archetype, ScriptArchetype::Mixed);
        assert!(m
            .planned_requests()
            .any(|(_, r)| r.intent == Purpose::Tracking));
        assert!(m
            .planned_requests()
            .any(|(_, r)| r.intent == Purpose::Functional));
    }

    #[test]
    fn bundled_tracking_module_makes_script_mixed() {
        let (profile, eco, mut rng) = setup();
        let ctx = ctx(&profile);
        let vendor = eco.of_kind(ServiceKind::Platform)[0];
        let s = first_party_app_script(
            &ctx,
            None,
            Some(vendor),
            FirstPartyOptions {
                embed_tracking_beacon: false,
                bundle: true,
                bundle_tracking_module: true,
            },
            &mut rng,
        );
        assert_eq!(s.archetype, ScriptArchetype::Mixed);
        assert!(s.origin.is_bundled());
        if let ScriptOrigin::Bundled { modules, .. } = &s.origin {
            assert!(modules.iter().any(|m| m.ends_with("-pixel")));
        }
    }

    #[test]
    fn plain_first_party_script_is_functional() {
        let (profile, _eco, mut rng) = setup();
        let ctx = ctx(&profile);
        let s = first_party_app_script(&ctx, None, None, FirstPartyOptions::default(), &mut rng);
        assert_eq!(s.archetype, ScriptArchetype::Functional);
        assert!(s
            .planned_requests()
            .all(|(_, r)| r.intent == Purpose::Functional));
        assert!(s.origin.url().contains("www.testsite42.com"));
    }

    #[test]
    fn shared_dispatcher_carries_both_purposes() {
        let (profile, eco, mut rng) = setup();
        // Force dispatcher creation.
        let mut profile = profile;
        profile.mixed_method_rate = 1.0;
        let ctx = ctx(&profile);
        let svc = eco.of_kind(ServiceKind::Platform)[0];
        // Try a few seeds: volumes must be >= 2 per method for the
        // dispatcher to receive requests of both kinds.
        let mut found = false;
        for _ in 0..20 {
            let s = platform_sdk_script(&ctx, svc, PlatformSdkMode::WidgetAndPixel, &mut rng);
            if let Some(dispatcher) = s.methods.iter().find(|m| m.name.contains("xhrRequest")) {
                let has_t = dispatcher
                    .requests
                    .iter()
                    .any(|r| r.intent == Purpose::Tracking);
                let has_f = dispatcher
                    .requests
                    .iter()
                    .any(|r| r.intent == Purpose::Functional);
                if has_t && has_f {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "no mixed dispatcher method produced in 20 attempts");
    }

    #[test]
    fn inline_snippets_share_the_page_url_identity() {
        let (profile, eco, mut rng) = setup();
        let ctx = ctx(&profile);
        let platform = eco.of_kind(ServiceKind::Platform)[0];
        let host = &platform.host_with_role(HostRole::Mixed).unwrap().hostname;
        let t = inline_snippet(&ctx, 1, Purpose::Tracking, host, &mut rng);
        let f = inline_snippet(&ctx, 2, Purpose::Functional, host, &mut rng);
        assert_eq!(t.origin.url(), f.origin.url());
        assert_eq!(t.origin.url(), "https://www.testsite42.com/");
    }

    #[test]
    fn consent_script_calls_ad_vendors() {
        let (profile, eco, mut rng) = setup();
        let ctx = ctx(&profile);
        let consent = eco.of_kind(ServiceKind::ConsentManager)[0];
        let vendors = eco.of_kind(ServiceKind::AdNetwork);
        let s = consent_manager_script(&ctx, consent, &vendors, &mut rng);
        assert_eq!(s.archetype, ScriptArchetype::Tracking);
        let vendor_domains: Vec<&str> = vendors.iter().map(|v| v.domain.as_str()).collect();
        assert!(
            s.planned_requests()
                .any(|(_, r)| vendor_domains.iter().any(|d| r.url.contains(d))),
            "expected at least one request to an ad vendor"
        );
    }
}
