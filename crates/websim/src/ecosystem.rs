//! The third-party ecosystem: the services websites embed.
//!
//! The paper's measurement is shaped by a relatively small set of service
//! archetypes: pure advertising networks and analytics providers (whose
//! whole domain is tracking), functional CDNs and content APIs (whose whole
//! domain is functional), and the large *platform* services — search/social
//! giants and shared CDNs such as `google.com`, `facebook.com`, `gstatic.com`
//! and `wp.com` — that serve tracking and functional resources from the same
//! domain and often the same hostname. Those platforms are what make
//! domains and hostnames "mixed".

use crate::distributions::Zipf;
use crate::model::Purpose;
use crate::names::NameFactory;
use filterlist::ResourceType;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The archetype of a third-party service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Pure advertising network (doubleclick-like).
    AdNetwork,
    /// Pure analytics / measurement provider (google-analytics-like).
    Analytics,
    /// Tag manager that injects other vendors' scripts (gtm-like).
    TagManager,
    /// Consent-management platform whose script calls out to ad vendors.
    ConsentManager,
    /// Social / search platform with mixed hostnames (facebook/google-like).
    Platform,
    /// Shared content CDN with mixed image hostnames (wp.com-like).
    CdnPlatform,
    /// Pure functional CDN (jsdelivr/twimg-like).
    FunctionalCdn,
    /// Pure functional content / API service (maps, weather, payments).
    ApiService,
}

impl ServiceKind {
    /// `true` when every request to this service is tracking by intent.
    pub fn is_pure_tracking(&self) -> bool {
        matches!(
            self,
            ServiceKind::AdNetwork
                | ServiceKind::Analytics
                | ServiceKind::TagManager
                | ServiceKind::ConsentManager
        )
    }

    /// `true` when every request to this service is functional by intent.
    pub fn is_pure_functional(&self) -> bool {
        matches!(self, ServiceKind::FunctionalCdn | ServiceKind::ApiService)
    }

    /// `true` for the mixed platform archetypes.
    pub fn is_platform(&self) -> bool {
        matches!(self, ServiceKind::Platform | ServiceKind::CdnPlatform)
    }
}

/// The role a hostname plays within its service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostRole {
    /// Serves only tracking endpoints (e.g. `pixel.wp.com`).
    Tracking,
    /// Serves only functional endpoints (e.g. `widgets.wp.com`).
    Functional,
    /// Serves both (e.g. `i0.wp.com`).
    Mixed,
}

/// One hostname belonging to a service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Fully qualified hostname.
    pub hostname: String,
    /// Role of the hostname.
    pub role: HostRole,
}

/// A third-party service in the ecosystem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Service {
    /// Stable index of the service within the ecosystem.
    pub id: usize,
    /// Short name (used to derive script names).
    pub name: String,
    /// Registrable domain of the service.
    pub domain: String,
    /// Archetype.
    pub kind: ServiceKind,
    /// Hostnames the service answers on.
    pub hosts: Vec<HostSpec>,
    /// `true` when the synthetic EasyList/EasyPrivacy enumerates this
    /// service's tracking hostnames (community lists know about trackers;
    /// they do not enumerate functional CDNs).
    pub listed_in_filters: bool,
    /// Popularity rank among services of any kind (0 = most embedded).
    pub popularity_rank: usize,
}

impl Service {
    /// The first hostname with the given role, if any.
    pub fn host_with_role(&self, role: HostRole) -> Option<&HostSpec> {
        self.hosts.iter().find(|h| h.role == role)
    }

    /// All hostnames with the given role.
    pub fn hosts_with_role(&self, role: HostRole) -> impl Iterator<Item = &HostSpec> {
        self.hosts.iter().filter(move |h| h.role == role)
    }
}

/// The complete third-party ecosystem.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ecosystem {
    /// Every service, indexed by `Service::id`.
    pub services: Vec<Service>,
}

impl Ecosystem {
    /// Services of a given kind.
    pub fn of_kind(&self, kind: ServiceKind) -> Vec<&Service> {
        self.services.iter().filter(|s| s.kind == kind).collect()
    }

    /// All services whose kind satisfies a predicate.
    pub fn matching(&self, pred: impl Fn(ServiceKind) -> bool) -> Vec<&Service> {
        self.services.iter().filter(|s| pred(s.kind)).collect()
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// `true` when the ecosystem has no services.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

/// Build the ecosystem for a profile.
pub fn build_ecosystem<R: Rng + ?Sized>(
    counts: &crate::profiles::EcosystemCounts,
    rng: &mut R,
) -> Ecosystem {
    let mut services = Vec::new();
    let mut id = 0usize;

    let mut push =
        |services: &mut Vec<Service>, kind: ServiceKind, hint: &str, n: usize, rng: &mut R| {
            for i in 0..n {
                let name = NameFactory::base_word(rng);
                let domain = NameFactory::service_domain(rng, hint, id);
                let hosts = hosts_for(kind, &domain, rng);
                services.push(Service {
                    id,
                    name: format!("{name}{i}"),
                    domain,
                    kind,
                    hosts,
                    listed_in_filters: kind.is_pure_tracking(),
                    popularity_rank: 0, // assigned below
                });
                id += 1;
            }
        };

    push(
        &mut services,
        ServiceKind::Platform,
        "hub",
        counts.platforms,
        rng,
    );
    push(
        &mut services,
        ServiceKind::CdnPlatform,
        "content",
        counts.platforms.div_ceil(2).max(2),
        rng,
    );
    push(
        &mut services,
        ServiceKind::TagManager,
        "tag",
        counts.tag_managers,
        rng,
    );
    push(
        &mut services,
        ServiceKind::ConsentManager,
        "consent",
        counts.consent_managers,
        rng,
    );
    push(
        &mut services,
        ServiceKind::AdNetwork,
        "ads",
        counts.ad_networks,
        rng,
    );
    push(
        &mut services,
        ServiceKind::Analytics,
        "metrics",
        counts.analytics,
        rng,
    );
    push(
        &mut services,
        ServiceKind::FunctionalCdn,
        "cdn",
        counts.functional_cdns,
        rng,
    );
    push(
        &mut services,
        ServiceKind::ApiService,
        "api",
        counts.api_services,
        rng,
    );

    // Popularity: platforms and tag managers occupy the head of the Zipf
    // curve (they are embedded on most sites); the long tail is everything
    // else in generation order.
    for (rank, service) in services.iter_mut().enumerate() {
        service.popularity_rank = rank;
    }
    Ecosystem { services }
}

/// Hostnames (and their roles) for a service of the given kind.
fn hosts_for<R: Rng + ?Sized>(kind: ServiceKind, domain: &str, rng: &mut R) -> Vec<HostSpec> {
    let host = |sub: &str, role: HostRole| HostSpec {
        hostname: if sub.is_empty() {
            domain.to_string()
        } else {
            format!("{sub}.{domain}")
        },
        role,
    };
    match kind {
        ServiceKind::AdNetwork => vec![
            host("ads", HostRole::Tracking),
            host("static", HostRole::Tracking),
            host("px", HostRole::Tracking),
        ],
        ServiceKind::Analytics => vec![
            host("api", HostRole::Tracking),
            host("cdn", HostRole::Tracking),
            host("collector", HostRole::Tracking),
        ],
        ServiceKind::TagManager => vec![
            host("www", HostRole::Tracking),
            host("load", HostRole::Tracking),
        ],
        ServiceKind::ConsentManager => vec![
            host("consent", HostRole::Tracking),
            host("cdn", HostRole::Tracking),
        ],
        ServiceKind::Platform => {
            // facebook/google-like: www is mixed (functional APIs + tracking
            // endpoints), a pure-tracking pixel host, functional static
            // hosts.
            let mut hosts = vec![
                host("www", HostRole::Mixed),
                host("pixel", HostRole::Tracking),
                host("static", HostRole::Functional),
                host("apis", HostRole::Functional),
            ];
            if rng.gen_bool(0.6) {
                hosts.push(host("connect", HostRole::Mixed));
            }
            hosts
        }
        ServiceKind::CdnPlatform => {
            // wp.com-like: i0/i1 image hosts are mixed, stats/pixel hosts are
            // tracking, widgets/c0 are functional.
            let mut hosts = vec![
                host("i0", HostRole::Mixed),
                host("i1", HostRole::Mixed),
                host("stats", HostRole::Tracking),
                host("widgets", HostRole::Functional),
                host("c0", HostRole::Functional),
            ];
            if rng.gen_bool(0.5) {
                hosts.push(host("pixel", HostRole::Tracking));
            }
            hosts
        }
        ServiceKind::FunctionalCdn => vec![
            host("cdn", HostRole::Functional),
            host("static", HostRole::Functional),
        ],
        ServiceKind::ApiService => vec![
            host("api", HostRole::Functional),
            host("www", HostRole::Functional),
        ],
    }
}

/// A Zipf sampler over the ecosystem's services restricted to a kind
/// predicate; returns indices into `Ecosystem::services`.
#[derive(Debug, Clone)]
pub struct ServiceSampler {
    indices: Vec<usize>,
    zipf: Zipf,
}

impl ServiceSampler {
    /// Build a sampler over services matching `pred`, popularity-ordered.
    ///
    /// Returns `None` when no service matches.
    pub fn new(
        ecosystem: &Ecosystem,
        exponent: f64,
        pred: impl Fn(ServiceKind) -> bool,
    ) -> Option<Self> {
        let mut indices: Vec<usize> = ecosystem
            .services
            .iter()
            .filter(|s| pred(s.kind))
            .map(|s| s.id)
            .collect();
        if indices.is_empty() {
            return None;
        }
        indices.sort_by_key(|&i| ecosystem.services[i].popularity_rank);
        let zipf = Zipf::new(indices.len(), exponent);
        Some(ServiceSampler { indices, zipf })
    }

    /// Draw a service id.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.indices[self.zipf.sample(rng)]
    }

    /// Number of candidate services.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when the sampler has no candidates (never constructible).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Endpoint URL construction
// ---------------------------------------------------------------------------

/// Build a tracking endpoint URL on `hostname`.
///
/// The paths are chosen so the curated EasyPrivacy/EasyList generic rules
/// match them — this is how tracking requests to *mixed* or unlisted hosts
/// still get labeled, exactly like the real lists catch `/collect?v=1&...`
/// on any host.
pub fn tracking_endpoint_url<R: Rng + ?Sized>(
    hostname: &str,
    rng: &mut R,
) -> (String, ResourceType) {
    let variant = rng.gen_range(0..10);
    let id: u32 = rng.gen_range(1000..999_999);
    let (mut url, resource_type) = match variant {
        0 => (
            format!("https://{hostname}/collect?v=1&tid=UA-{id}&cid={id}"),
            ResourceType::Xhr,
        ),
        1 => (
            format!("https://{hostname}/pixel.gif?id={id}&ev=PageView"),
            ResourceType::Image,
        ),
        2 => (
            format!("https://{hostname}/track?event=pageview&sid={id}"),
            ResourceType::Xhr,
        ),
        3 => (
            format!("https://{hostname}/beacon?data=eyJpZCI6{id}"),
            ResourceType::Ping,
        ),
        4 => (
            format!("https://{hostname}/g/collect?v=2&tid=G-{id}"),
            ResourceType::Xhr,
        ),
        5 => (
            format!("https://{hostname}/impression.gif?adid={id}"),
            ResourceType::Image,
        ),
        6 => (
            format!("https://{hostname}/v1/pixel?pid={id}"),
            ResourceType::Image,
        ),
        7 => (
            format!("https://{hostname}/stats/collect?s={id}"),
            ResourceType::Xhr,
        ),
        8 => (
            format!("https://{hostname}/ads/serve?slot=top&id={id}"),
            ResourceType::Subdocument,
        ),
        _ => (
            format!("https://{hostname}/adrequest?zone={id}"),
            ResourceType::Xhr,
        ),
    };
    // Real tracking endpoints decorate their queries with the campaign and
    // click identifiers URL rewriters strip (`utm_*`, `gclid`, `fbclid`) and
    // occasionally carry the true destination as a percent-encoded redirect
    // wrapper (`&url=`). Appended after the filter-matching path+query, so
    // the list-labeling guarantees above are untouched.
    match rng.gen_range(0..8) {
        0 => {
            let campaign = rng.gen_range(1..99);
            url.push_str(&format!("&utm_source=partner{campaign}&utm_campaign=c{id}"));
        }
        1 => url.push_str(&format!("&gclid=CjwK{id}")),
        2 => url.push_str(&format!("&fbclid=IwAR{id}")),
        3 => url.push_str(&format!("&url=https%3A%2F%2F{hostname}%2Fnext%2Fpage-{id}")),
        _ => {}
    }
    (url, resource_type)
}

/// Build a functional endpoint URL on `hostname`.
///
/// Paths deliberately avoid every generic tracking pattern in the curated
/// lists so the oracle labels them functional.
pub fn functional_endpoint_url<R: Rng + ?Sized>(
    hostname: &str,
    rng: &mut R,
) -> (String, ResourceType) {
    let variant = rng.gen_range(0..10);
    let id: u32 = rng.gen_range(1000..999_999);
    match variant {
        0 => (
            format!("https://{hostname}/api/v2/content?id={id}"),
            ResourceType::Xhr,
        ),
        1 => (
            format!("https://{hostname}/assets/img/photo-{id}.jpg"),
            ResourceType::Image,
        ),
        2 => (
            format!("https://{hostname}/wp-content/uploads/2021/04/image-{id}.jpg"),
            ResourceType::Image,
        ),
        3 => (
            format!("https://{hostname}/static/css/site-{id}.css"),
            ResourceType::Stylesheet,
        ),
        4 => (
            format!("https://{hostname}/fonts/opensans-{id}.woff2"),
            ResourceType::Font,
        ),
        5 => (
            format!("https://{hostname}/api/v1/products?page={id}"),
            ResourceType::Xhr,
        ),
        6 => (
            format!("https://{hostname}/images/gallery/item-{id}.png"),
            ResourceType::Image,
        ),
        7 => (
            format!("https://{hostname}/media/video/clip-{id}.mp4"),
            ResourceType::Media,
        ),
        8 => (
            format!("https://{hostname}/api/session/refresh?u={id}"),
            ResourceType::Xhr,
        ),
        _ => (
            format!("https://{hostname}/widgets/embed?post={id}"),
            ResourceType::Subdocument,
        ),
    }
}

/// Build an endpoint URL of the requested purpose.
pub fn endpoint_url<R: Rng + ?Sized>(
    hostname: &str,
    purpose: Purpose,
    rng: &mut R,
) -> (String, ResourceType) {
    match purpose {
        Purpose::Tracking => tracking_endpoint_url(hostname, rng),
        Purpose::Functional => functional_endpoint_url(hostname, rng),
    }
}

/// URL of the script a tracking service serves (the `analytics.js` /
/// `show_ads_impl`-style payload).
pub fn service_script_url<R: Rng + ?Sized>(service: &Service, rng: &mut R) -> String {
    let host = service
        .host_with_role(HostRole::Tracking)
        .or_else(|| service.host_with_role(HostRole::Mixed))
        .or_else(|| service.hosts.first())
        .map(|h| h.hostname.clone())
        .unwrap_or_else(|| service.domain.clone());
    match service.kind {
        ServiceKind::Analytics => format!(
            "https://{host}/{}-analytics.js?v={}",
            service.name,
            rng.gen_range(1..9)
        ),
        ServiceKind::AdNetwork => format!("https://{host}/show_ads_impl_fy2019.js"),
        ServiceKind::TagManager => {
            format!("https://{host}/gtm.js?id=TAG-{}", rng.gen_range(100..999))
        }
        ServiceKind::ConsentManager => format!("https://{host}/uc.js"),
        ServiceKind::Platform => format!("https://{host}/sdk.js"),
        ServiceKind::CdnPlatform => format!("https://{host}/w.js"),
        ServiceKind::FunctionalCdn => format!("https://{host}/libs/jquery-3.6.0.min.js"),
        ServiceKind::ApiService => format!("https://{host}/client.js"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::CorpusProfile;
    use filterlist::{FilterEngine, FilterRequest, RequestLabel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ecosystem() -> Ecosystem {
        let mut rng = StdRng::seed_from_u64(17);
        build_ecosystem(
            &CorpusProfile::paper().with_sites(2_000).ecosystem_counts(),
            &mut rng,
        )
    }

    #[test]
    fn ecosystem_has_every_kind() {
        let eco = ecosystem();
        for kind in [
            ServiceKind::AdNetwork,
            ServiceKind::Analytics,
            ServiceKind::TagManager,
            ServiceKind::ConsentManager,
            ServiceKind::Platform,
            ServiceKind::CdnPlatform,
            ServiceKind::FunctionalCdn,
            ServiceKind::ApiService,
        ] {
            assert!(!eco.of_kind(kind).is_empty(), "missing {kind:?}");
        }
    }

    #[test]
    fn pure_trackers_are_listed_platforms_are_not() {
        let eco = ecosystem();
        for s in &eco.services {
            if s.kind.is_pure_tracking() {
                assert!(s.listed_in_filters, "{:?} should be listed", s.kind);
            }
            if s.kind.is_platform() || s.kind.is_pure_functional() {
                assert!(!s.listed_in_filters, "{:?} should not be listed", s.kind);
            }
        }
    }

    #[test]
    fn platform_services_have_mixed_hosts() {
        let eco = ecosystem();
        for s in eco.matching(|k| k.is_platform()) {
            assert!(s.host_with_role(HostRole::Mixed).is_some(), "{}", s.domain);
            assert!(
                s.host_with_role(HostRole::Tracking).is_some(),
                "{}",
                s.domain
            );
            assert!(
                s.host_with_role(HostRole::Functional).is_some(),
                "{}",
                s.domain
            );
        }
    }

    #[test]
    fn service_domains_are_unique() {
        let eco = ecosystem();
        let mut domains: Vec<&str> = eco.services.iter().map(|s| s.domain.as_str()).collect();
        let before = domains.len();
        domains.sort();
        domains.dedup();
        assert_eq!(domains.len(), before);
    }

    #[test]
    fn sampler_prefers_popular_services() {
        let eco = ecosystem();
        let sampler = ServiceSampler::new(&eco, 1.1, |k| k.is_pure_tracking()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let draws = 20_000;
        for _ in 0..draws {
            *counts.entry(sampler.sample(&mut rng)).or_insert(0) += 1;
        }
        // The candidate with the best (lowest) popularity rank must be drawn
        // far more often than the candidate with the worst rank.
        let candidates: Vec<&Service> = eco.matching(|k| k.is_pure_tracking());
        let best = candidates.iter().min_by_key(|s| s.popularity_rank).unwrap();
        let worst = candidates.iter().max_by_key(|s| s.popularity_rank).unwrap();
        let best_draws = counts.get(&best.id).copied().unwrap_or(0);
        let worst_draws = counts.get(&worst.id).copied().unwrap_or(0);
        assert!(
            best_draws > worst_draws.saturating_mul(5),
            "best {best_draws} vs worst {worst_draws}"
        );
    }

    #[test]
    fn tracking_endpoints_match_generic_filter_rules() {
        // Tracking URLs on arbitrary (unlisted) hosts must still be caught
        // by the curated generic rules, otherwise mixed hosts could never
        // accumulate tracking counts.
        let engine = FilterEngine::easylist_easyprivacy();
        let mut rng = StdRng::seed_from_u64(5);
        let mut tracking_hits = 0;
        let n = 300;
        for _ in 0..n {
            let (url, ty) = tracking_endpoint_url("i0.somecontenthub42.com", &mut rng);
            let req = FilterRequest::new(&url, "publisher-77.com", ty).unwrap();
            if engine.label(&req) == RequestLabel::Tracking {
                tracking_hits += 1;
            }
        }
        assert!(
            tracking_hits as f64 > n as f64 * 0.85,
            "only {tracking_hits}/{n} tracking endpoints matched the lists"
        );
    }

    #[test]
    fn tracking_endpoints_carry_identifier_params_and_redirect_wrappers() {
        // A slice of tracking endpoints must exhibit the decorations URL
        // rewriters act on: campaign/click identifiers and percent-encoded
        // redirect wrappers.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 300;
        let mut identifiers = 0;
        let mut wrappers = 0;
        for _ in 0..n {
            let (url, _) = tracking_endpoint_url("i0.somecontenthub42.com", &mut rng);
            if url.contains("&utm_") || url.contains("&gclid=") || url.contains("&fbclid=") {
                identifiers += 1;
            }
            if url.contains("&url=https%3A%2F%2F") {
                wrappers += 1;
            }
        }
        assert!(
            identifiers > n / 10,
            "only {identifiers}/{n} carried identifiers"
        );
        assert!(
            wrappers > n / 20,
            "only {wrappers}/{n} carried redirect wrappers"
        );
    }

    #[test]
    fn functional_endpoints_do_not_match_filter_rules() {
        let engine = FilterEngine::easylist_easyprivacy();
        let mut rng = StdRng::seed_from_u64(6);
        let n = 300;
        let mut functional = 0;
        for _ in 0..n {
            let (url, ty) = functional_endpoint_url("cdn.somecontenthub42.com", &mut rng);
            let req = FilterRequest::new(&url, "publisher-77.com", ty).unwrap();
            if engine.label(&req) == RequestLabel::Functional {
                functional += 1;
            }
        }
        assert_eq!(
            functional, n,
            "a functional endpoint accidentally matched the filter lists"
        );
    }

    #[test]
    fn service_script_urls_are_well_formed() {
        let eco = ecosystem();
        let mut rng = StdRng::seed_from_u64(8);
        for s in &eco.services {
            let url = service_script_url(s, &mut rng);
            assert!(url.starts_with("https://"), "{url}");
            assert!(url.contains(&s.domain), "{url} should be on {}", s.domain);
        }
    }
}
