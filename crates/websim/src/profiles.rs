//! Corpus profiles: the knobs that shape the synthetic web.
//!
//! Every structural behaviour the paper attributes to the 2021 web is a
//! parameter here rather than a hard-coded constant, so experiments can
//! sweep them (e.g. "what if twice as many publishers inline their pixel?")
//! and the calibration that approximates the paper's Tables 1–2 is explicit
//! and inspectable.

use serde::{Deserialize, Serialize};

/// All generation parameters for a [`crate::generator::CorpusGenerator`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusProfile {
    /// Number of websites (landing pages) to generate.
    pub sites: usize,

    // ------------------------------------------------------------------
    // Third-party ecosystem sizing (expressed as fractions of `sites`,
    // with small floors so tiny corpora still have an ecosystem).
    // ------------------------------------------------------------------
    /// Pure advertising networks (whole domain is tracking).
    pub ad_network_fraction: f64,
    /// Pure analytics/measurement providers (whole domain is tracking).
    pub analytics_fraction: f64,
    /// Pure functional CDNs (libraries, static assets).
    pub functional_cdn_fraction: f64,
    /// Pure functional content/API services (weather, maps, payments, ...).
    pub api_service_fraction: f64,
    /// Mixed platform services (search/social/CDN giants that serve both
    /// tracking and functional resources from the same domain).
    pub platform_fraction: f64,
    /// Number of tag-manager style services (fixed count, they are few but
    /// extremely popular).
    pub tag_managers: usize,
    /// Number of consent-management platforms.
    pub consent_managers: usize,

    // ------------------------------------------------------------------
    // Popularity / volume skew
    // ------------------------------------------------------------------
    /// Zipf exponent for third-party service popularity (higher = the top
    /// services appear on more sites).
    pub service_popularity_exponent: f64,
    /// Log-normal `mu` for per-method request counts.
    pub request_volume_mu: f64,
    /// Log-normal `sigma` for per-method request counts.
    pub request_volume_sigma: f64,

    // ------------------------------------------------------------------
    // Per-site composition
    // ------------------------------------------------------------------
    /// Minimum / maximum number of third-party *tracking* services embedded
    /// per site (ad networks + analytics).
    pub tracking_services_per_site: (usize, usize),
    /// Minimum / maximum number of third-party *functional* services per
    /// site (CDNs, APIs, fonts).
    pub functional_services_per_site: (usize, usize),
    /// Minimum / maximum number of *platform* services per site.
    pub platform_services_per_site: (usize, usize),
    /// Probability a site uses a tag manager (which then injects its
    /// tracking scripts, creating ancestral call stacks).
    pub tag_manager_rate: f64,
    /// Probability a site embeds a consent-management script.
    pub consent_manager_rate: f64,

    // ------------------------------------------------------------------
    // Mixing behaviours (the circumvention patterns the paper studies)
    // ------------------------------------------------------------------
    /// Probability a site self-hosts tracking endpoints on its own domain
    /// (first-party hosting / CNAME-style circumvention). Makes the site's
    /// own domain and `www` hostname mixed.
    pub first_party_tracking_rate: f64,
    /// Probability that a self-hosting site emits its first-party beacon
    /// from the same first-party application script that also performs
    /// functional XHRs (rather than a dedicated snippet) — this is what
    /// turns a first-party script mixed.
    pub first_party_beacon_in_app_script_rate: f64,
    /// Probability a site's first-party code is shipped as a webpack-style
    /// bundle rather than plain `main.js`.
    pub bundling_rate: f64,
    /// Given a bundle, probability it folds a tracking module (e.g. an
    /// analytics pixel) in with the functional modules — a mixed script.
    pub bundled_tracking_rate: f64,
    /// Probability a site inlines a tracking snippet directly in the page
    /// (script-inlining circumvention). Inline snippets share the page URL
    /// as their script identity.
    pub inline_tracking_rate: f64,
    /// Probability a site also has an inline *functional* snippet (making
    /// the page-URL script identity mixed when combined with an inline
    /// tracking snippet).
    pub inline_functional_rate: f64,
    /// Given a mixed script, probability it routes both tracking and
    /// functional requests through one shared dispatcher method (e.g.
    /// `Pa.xhrRequest`) — a *mixed method*, the finest-granularity residue.
    pub mixed_method_rate: f64,
    /// Number of image/content requests a site loads from platform CDNs
    /// (min, max) — the functional side of mixed hostnames.
    pub platform_cdn_fetches_per_site: (usize, usize),

    // ------------------------------------------------------------------
    // Page features (breakage analysis)
    // ------------------------------------------------------------------
    /// Minimum / maximum number of core features per page.
    pub core_features_per_site: (usize, usize),
    /// Minimum / maximum number of secondary features per page.
    pub secondary_features_per_site: (usize, usize),

    // ------------------------------------------------------------------
    // Noise
    // ------------------------------------------------------------------
    /// Probability that an individual request's intent is flipped when the
    /// URL is built (models filter-list imperfection: slow updates and
    /// mistakes, §3 "filter lists are not perfect").
    pub label_noise: f64,
}

impl CorpusProfile {
    /// The profile calibrated to approximate the paper's measurement
    /// (Tables 1 and 2): the default for experiments.
    pub fn paper() -> Self {
        CorpusProfile {
            sites: 10_000,
            ad_network_fraction: 0.055,
            analytics_fraction: 0.045,
            functional_cdn_fraction: 0.10,
            api_service_fraction: 0.06,
            platform_fraction: 0.035,
            tag_managers: 6,
            consent_managers: 4,
            service_popularity_exponent: 1.05,
            request_volume_mu: 0.55,
            request_volume_sigma: 0.75,
            tracking_services_per_site: (1, 6),
            functional_services_per_site: (1, 5),
            platform_services_per_site: (1, 4),
            tag_manager_rate: 0.45,
            consent_manager_rate: 0.18,
            first_party_tracking_rate: 0.17,
            first_party_beacon_in_app_script_rate: 0.18,
            bundling_rate: 0.45,
            bundled_tracking_rate: 0.22,
            inline_tracking_rate: 0.30,
            inline_functional_rate: 0.55,
            mixed_method_rate: 0.35,
            platform_cdn_fetches_per_site: (2, 10),
            core_features_per_site: (2, 4),
            secondary_features_per_site: (1, 4),
            label_noise: 0.004,
        }
    }

    /// A small profile for unit/integration tests: same shape, tiny scale.
    pub fn small() -> Self {
        CorpusProfile {
            sites: 150,
            ..Self::paper()
        }
    }

    /// A medium profile used by the quickstart example.
    pub fn quickstart() -> Self {
        CorpusProfile {
            sites: 1_000,
            ..Self::paper()
        }
    }

    /// Override the number of sites, keeping every other knob.
    pub fn with_sites(mut self, sites: usize) -> Self {
        self.sites = sites;
        self
    }

    /// Validate that the profile is internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.sites == 0 {
            return Err("profile must generate at least one site".into());
        }
        let probs = [
            ("tag_manager_rate", self.tag_manager_rate),
            ("consent_manager_rate", self.consent_manager_rate),
            ("first_party_tracking_rate", self.first_party_tracking_rate),
            (
                "first_party_beacon_in_app_script_rate",
                self.first_party_beacon_in_app_script_rate,
            ),
            ("bundling_rate", self.bundling_rate),
            ("bundled_tracking_rate", self.bundled_tracking_rate),
            ("inline_tracking_rate", self.inline_tracking_rate),
            ("inline_functional_rate", self.inline_functional_rate),
            ("mixed_method_rate", self.mixed_method_rate),
            ("label_noise", self.label_noise),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        let fracs = [
            ("ad_network_fraction", self.ad_network_fraction),
            ("analytics_fraction", self.analytics_fraction),
            ("functional_cdn_fraction", self.functional_cdn_fraction),
            ("api_service_fraction", self.api_service_fraction),
            ("platform_fraction", self.platform_fraction),
        ];
        for (name, f) in fracs {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("{name} must be in [0,1], got {f}"));
            }
        }
        for (name, (lo, hi)) in [
            (
                "tracking_services_per_site",
                self.tracking_services_per_site,
            ),
            (
                "functional_services_per_site",
                self.functional_services_per_site,
            ),
            (
                "platform_services_per_site",
                self.platform_services_per_site,
            ),
            (
                "platform_cdn_fetches_per_site",
                self.platform_cdn_fetches_per_site,
            ),
            ("core_features_per_site", self.core_features_per_site),
            (
                "secondary_features_per_site",
                self.secondary_features_per_site,
            ),
        ] {
            if lo > hi {
                return Err(format!("{name}: min {lo} exceeds max {hi}"));
            }
        }
        if self.request_volume_sigma < 0.0 {
            return Err("request_volume_sigma must be non-negative".into());
        }
        if self.service_popularity_exponent <= 0.0 {
            return Err("service_popularity_exponent must be positive".into());
        }
        Ok(())
    }

    /// Absolute ecosystem sizes derived from the fractions (with floors so
    /// tiny corpora still exercise every service kind).
    pub fn ecosystem_counts(&self) -> EcosystemCounts {
        let frac = |f: f64, floor: usize| ((self.sites as f64 * f).round() as usize).max(floor);
        EcosystemCounts {
            ad_networks: frac(self.ad_network_fraction, 4),
            analytics: frac(self.analytics_fraction, 4),
            functional_cdns: frac(self.functional_cdn_fraction, 4),
            api_services: frac(self.api_service_fraction, 3),
            platforms: frac(self.platform_fraction, 3),
            tag_managers: self.tag_managers.max(1),
            consent_managers: self.consent_managers.max(1),
        }
    }
}

impl Default for CorpusProfile {
    fn default() -> Self {
        Self::paper()
    }
}

/// Absolute service counts derived from a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcosystemCounts {
    /// Pure advertising networks.
    pub ad_networks: usize,
    /// Pure analytics providers.
    pub analytics: usize,
    /// Pure functional CDNs.
    pub functional_cdns: usize,
    /// Pure functional content APIs.
    pub api_services: usize,
    /// Mixed platform services.
    pub platforms: usize,
    /// Tag managers.
    pub tag_managers: usize,
    /// Consent managers.
    pub consent_managers: usize,
}

impl EcosystemCounts {
    /// Total number of third-party services.
    pub fn total(&self) -> usize {
        self.ad_networks
            + self.analytics
            + self.functional_cdns
            + self.api_services
            + self.platforms
            + self.tag_managers
            + self.consent_managers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_validates() {
        assert!(CorpusProfile::paper().validate().is_ok());
        assert!(CorpusProfile::small().validate().is_ok());
        assert!(CorpusProfile::quickstart().validate().is_ok());
    }

    #[test]
    fn zero_sites_rejected() {
        let p = CorpusProfile::paper().with_sites(0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut p = CorpusProfile::paper();
        p.inline_tracking_rate = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn inverted_range_rejected() {
        let mut p = CorpusProfile::paper();
        p.tracking_services_per_site = (5, 2);
        assert!(p.validate().is_err());
    }

    #[test]
    fn ecosystem_counts_scale_with_sites() {
        let small = CorpusProfile::paper().with_sites(1_000).ecosystem_counts();
        let large = CorpusProfile::paper().with_sites(10_000).ecosystem_counts();
        assert!(large.ad_networks > small.ad_networks);
        assert!(large.total() > small.total());
    }

    #[test]
    fn ecosystem_counts_have_floors() {
        let tiny = CorpusProfile::paper().with_sites(10).ecosystem_counts();
        assert!(tiny.ad_networks >= 4);
        assert!(tiny.platforms >= 3);
        assert!(tiny.tag_managers >= 1);
    }

    #[test]
    fn profile_clones_compare_equal_and_overrides_stick() {
        // (The serde round-trip test lived here; JSON persistence now goes
        // through crawler::json, which does not cover profiles. Equality and
        // builder overrides are what the pipeline actually relies on.)
        let p = CorpusProfile::paper();
        assert_eq!(p, p.clone());
        let overridden = p.clone().with_sites(123);
        assert_ne!(p, overridden);
        assert_eq!(overridden.sites, 123);
    }
}
