//! Content fingerprints for scripts.
//!
//! Trackers evade URL-keyed blocking by rotating CDNs and cache-busting
//! their script URLs; follow-up work to the paper (ASTrack-style) answers
//! with *content* identity: two copies of the same script should share a
//! key even when their URLs differ. This module derives that key from the
//! script's **behavioural shape** — its archetype, the methods it defines,
//! and how many tracking/functional requests each method issues — hashed
//! with 64-bit FNV-1a.
//!
//! The shape deliberately excludes everything the ecosystem mutator
//! rotates between crawl epochs: script URLs and hostnames (CDN rotation),
//! request URLs and resource types (endpoint path rotation). A verdict
//! keyed by [`fingerprint_key`] therefore survives rotation, which the
//! scheduler's retention benchmark measures against URL keying.

use crate::model::{PageScript, Purpose, ScriptArchetype};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Start a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Fold bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold one byte into the hash.
    pub fn write_u8(&mut self, byte: u8) {
        self.write(&[byte]);
    }

    /// Fold a `u64` into the hash (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The hash value accumulated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The content fingerprint of a script: FNV-1a over its stable behavioural
/// shape. Invariant under CDN rotation (the script URL is not hashed) and
/// endpoint path rotation (request URLs and resource types are not hashed);
/// changed by anything that alters what the script *does* — adding a
/// method, flipping a request's intent, re-wiring callees.
pub fn script_fingerprint(script: &PageScript) -> u64 {
    let mut hash = Fnv1a::new();
    hash.write_u8(match script.archetype {
        ScriptArchetype::Tracking => 1,
        ScriptArchetype::Functional => 2,
        ScriptArchetype::Mixed => 3,
    });
    hash.write_u64(script.methods.len() as u64);
    for method in &script.methods {
        hash.write(method.name.as_bytes());
        // Separator so ("ab", "c") and ("a", "bc") hash differently.
        hash.write_u8(0xff);
        hash.write_u64(method.callees.len() as u64);
        for &callee in &method.callees {
            hash.write_u64(callee as u64);
        }
        let tracking = method
            .requests
            .iter()
            .filter(|r| r.intent == Purpose::Tracking)
            .count();
        let functional = method.requests.len() - tracking;
        hash.write_u64(tracking as u64);
        hash.write_u64(functional as u64);
    }
    hash.finish()
}

/// The attribution key a fingerprint-keyed crawl uses for a script:
/// `fp:` followed by the zero-padded hex fingerprint.
pub fn fingerprint_key(script: &PageScript) -> String {
    format!("fp:{:016x}", script_fingerprint(script))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PlannedRequest, ScriptMethodSpec, ScriptOrigin};
    use filterlist::ResourceType;

    fn request(url: &str, intent: Purpose, resource_type: ResourceType) -> PlannedRequest {
        PlannedRequest {
            url: url.to_string(),
            resource_type,
            intent,
            is_async: false,
            via_caller: None,
        }
    }

    fn sample_script(url: &str) -> PageScript {
        PageScript {
            origin: ScriptOrigin::External {
                url: url.to_string(),
            },
            methods: vec![
                ScriptMethodSpec {
                    name: "init".into(),
                    requests: vec![request(
                        "https://t.io/collect?v=1&tid=UA-1",
                        Purpose::Tracking,
                        ResourceType::Xhr,
                    )],
                    callees: vec![1],
                },
                ScriptMethodSpec {
                    name: "send".into(),
                    requests: vec![request(
                        "https://t.io/pixel.gif?id=2",
                        Purpose::Tracking,
                        ResourceType::Image,
                    )],
                    callees: vec![],
                },
            ],
            loads_scripts: vec![],
            archetype: ScriptArchetype::Tracking,
        }
    }

    #[test]
    fn fingerprint_survives_cdn_and_path_rotation() {
        let before = sample_script("https://cdn.metrics.io/m-analytics.js?v=3");
        let mut after = sample_script("https://cdn-e4-0.metrics.io/m-analytics.js?v=7");
        // Path rotation: a new endpoint URL *and* a new resource type.
        after.methods[0].requests[0] = request(
            "https://t.io/beacon?data=eyJpZCI69",
            Purpose::Tracking,
            ResourceType::Ping,
        );
        assert_eq!(script_fingerprint(&before), script_fingerprint(&after));
        assert_eq!(fingerprint_key(&before), fingerprint_key(&after));
    }

    #[test]
    fn fingerprint_tracks_behavioural_changes() {
        let base = sample_script("https://cdn.metrics.io/m.js");
        let mut renamed = base.clone();
        renamed.methods[1].name = "dispatch".into();
        assert_ne!(script_fingerprint(&base), script_fingerprint(&renamed));

        let mut flipped = base.clone();
        flipped.methods[1].requests[0].intent = Purpose::Functional;
        assert_ne!(script_fingerprint(&base), script_fingerprint(&flipped));

        let mut grown = base.clone();
        grown.methods.push(ScriptMethodSpec::empty("extra"));
        assert_ne!(script_fingerprint(&base), script_fingerprint(&grown));
    }

    #[test]
    fn fingerprint_key_is_stable_hex() {
        let script = sample_script("https://cdn.metrics.io/m.js");
        let key = fingerprint_key(&script);
        assert!(key.starts_with("fp:"));
        assert_eq!(key.len(), 3 + 16);
        assert_eq!(key, fingerprint_key(&script));
    }
}
