//! Deterministic synthetic name generation for domains, scripts and methods.
//!
//! The corpus needs tens of thousands of distinct, plausible-looking
//! identifiers. Names are produced from seeded RNG draws over syllable
//! tables, so corpora are fully reproducible from their seed.

use rand::Rng;

const SYLLABLES: &[&str] = &[
    "ra", "ve", "lo", "mi", "ta", "zen", "kor", "pix", "nova", "lum", "qua", "dex", "tri", "sol",
    "ner", "vig", "ora", "ply", "gra", "ful", "mar", "ket", "cen", "dia", "bru", "sta", "cla",
    "vio", "net", "byte", "wave", "peak", "leaf", "frost", "ember", "stone", "cloud", "swift",
    "bright", "blue", "red", "terra", "astro", "hyper", "meta", "omni", "uni", "info", "data",
];

const PUBLISHER_SUFFIXES: &[&str] = &[
    "news", "times", "daily", "post", "journal", "shop", "store", "market", "blog", "mag",
    "review", "sports", "tech", "health", "travel", "recipes", "games", "finance", "weather",
    "media",
];

const PUBLISHER_TLDS: &[&str] = &[
    "com", "com", "com", "com", "net", "org", "io", "co", "info", "co.uk", "com.au", "com.br",
    "com.mx", "co.jp", "de", "fr", "ru", "in",
];

const SERVICE_TLDS: &[&str] = &["com", "com", "net", "io", "co", "org"];

const METHOD_PREFIXES: &[&str] = &[
    "get", "send", "load", "fetch", "init", "track", "log", "report", "render", "update", "sync",
    "push", "emit", "dispatch", "handle", "process", "queue", "flush", "collect", "measure",
];

const METHOD_SUFFIXES: &[&str] = &[
    "Data",
    "Event",
    "Beacon",
    "Request",
    "Content",
    "Pixel",
    "Metrics",
    "Payload",
    "Resource",
    "Impression",
    "View",
    "State",
    "Config",
    "Assets",
    "Batch",
    "Hit",
    "Signal",
    "Session",
    "Widget",
    "Frame",
];

/// Deterministic name factory.
#[derive(Debug, Default)]
pub struct NameFactory;

impl NameFactory {
    /// A pronounceable base word of 2–3 syllables.
    pub fn base_word<R: Rng + ?Sized>(rng: &mut R) -> String {
        let syllable_count = rng.gen_range(2..=3);
        let mut word = String::new();
        for _ in 0..syllable_count {
            word.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
        }
        word
    }

    /// A publisher (first-party website) domain such as `lumranews.com`.
    pub fn publisher_domain<R: Rng + ?Sized>(rng: &mut R, rank: usize) -> String {
        let word = Self::base_word(rng);
        let suffix = PUBLISHER_SUFFIXES[rng.gen_range(0..PUBLISHER_SUFFIXES.len())];
        let tld = PUBLISHER_TLDS[rng.gen_range(0..PUBLISHER_TLDS.len())];
        // The rank keeps domains unique even on a syllable collision.
        format!("{word}{suffix}{rank}.{tld}")
    }

    /// A third-party service domain such as `pixkorads.net`.
    pub fn service_domain<R: Rng + ?Sized>(rng: &mut R, hint: &str, index: usize) -> String {
        let word = Self::base_word(rng);
        let tld = SERVICE_TLDS[rng.gen_range(0..SERVICE_TLDS.len())];
        format!("{word}{hint}{index}.{tld}")
    }

    /// A JavaScript-style method name such as `sendBeacon` or `fetchContent`.
    pub fn method_name<R: Rng + ?Sized>(rng: &mut R) -> String {
        let p = METHOD_PREFIXES[rng.gen_range(0..METHOD_PREFIXES.len())];
        let s = METHOD_SUFFIXES[rng.gen_range(0..METHOD_SUFFIXES.len())];
        format!("{p}{s}")
    }

    /// A short minified method name such as `t`, `m2`, `Pa.xhrRequest`-style.
    pub fn minified_method_name<R: Rng + ?Sized>(rng: &mut R) -> String {
        let letters = "abcdefghijklmnopqrstuvwxyz";
        let a = letters.as_bytes()[rng.gen_range(0..letters.len())] as char;
        if rng.gen_bool(0.5) {
            format!("{a}{}", rng.gen_range(0..10))
        } else {
            let b = letters.to_ascii_uppercase();
            let upper = b.as_bytes()[rng.gen_range(0..b.len())] as char;
            format!("{upper}{a}.xhrRequest")
        }
    }

    /// A content-hash-looking hex string of the given length (webpack style).
    pub fn content_hash<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
        const HEX: &[u8] = b"0123456789abcdef";
        (0..len)
            .map(|_| HEX[rng.gen_range(0..16usize)] as char)
            .collect()
    }

    /// A first-party application bundle filename (`app.9115af43.js`).
    pub fn bundle_filename<R: Rng + ?Sized>(rng: &mut R) -> String {
        let stem =
            ["app", "main", "bundle", "vendor", "chunk", "runtime"][rng.gen_range(0..6usize)];
        format!("{stem}.{}.js", Self::content_hash(rng, 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn publisher_domains_are_unique_by_rank() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = NameFactory::publisher_domain(&mut rng, 1);
        let b = NameFactory::publisher_domain(&mut rng, 2);
        assert_ne!(a, b);
        assert!(a.contains('.'));
    }

    #[test]
    fn names_are_deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            NameFactory::service_domain(&mut a, "ads", 3),
            NameFactory::service_domain(&mut b, "ads", 3)
        );
        assert_eq!(
            NameFactory::method_name(&mut a),
            NameFactory::method_name(&mut b)
        );
    }

    #[test]
    fn domains_are_valid_hostnames() {
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..200 {
            let d = NameFactory::publisher_domain(&mut rng, i);
            assert!(filterlist::domain::is_valid_hostname(&d), "{d}");
            let s = NameFactory::service_domain(&mut rng, "cdn", i);
            assert!(filterlist::domain::is_valid_hostname(&s), "{s}");
        }
    }

    #[test]
    fn bundle_filenames_look_hashed() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = NameFactory::bundle_filename(&mut rng);
        assert!(f.ends_with(".js"));
        assert_eq!(f.split('.').count(), 3);
    }

    #[test]
    fn content_hash_length_and_charset() {
        let mut rng = StdRng::seed_from_u64(6);
        let h = NameFactory::content_hash(&mut rng, 12);
        assert_eq!(h.len(), 12);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
