//! The evolving web: deterministic mutation of a corpus between crawl
//! epochs.
//!
//! A one-shot corpus models the paper's single measurement. Real
//! deployments watch the ecosystem drift underneath them: tracking scripts
//! hop CDNs and hostnames to shake URL-keyed blocklists, endpoints rotate
//! their paths and query shapes, and new invisible-pixel workloads appear
//! on pages over time. [`EcosystemMutator::advance`] applies exactly those
//! three mutations to a [`WebCorpus`] in place, once per epoch:
//!
//! * **CDN rotation** — an external tracking script's origin URL moves to a
//!   fresh subdomain of the *same* registrable domain
//!   (`cdn.metrics3.io` → `cdn-e4-0.metrics3.io`), so domain-anchored
//!   filter rules keep matching and ground-truth labels stay consistent,
//!   while the script's URL identity is destroyed.
//! * **Path rotation** — a script's tracking requests are re-drawn from
//!   [`tracking_endpoint_url`](crate::ecosystem::tracking_endpoint_url) on
//!   their original hostname: new path, new query shape, same host, same
//!   intent, still caught by the curated lists' generic rules.
//! * **Pixel emergence** — a new document-initiated tracking pixel appears
//!   on a page, aimed at a tracking-role host of the ecosystem. Appended to
//!   [`Website::non_script_requests`] so existing scripts' behaviour — and
//!   therefore their [content fingerprints](crate::fingerprint) — is
//!   untouched.
//!
//! Mutation is deterministic from `(seed, epoch)` alone: every epoch
//! derives per-site RNGs the same way the generator does, so two runs from
//! the same seed evolve byte-identically regardless of when or how often
//! `advance` is called for an epoch sequence.

use crate::ecosystem::{tracking_endpoint_url, Ecosystem, HostRole};
use crate::model::{PlannedRequest, Purpose, ScriptArchetype, ScriptOrigin, WebCorpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-epoch mutation probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutationConfig {
    /// Probability that an external tracking script rotates to a fresh CDN
    /// subdomain in a given epoch.
    pub cdn_rotation_rate: f64,
    /// Probability that a script's tracking endpoints re-draw their paths
    /// and query shapes in a given epoch.
    pub path_rotation_rate: f64,
    /// Probability that a new invisible tracking pixel appears on a page in
    /// a given epoch.
    pub pixel_emergence_rate: f64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            cdn_rotation_rate: 0.08,
            path_rotation_rate: 0.15,
            pixel_emergence_rate: 0.10,
        }
    }
}

impl MutationConfig {
    /// An aggressive profile for rotation experiments: most of the
    /// ecosystem churns within a handful of epochs.
    pub fn churny() -> Self {
        MutationConfig {
            cdn_rotation_rate: 0.35,
            path_rotation_rate: 0.30,
            pixel_emergence_rate: 0.25,
        }
    }
}

/// One script whose origin URL moved to a fresh CDN subdomain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptRotation {
    /// Index of the website in the corpus.
    pub site: usize,
    /// Index of the script within the website.
    pub script: usize,
    /// Origin URL before the rotation.
    pub old_url: String,
    /// Origin URL after the rotation.
    pub new_url: String,
}

/// What one epoch of mutation did to the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutationReport {
    /// The epoch the mutation was applied for.
    pub epoch: u64,
    /// Every CDN rotation applied, in (site, script) order.
    pub rotations: Vec<ScriptRotation>,
    /// Number of scripts whose tracking endpoints re-drew their paths.
    pub path_rotations: usize,
    /// Number of new document-initiated tracking pixels that appeared.
    pub emerged_requests: usize,
}

/// Advances a corpus through mutation epochs, deterministically from a
/// seed.
#[derive(Debug, Clone)]
pub struct EcosystemMutator {
    seed: u64,
    config: MutationConfig,
}

impl EcosystemMutator {
    /// A mutator for a seed and config.
    pub fn new(seed: u64, config: MutationConfig) -> Self {
        EcosystemMutator { seed, config }
    }

    /// The mutation config.
    pub fn config(&self) -> &MutationConfig {
        &self.config
    }

    /// Mutate the corpus in place for `epoch`, returning what changed.
    ///
    /// Deterministic in `(seed, epoch, site index)`: the same call on an
    /// identically evolved corpus produces the identical mutation.
    pub fn advance(&self, corpus: &mut WebCorpus, epoch: u64) -> MutationReport {
        let epoch_seed = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(epoch.wrapping_add(1)));
        let mut report = MutationReport {
            epoch,
            rotations: Vec::new(),
            path_rotations: 0,
            emerged_requests: 0,
        };
        let ecosystem = corpus.ecosystem.clone();
        for (site_idx, site) in corpus.websites.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                epoch_seed ^ (0xd1b5_4a32_d192_ed03u64.wrapping_mul(site_idx as u64 + 1)),
            );

            for (script_idx, script) in site.scripts.iter_mut().enumerate() {
                // CDN rotation: external tracking scripts only — the
                // origin host moves, nothing about behaviour changes.
                if script.archetype == ScriptArchetype::Tracking {
                    if let ScriptOrigin::External { url } = &mut script.origin {
                        if rng.gen_bool(self.config.cdn_rotation_rate) {
                            if let Some(new_url) =
                                rotate_script_host(&ecosystem, url, epoch, &mut rng)
                            {
                                report.rotations.push(ScriptRotation {
                                    site: site_idx,
                                    script: script_idx,
                                    old_url: url.clone(),
                                    new_url: new_url.clone(),
                                });
                                *url = new_url;
                            }
                        }
                    }
                }

                // Path rotation: every tracking request the script issues
                // re-draws its endpoint on the same hostname.
                let has_tracking = script
                    .methods
                    .iter()
                    .any(|m| m.requests.iter().any(|r| r.intent == Purpose::Tracking));
                if has_tracking && rng.gen_bool(self.config.path_rotation_rate) {
                    let mut rotated = false;
                    for method in &mut script.methods {
                        for request in &mut method.requests {
                            if request.intent != Purpose::Tracking {
                                continue;
                            }
                            let Some(host) = host_of(&request.url) else {
                                continue;
                            };
                            let host = host.to_string();
                            let (url, resource_type) = tracking_endpoint_url(&host, &mut rng);
                            request.url = url;
                            request.resource_type = resource_type;
                            rotated = true;
                        }
                    }
                    if rotated {
                        report.path_rotations += 1;
                    }
                }
            }

            // Pixel emergence: a fresh invisible pixel in the page HTML.
            if rng.gen_bool(self.config.pixel_emergence_rate) {
                if let Some(host) = tracking_host(&ecosystem, &mut rng) {
                    let (url, resource_type) = tracking_endpoint_url(&host, &mut rng);
                    site.non_script_requests.push(PlannedRequest {
                        url,
                        resource_type,
                        intent: Purpose::Tracking,
                        is_async: false,
                        via_caller: None,
                    });
                    report.emerged_requests += 1;
                }
            }
        }
        report
    }
}

/// The hostname of an `http(s)` URL.
fn host_of(url: &str) -> Option<&str> {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))?;
    let end = rest.find('/').unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(&rest[..end])
}

/// The registrable domain of `host`: the ecosystem service domain it
/// belongs to, falling back to the last two DNS labels.
fn registrable_domain(ecosystem: &Ecosystem, host: &str) -> String {
    for service in &ecosystem.services {
        if host == service.domain || host.ends_with(&format!(".{}", service.domain)) {
            return service.domain.clone();
        }
    }
    let labels: Vec<&str> = host.rsplitn(3, '.').collect();
    match labels.as_slice() {
        [tld, sld, _rest] => format!("{sld}.{tld}"),
        _ => host.to_string(),
    }
}

/// Rewrite the host of a script URL to a fresh epoch-stamped subdomain of
/// the same registrable domain, so `||domain^`-anchored rules keep
/// matching.
fn rotate_script_host<R: Rng + ?Sized>(
    ecosystem: &Ecosystem,
    url: &str,
    epoch: u64,
    rng: &mut R,
) -> Option<String> {
    let host = host_of(url)?;
    let domain = registrable_domain(ecosystem, host);
    let tail = &url[url.find(host)? + host.len()..];
    let k: u32 = rng.gen_range(0..16);
    Some(format!("https://cdn-e{epoch}-{k}.{domain}{tail}"))
}

/// A tracking-role hostname drawn from the ecosystem, if any exists.
fn tracking_host<R: Rng + ?Sized>(ecosystem: &Ecosystem, rng: &mut R) -> Option<String> {
    let candidates: Vec<&str> = ecosystem
        .services
        .iter()
        .flat_map(|s| s.hosts_with_role(HostRole::Tracking))
        .map(|h| h.hostname.as_str())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.gen_range(0..candidates.len())].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::script_fingerprint;
    use crate::generator::CorpusGenerator;
    use crate::profiles::CorpusProfile;
    use filterlist::{FilterEngine, FilterRequest, RequestLabel};

    fn corpus() -> WebCorpus {
        CorpusGenerator::generate(&CorpusProfile::small().with_sites(40), 2021)
    }

    #[test]
    fn mutation_is_deterministic() {
        let mutator = EcosystemMutator::new(7, MutationConfig::churny());
        let mut a = corpus();
        let mut b = corpus();
        for epoch in 1..=3 {
            let ra = mutator.advance(&mut a, epoch);
            let rb = mutator.advance(&mut b, epoch);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.websites, b.websites);
    }

    #[test]
    fn epochs_differ_and_rotations_accumulate() {
        let mutator = EcosystemMutator::new(7, MutationConfig::churny());
        let mut evolved = corpus();
        let mut rotated: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        let mut emerged = 0;
        for epoch in 1..=10 {
            let report = mutator.advance(&mut evolved, epoch);
            rotated.extend(report.rotations.iter().map(|r| (r.site, r.script)));
            emerged += report.emerged_requests;
        }
        let trackers: usize = corpus()
            .websites
            .iter()
            .map(|site| {
                site.scripts
                    .iter()
                    .filter(|s| {
                        s.archetype == ScriptArchetype::Tracking
                            && matches!(s.origin, ScriptOrigin::External { .. })
                    })
                    .count()
            })
            .sum();
        assert!(
            rotated.len() * 10 >= trackers * 3,
            "only {}/{trackers} tracker scripts rotated over 10 epochs",
            rotated.len()
        );
        assert!(emerged > 0, "no pixels emerged in 10 epochs");
        assert_ne!(corpus().websites, evolved.websites);
    }

    #[test]
    fn cdn_rotation_preserves_registrable_domain_and_fingerprint() {
        let mutator = EcosystemMutator::new(3, MutationConfig::churny());
        let pristine = corpus();
        let mut evolved = corpus();
        let report = mutator.advance(&mut evolved, 1);
        assert!(!report.rotations.is_empty());
        for rotation in &report.rotations {
            let old_host = host_of(&rotation.old_url).unwrap();
            let new_host = host_of(&rotation.new_url).unwrap();
            assert_ne!(old_host, new_host);
            assert_eq!(
                registrable_domain(&pristine.ecosystem, old_host),
                registrable_domain(&pristine.ecosystem, new_host),
                "{} -> {}",
                rotation.old_url,
                rotation.new_url
            );
            // Rotation changes the URL key but not the content identity.
            assert_eq!(
                script_fingerprint(&pristine.websites[rotation.site].scripts[rotation.script]),
                script_fingerprint(&evolved.websites[rotation.site].scripts[rotation.script]),
            );
        }
    }

    /// `(matched tracking, total tracking, functional labeled tracking)`
    /// across every planned request of the corpus.
    fn label_tally(engine: &FilterEngine, corpus: &WebCorpus) -> (usize, usize, usize) {
        let mut tally = (0usize, 0usize, 0usize);
        for site in &corpus.websites {
            let requests = site
                .scripts
                .iter()
                .flat_map(|s| s.planned_requests().map(|(_, r)| r))
                .chain(site.non_script_requests.iter());
            for request in requests {
                let req = FilterRequest::new(&request.url, &site.hostname, request.resource_type)
                    .unwrap();
                let listed = engine.label(&req) == RequestLabel::Tracking;
                match request.intent {
                    Purpose::Tracking => {
                        tally.1 += 1;
                        if listed {
                            tally.0 += 1;
                        }
                    }
                    Purpose::Functional if listed => tally.2 += 1,
                    Purpose::Functional => {}
                }
            }
        }
        tally
    }

    #[test]
    fn mutated_ground_truth_stays_consistent_with_the_lists() {
        // After heavy churn, tracking requests must still be caught by the
        // curated generic rules, and mutation must not mint any *new*
        // functional requests that match the lists (the seed corpus plants
        // a handful of deliberate false positives — those may remain).
        let engine = FilterEngine::easylist_easyprivacy();
        let pristine_tally = label_tally(&engine, &corpus());
        let mut evolved = corpus();
        let mutator = EcosystemMutator::new(11, MutationConfig::churny());
        for epoch in 1..=5 {
            mutator.advance(&mut evolved, epoch);
        }
        let (matched, total, functional_listed) = label_tally(&engine, &evolved);
        assert!(
            matched as f64 > total as f64 * 0.85,
            "only {matched}/{total} tracking requests matched after churn"
        );
        assert!(total > pristine_tally.1, "churn should add tracking pixels");
        assert_eq!(
            functional_listed, pristine_tally.2,
            "mutation minted new listed functional requests"
        );
    }

    #[test]
    fn pixel_emergence_never_touches_script_behaviour() {
        let pristine = corpus();
        let mut evolved = corpus();
        let config = MutationConfig {
            cdn_rotation_rate: 0.0,
            path_rotation_rate: 0.0,
            pixel_emergence_rate: 1.0,
        };
        let report = EcosystemMutator::new(5, config).advance(&mut evolved, 1);
        assert_eq!(report.emerged_requests, evolved.websites.len());
        for (before, after) in pristine.websites.iter().zip(&evolved.websites) {
            assert_eq!(before.scripts, after.scripts);
            assert_eq!(
                before.non_script_requests.len() + 1,
                after.non_script_requests.len()
            );
            let pixel = after.non_script_requests.last().unwrap();
            assert_eq!(pixel.intent, Purpose::Tracking);
        }
    }
}
