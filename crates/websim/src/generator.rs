//! Deterministic corpus generation.
//!
//! [`CorpusGenerator::generate`] expands a [`CorpusProfile`] and a seed into
//! a full [`WebCorpus`]: the third-party ecosystem plus every website's
//! scripts, methods, planned requests, features and document-initiated
//! requests. The same `(profile, seed)` pair always produces the same
//! corpus, which is what makes every experiment in the repository
//! reproducible bit-for-bit.

use crate::distributions::{coin, LogNormal, WeightedChoice};
use crate::ecosystem::{build_ecosystem, Ecosystem, HostRole, ServiceKind, ServiceSampler};
use crate::model::{
    Feature, FeatureImportance, PlannedRequest, Purpose, ScriptArchetype, WebCorpus, Website,
};
use crate::names::NameFactory;
use crate::profiles::CorpusProfile;
use crate::scripts::{
    ad_network_script, analytics_script, api_service_script, consent_manager_script,
    first_party_app_script, functional_library_script, inline_snippet, platform_sdk_script,
    self_hosted_tracker_script, tag_manager_script, FirstPartyOptions, PlatformSdkMode,
    SiteContext,
};
use filterlist::ResourceType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corpus generator. Stateless: all state lives in the seeded RNG.
#[derive(Debug, Clone, Default)]
pub struct CorpusGenerator;

impl CorpusGenerator {
    /// Generate a corpus from a profile and seed.
    ///
    /// # Panics
    /// Panics if the profile fails [`CorpusProfile::validate`].
    pub fn generate(profile: &CorpusProfile, seed: u64) -> WebCorpus {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid corpus profile: {e}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let ecosystem = build_ecosystem(&profile.ecosystem_counts(), &mut rng);

        let samplers = Samplers::new(&ecosystem, profile);
        let mut websites = Vec::with_capacity(profile.sites);
        for rank in 0..profile.sites {
            // Per-site RNG derived from the corpus seed and the rank, so
            // sites are independent of each other and of generation order
            // (important for the parallel crawler's determinism tests).
            let mut site_rng = StdRng::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(rank as u64 + 1)),
            );
            websites.push(generate_site(
                profile,
                &ecosystem,
                &samplers,
                rank,
                &mut site_rng,
            ));
        }
        WebCorpus {
            websites,
            ecosystem,
            seed,
        }
    }
}

/// Popularity samplers per service class.
struct Samplers {
    tracking: Option<ServiceSampler>,
    ad_networks: Option<ServiceSampler>,
    analytics: Option<ServiceSampler>,
    functional_cdn: Option<ServiceSampler>,
    api: Option<ServiceSampler>,
    platforms: Option<ServiceSampler>,
    cdn_platforms: Option<ServiceSampler>,
    tag_managers: Option<ServiceSampler>,
    consent: Option<ServiceSampler>,
}

impl Samplers {
    fn new(eco: &Ecosystem, profile: &CorpusProfile) -> Self {
        let e = profile.service_popularity_exponent;
        Samplers {
            tracking: ServiceSampler::new(eco, e, |k| {
                matches!(k, ServiceKind::AdNetwork | ServiceKind::Analytics)
            }),
            ad_networks: ServiceSampler::new(eco, e, |k| k == ServiceKind::AdNetwork),
            analytics: ServiceSampler::new(eco, e, |k| k == ServiceKind::Analytics),
            functional_cdn: ServiceSampler::new(eco, e, |k| k == ServiceKind::FunctionalCdn),
            api: ServiceSampler::new(eco, e, |k| k == ServiceKind::ApiService),
            platforms: ServiceSampler::new(eco, e, |k| k == ServiceKind::Platform),
            cdn_platforms: ServiceSampler::new(eco, e, |k| k == ServiceKind::CdnPlatform),
            tag_managers: ServiceSampler::new(eco, e, |k| k == ServiceKind::TagManager),
            consent: ServiceSampler::new(eco, e, |k| k == ServiceKind::ConsentManager),
        }
    }
}

fn sample_service<'a, R: Rng + ?Sized>(
    eco: &'a Ecosystem,
    sampler: &Option<ServiceSampler>,
    rng: &mut R,
) -> Option<&'a crate::ecosystem::Service> {
    sampler.as_ref().map(|s| &eco.services[s.sample(rng)])
}

fn generate_site(
    profile: &CorpusProfile,
    eco: &Ecosystem,
    samplers: &Samplers,
    rank: usize,
    rng: &mut StdRng,
) -> Website {
    let domain = NameFactory::publisher_domain(rng, rank);
    let hostname = format!("www.{domain}");
    let page_url = format!("https://{hostname}/");
    let ctx = SiteContext {
        profile,
        page_url: page_url.clone(),
        hostname: hostname.clone(),
        domain: domain.clone(),
        rank,
        volume: LogNormal::new(profile.request_volume_mu, profile.request_volume_sigma),
    };

    let mut scripts = Vec::new();

    // --- first-party behaviour ------------------------------------------------
    let self_tracks = coin(rng, profile.first_party_tracking_rate);
    let beacon_in_app = self_tracks && coin(rng, profile.first_party_beacon_in_app_script_rate);
    let bundles = coin(rng, profile.bundling_rate);
    let bundle_tracking = bundles && coin(rng, profile.bundled_tracking_rate);
    let cdn_platform_host = sample_service(eco, &samplers.cdn_platforms, rng)
        .and_then(|s| s.host_with_role(HostRole::Mixed))
        .map(|h| h.hostname.clone());
    let pixel_vendor = sample_service(eco, &samplers.platforms, rng);

    let app_script_idx = scripts.len();
    scripts.push(first_party_app_script(
        &ctx,
        cdn_platform_host.as_deref(),
        pixel_vendor,
        FirstPartyOptions {
            embed_tracking_beacon: beacon_in_app,
            bundle: bundles,
            bundle_tracking_module: bundle_tracking,
        },
        rng,
    ));
    if self_tracks && !beacon_in_app {
        scripts.push(self_hosted_tracker_script(&ctx, rng));
    }

    // --- third-party tracking services -----------------------------------------
    // A site embeds each distinct service at most once (re-sampling the same
    // popular vendor is simply skipped, mirroring how a page includes one
    // copy of a tag).
    let mut embedded_services: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let (lo, hi) = profile.tracking_services_per_site;
    let tracking_count = rng.gen_range(lo..=hi.max(lo));
    let mut tracking_script_indices = Vec::new();
    for _ in 0..tracking_count {
        let use_ads = coin(rng, 0.5);
        let idx = scripts.len();
        if use_ads {
            if let Some(svc) = sample_service(eco, &samplers.ad_networks, rng) {
                if !embedded_services.insert(svc.id) {
                    continue;
                }
                // Ad creatives frequently ride shared content CDNs, which is
                // what pulls ad scripts into the script-level analysis.
                let creative_host = if coin(rng, 0.6) {
                    sample_service(eco, &samplers.cdn_platforms, rng)
                        .and_then(|s| s.host_with_role(HostRole::Mixed))
                        .map(|h| h.hostname.clone())
                } else {
                    None
                };
                scripts.push(ad_network_script(&ctx, svc, creative_host.as_deref(), rng));
                tracking_script_indices.push(idx);
            }
        } else if let Some(svc) = sample_service(eco, &samplers.analytics, rng) {
            if !embedded_services.insert(svc.id) {
                continue;
            }
            scripts.push(analytics_script(&ctx, svc, rng));
            tracking_script_indices.push(idx);
        }
    }

    // --- third-party functional services ----------------------------------------
    let (lo, hi) = profile.functional_services_per_site;
    let functional_count = rng.gen_range(lo..=hi.max(lo));
    let mut library_indices = Vec::new();
    for _ in 0..functional_count {
        let idx = scripts.len();
        if coin(rng, 0.55) {
            if let Some(svc) = sample_service(eco, &samplers.functional_cdn, rng) {
                if !embedded_services.insert(svc.id) {
                    continue;
                }
                let lazy_host = if coin(rng, 0.5) {
                    sample_service(eco, &samplers.cdn_platforms, rng)
                        .and_then(|s| s.host_with_role(HostRole::Mixed))
                        .map(|h| h.hostname.clone())
                } else {
                    None
                };
                scripts.push(functional_library_script(
                    &ctx,
                    svc,
                    lazy_host.as_deref(),
                    rng,
                ));
                library_indices.push(idx);
            }
        } else if let Some(svc) = sample_service(eco, &samplers.api, rng) {
            if !embedded_services.insert(svc.id) {
                continue;
            }
            scripts.push(api_service_script(&ctx, svc, rng));
            library_indices.push(idx);
        }
    }

    // --- platform SDKs ------------------------------------------------------------
    let (lo, hi) = profile.platform_services_per_site;
    let platform_count = rng.gen_range(lo..=hi.max(lo));
    let sdk_mode_choice = WeightedChoice::new(&[0.48, 0.44, 0.08]);
    let mut platform_indices = Vec::new();
    for _ in 0..platform_count {
        if let Some(svc) = sample_service(eco, &samplers.platforms, rng) {
            if !embedded_services.insert(svc.id) {
                continue;
            }
            let mode = match sdk_mode_choice.sample(rng) {
                0 => PlatformSdkMode::WidgetOnly,
                1 => PlatformSdkMode::PixelOnly,
                _ => PlatformSdkMode::WidgetAndPixel,
            };
            platform_indices.push(scripts.len());
            scripts.push(platform_sdk_script(&ctx, svc, mode, rng));
        }
    }

    // --- tag manager & consent manager ---------------------------------------------
    if coin(rng, profile.tag_manager_rate) {
        if let Some(svc) = sample_service(eco, &samplers.tag_managers, rng) {
            let tm_idx = scripts.len();
            scripts.push(tag_manager_script(&ctx, svc, rng));
            // The tag manager dynamically injects up to three of the site's
            // tracking scripts; their requests will carry it in their
            // ancestral stacks.
            let injected: Vec<usize> = tracking_script_indices.iter().copied().take(3).collect();
            scripts[tm_idx].loads_scripts = injected;
        }
    }
    if coin(rng, profile.consent_manager_rate) {
        if let Some(svc) = sample_service(eco, &samplers.consent, rng) {
            let vendors = eco.of_kind(ServiceKind::AdNetwork);
            scripts.push(consent_manager_script(&ctx, svc, &vendors, rng));
        }
    }

    // --- inline snippets ---------------------------------------------------------------
    let mut inline_position = 0;
    if coin(rng, profile.inline_tracking_rate) {
        inline_position += 1;
        let target = sample_service(eco, &samplers.platforms, rng)
            .and_then(|s| s.host_with_role(HostRole::Mixed))
            .map(|h| h.hostname.clone())
            .or_else(|| {
                sample_service(eco, &samplers.tracking, rng)
                    .and_then(|s| s.host_with_role(HostRole::Tracking))
                    .map(|h| h.hostname.clone())
            })
            .unwrap_or_else(|| hostname.clone());
        scripts.push(inline_snippet(
            &ctx,
            inline_position,
            Purpose::Tracking,
            &target,
            rng,
        ));
    }
    if coin(rng, profile.inline_functional_rate) {
        inline_position += 1;
        // Functional inline snippets mostly touch the site's own host; a
        // minority lazy-load from the shared content CDN, which is what can
        // turn the page-URL "script" mixed when a tracking snippet is also
        // inlined.
        let target = if coin(rng, 0.3) {
            cdn_platform_host
                .clone()
                .unwrap_or_else(|| hostname.clone())
        } else {
            hostname.clone()
        };
        scripts.push(inline_snippet(
            &ctx,
            inline_position,
            Purpose::Functional,
            &target,
            rng,
        ));
    }

    // --- page features (for breakage analysis) -------------------------------------------
    let features = generate_features(
        profile,
        app_script_idx,
        &library_indices,
        &platform_indices,
        &scripts,
        rng,
    );

    // --- document-initiated requests (excluded by TrackerSift, observed by the crawler) --
    let non_script_requests = generate_document_requests(&ctx, eco, samplers, rng);

    Website {
        rank,
        domain,
        hostname,
        url: page_url,
        scripts,
        features,
        non_script_requests,
    }
}

fn generate_features(
    profile: &CorpusProfile,
    app_script_idx: usize,
    library_indices: &[usize],
    platform_indices: &[usize],
    scripts: &[crate::model::PageScript],
    rng: &mut StdRng,
) -> Vec<Feature> {
    const CORE_NAMES: &[&str] = &[
        "page render",
        "navigation menu",
        "search bar",
        "hero images",
        "product grid",
        "article body",
    ];
    const SECONDARY_NAMES: &[&str] = &[
        "comment section",
        "media widget",
        "video player",
        "social icons",
        "newsletter form",
        "related posts",
    ];
    let mut features = Vec::new();
    let (lo, hi) = profile.core_features_per_site;
    let core = rng.gen_range(lo..=hi.max(lo));
    for i in 0..core {
        let mut required = vec![app_script_idx];
        if !library_indices.is_empty() && coin(rng, 0.5) {
            required.push(library_indices[rng.gen_range(0..library_indices.len())]);
        }
        features.push(Feature {
            name: CORE_NAMES[i % CORE_NAMES.len()].to_string(),
            importance: FeatureImportance::Core,
            required_scripts: required,
        });
    }
    let (lo, hi) = profile.secondary_features_per_site;
    let secondary = rng.gen_range(lo..=hi.max(lo));
    for i in 0..secondary {
        let mut required = Vec::new();
        if !platform_indices.is_empty() && coin(rng, 0.6) {
            required.push(platform_indices[rng.gen_range(0..platform_indices.len())]);
        }
        if !library_indices.is_empty() && coin(rng, 0.5) {
            required.push(library_indices[rng.gen_range(0..library_indices.len())]);
        }
        if required.is_empty() {
            required.push(app_script_idx.min(scripts.len().saturating_sub(1)));
        }
        features.push(Feature {
            name: SECONDARY_NAMES[i % SECONDARY_NAMES.len()].to_string(),
            importance: FeatureImportance::Secondary,
            required_scripts: required,
        });
    }
    features
}

fn generate_document_requests(
    ctx: &SiteContext<'_>,
    eco: &Ecosystem,
    samplers: &Samplers,
    rng: &mut StdRng,
) -> Vec<PlannedRequest> {
    let mut out = Vec::new();
    // Stylesheets and images referenced directly from the HTML.
    let n = rng.gen_range(2..=6);
    for _ in 0..n {
        let (url, resource_type) = crate::ecosystem::functional_endpoint_url(&ctx.hostname, rng);
        out.push(PlannedRequest {
            url,
            resource_type,
            intent: Purpose::Functional,
            is_async: false,
            via_caller: None,
        });
    }
    // A <noscript> fallback pixel straight in the HTML (not script-initiated,
    // so TrackerSift must exclude it).
    if coin(rng, 0.25) {
        if let Some(svc) = sample_service(eco, &samplers.tracking, rng) {
            if let Some(host) = svc.host_with_role(HostRole::Tracking) {
                let (url, _) = crate::ecosystem::tracking_endpoint_url(&host.hostname, rng);
                out.push(PlannedRequest {
                    url,
                    resource_type: ResourceType::Image,
                    intent: Purpose::Tracking,
                    is_async: false,
                    via_caller: None,
                });
            }
        }
    }
    out
}

/// Aggregate statistics about a corpus (generator-side ground truth).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorpusStats {
    /// Number of websites.
    pub websites: usize,
    /// Total script-initiated planned requests.
    pub script_initiated_requests: usize,
    /// Total document-initiated planned requests.
    pub document_requests: usize,
    /// Scripts by archetype: (tracking, functional, mixed).
    pub scripts_by_archetype: (usize, usize, usize),
    /// Ground-truth tracking / functional request intents.
    pub requests_by_intent: (usize, usize),
    /// Number of distinct third-party services.
    pub services: usize,
}

impl CorpusStats {
    /// Compute statistics for a corpus.
    pub fn compute(corpus: &WebCorpus) -> Self {
        let mut stats = CorpusStats {
            websites: corpus.websites.len(),
            services: corpus.ecosystem.len(),
            ..Default::default()
        };
        for site in &corpus.websites {
            stats.document_requests += site.non_script_requests.len();
            for script in &site.scripts {
                match script.archetype {
                    ScriptArchetype::Tracking => stats.scripts_by_archetype.0 += 1,
                    ScriptArchetype::Functional => stats.scripts_by_archetype.1 += 1,
                    ScriptArchetype::Mixed => stats.scripts_by_archetype.2 += 1,
                }
                for (_, req) in script.planned_requests() {
                    stats.script_initiated_requests += 1;
                    match req.intent {
                        Purpose::Tracking => stats.requests_by_intent.0 += 1,
                        Purpose::Functional => stats.requests_by_intent.1 += 1,
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let profile = CorpusProfile::small();
        let a = CorpusGenerator::generate(&profile, 2021);
        let b = CorpusGenerator::generate(&profile, 2021);
        assert_eq!(a.websites, b.websites);
        assert_eq!(a.ecosystem, b.ecosystem);
    }

    #[test]
    fn different_seeds_differ() {
        let profile = CorpusProfile::small();
        let a = CorpusGenerator::generate(&profile, 1);
        let b = CorpusGenerator::generate(&profile, 2);
        assert_ne!(a.websites, b.websites);
    }

    #[test]
    fn corpus_has_expected_scale() {
        let profile = CorpusProfile::small();
        let corpus = CorpusGenerator::generate(&profile, 7);
        assert_eq!(corpus.websites.len(), profile.sites);
        let stats = CorpusStats::compute(&corpus);
        // Roughly 10-60 script-initiated requests per site.
        let per_site = stats.script_initiated_requests as f64 / profile.sites as f64;
        assert!(
            per_site > 8.0 && per_site < 80.0,
            "requests per site: {per_site}"
        );
        // Both intents are present in quantity.
        assert!(stats.requests_by_intent.0 > 100);
        assert!(stats.requests_by_intent.1 > 100);
    }

    #[test]
    fn every_site_has_a_first_party_script_and_core_feature() {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small(), 13);
        for site in &corpus.websites {
            assert!(!site.scripts.is_empty());
            assert!(site.scripts[0].origin.url().contains(&site.domain));
            assert!(site
                .features
                .iter()
                .any(|f| f.importance == FeatureImportance::Core));
            for feature in &site.features {
                for &idx in &feature.required_scripts {
                    assert!(
                        idx < site.scripts.len(),
                        "feature references missing script"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_scripts_exist_but_are_minority() {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small(), 5);
        let stats = CorpusStats::compute(&corpus);
        let (t, f, m) = stats.scripts_by_archetype;
        let total = t + f + m;
        assert!(m > 0, "expected some mixed scripts");
        assert!(
            (m as f64) < 0.35 * total as f64,
            "mixed scripts should be a minority: {m}/{total}"
        );
    }

    #[test]
    fn tag_manager_loads_reference_valid_scripts() {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small(), 3);
        for site in &corpus.websites {
            for (i, script) in site.scripts.iter().enumerate() {
                for &loaded in &script.loads_scripts {
                    assert!(loaded < site.scripts.len());
                    assert_ne!(loaded, i, "script cannot load itself");
                }
            }
        }
    }

    #[test]
    fn site_domains_are_unique() {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small(), 4);
        let mut domains: Vec<&str> = corpus.websites.iter().map(|w| w.domain.as_str()).collect();
        let before = domains.len();
        domains.sort();
        domains.dedup();
        assert_eq!(domains.len(), before);
    }
}
