//! Core data model of the synthetic web corpus.
//!
//! A [`WebCorpus`] is the stand-in for the 100K live websites the paper
//! crawls: a set of [`Website`]s, each fully describing what happens when
//! its landing page loads — which scripts run, which methods inside those
//! scripts issue which network requests, which page features depend on
//! which scripts. The `crawler` crate "loads" these descriptions and emits
//! DevTools-style events; the `trackersift` crate analyses the result. The
//! ground-truth `Purpose` carried on each planned request is **never used by
//! the classifier** — it exists so tests can check that the filter-list
//! oracle behaves like the intent it encodes.

use filterlist::ResourceType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ground-truth intent of a planned request (generator-side knowledge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Purpose {
    /// Advertising / tracking behaviour.
    Tracking,
    /// Legitimate site functionality.
    Functional,
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Purpose::Tracking => f.write_str("tracking"),
            Purpose::Functional => f.write_str("functional"),
        }
    }
}

/// A network request a script method will issue during the page load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedRequest {
    /// Full request URL.
    pub url: String,
    /// Resource type the browser would report.
    pub resource_type: ResourceType,
    /// Ground-truth intent (not visible to the classifier).
    pub intent: Purpose,
    /// `true` when the request is issued from an asynchronous continuation
    /// (promise/setTimeout); the crawler then prepends the captured stack,
    /// mirroring the paper's async-stack handling.
    pub is_async: bool,
    /// Name of the in-script method that *called into* the issuing method
    /// for this particular request (if any). This models shared dispatcher
    /// methods (`Pa.xhrRequest`) whose tracking and functional invocations
    /// arrive via different callers — the calling-context signal the paper's
    /// Figure 5 call-stack analysis exploits. The crawler inserts the caller
    /// as an extra stack frame directly above the issuing method.
    #[serde(default)]
    pub via_caller: Option<String>,
}

/// A method (named function) inside a script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptMethodSpec {
    /// JavaScript-style method name (e.g. `sendBeacon`, `Pa.xhrRequest`).
    pub name: String,
    /// Requests this method issues directly.
    pub requests: Vec<PlannedRequest>,
    /// Indices (within the same script) of methods this method calls before
    /// they issue their own requests — used to build deeper call stacks.
    pub callees: Vec<usize>,
}

impl ScriptMethodSpec {
    /// A method with no requests and no callees.
    pub fn empty(name: impl Into<String>) -> Self {
        ScriptMethodSpec {
            name: name.into(),
            requests: Vec::new(),
            callees: Vec::new(),
        }
    }
}

/// How a script arrived on the page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScriptOrigin {
    /// A classic `<script src="...">` external script.
    External {
        /// Script URL.
        url: String,
    },
    /// An inline `<script>...</script>` block; its "URL" for stack purposes
    /// is the page URL itself (what DevTools reports).
    Inline {
        /// Page URL the snippet is embedded in.
        page_url: String,
        /// Position of the inline block on the page (1-based).
        position: usize,
    },
    /// A bundler-produced script (webpack/browserify style) that merged
    /// several modules into one URL.
    Bundled {
        /// Bundle URL (e.g. `app.9115af43.js`).
        url: String,
        /// Names of the modules folded into the bundle (provenance).
        modules: Vec<String>,
    },
}

impl ScriptOrigin {
    /// The URL DevTools would report as the script's source.
    pub fn url(&self) -> &str {
        match self {
            ScriptOrigin::External { url } => url,
            ScriptOrigin::Inline { page_url, .. } => page_url,
            ScriptOrigin::Bundled { url, .. } => url,
        }
    }

    /// `true` for inline snippets.
    pub fn is_inline(&self) -> bool {
        matches!(self, ScriptOrigin::Inline { .. })
    }

    /// `true` for bundles.
    pub fn is_bundled(&self) -> bool {
        matches!(self, ScriptOrigin::Bundled { .. })
    }
}

/// Generator-side expectation of how a script should end up classified.
/// Used only for corpus statistics and tests, never by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScriptArchetype {
    /// Issues only tracking requests (analytics tags, ad loaders).
    Tracking,
    /// Issues only functional requests (libraries, app code).
    Functional,
    /// Intentionally combines both (bundles, inlined pixels, SDKs).
    Mixed,
}

/// A script as it exists on one particular page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageScript {
    /// Where the script came from.
    pub origin: ScriptOrigin,
    /// The methods defined by the script.
    pub methods: Vec<ScriptMethodSpec>,
    /// Indices of other page scripts this script dynamically injects
    /// (tag-manager style); the injected scripts' requests carry this
    /// script in their ancestral call stack.
    pub loads_scripts: Vec<usize>,
    /// Generator-side archetype.
    pub archetype: ScriptArchetype,
}

impl PageScript {
    /// Total planned requests across all methods of this script.
    pub fn planned_request_count(&self) -> usize {
        self.methods.iter().map(|m| m.requests.len()).sum()
    }

    /// Iterate over all planned requests with their method index.
    pub fn planned_requests(&self) -> impl Iterator<Item = (usize, &PlannedRequest)> {
        self.methods
            .iter()
            .enumerate()
            .flat_map(|(i, m)| m.requests.iter().map(move |r| (i, r)))
    }
}

/// How important a page feature is — the paper's breakage rubric
/// distinguishes core functionality (search bar, navigation, images) from
/// secondary functionality (comments, widgets, video players).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureImportance {
    /// Core functionality: navigation, search, page images, page load itself.
    Core,
    /// Secondary functionality: comments, media widgets, icons.
    Secondary,
}

/// A user-visible page feature and the scripts it needs to work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Feature {
    /// Human-readable feature name (e.g. "image carousel", "comment section").
    pub name: String,
    /// Core vs secondary.
    pub importance: FeatureImportance,
    /// Indices of page scripts the feature requires; if any is blocked the
    /// feature breaks.
    pub required_scripts: Vec<usize>,
}

/// One website (landing page) in the corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Website {
    /// Popularity rank within the corpus (0 = most popular).
    pub rank: usize,
    /// Registrable domain (eTLD+1) of the site.
    pub domain: String,
    /// Hostname the landing page is served from.
    pub hostname: String,
    /// Full landing-page URL.
    pub url: String,
    /// Scripts that execute during the page load.
    pub scripts: Vec<PageScript>,
    /// Page features and their script dependencies (for breakage analysis).
    pub features: Vec<Feature>,
    /// Requests issued by the document itself (HTML-attribute images,
    /// stylesheets); TrackerSift excludes these from analysis because they
    /// are not script-initiated, but the crawler still observes them.
    pub non_script_requests: Vec<PlannedRequest>,
}

impl Website {
    /// Total script-initiated requests the page will issue.
    pub fn script_initiated_request_count(&self) -> usize {
        self.scripts.iter().map(|s| s.planned_request_count()).sum()
    }

    /// Number of scripts whose archetype is [`ScriptArchetype::Mixed`].
    pub fn mixed_script_count(&self) -> usize {
        self.scripts
            .iter()
            .filter(|s| s.archetype == ScriptArchetype::Mixed)
            .count()
    }
}

/// The whole corpus: websites plus the third-party ecosystem they embed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebCorpus {
    /// Every website in the corpus (index = rank).
    pub websites: Vec<Website>,
    /// The third-party ecosystem.
    pub ecosystem: crate::ecosystem::Ecosystem,
    /// Seed used to generate the corpus (reproducibility).
    pub seed: u64,
}

impl WebCorpus {
    /// Total script-initiated requests across the corpus.
    pub fn total_script_initiated_requests(&self) -> usize {
        self.websites
            .iter()
            .map(|w| w.script_initiated_request_count())
            .sum()
    }

    /// Number of websites.
    pub fn len(&self) -> usize {
        self.websites.len()
    }

    /// `true` when the corpus has no websites.
    pub fn is_empty(&self) -> bool {
        self.websites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planned(url: &str, intent: Purpose) -> PlannedRequest {
        PlannedRequest {
            url: url.to_string(),
            resource_type: ResourceType::Xhr,
            intent,
            is_async: false,
            via_caller: None,
        }
    }

    #[test]
    fn script_origin_url_reporting() {
        let ext = ScriptOrigin::External {
            url: "https://cdn.x.com/a.js".into(),
        };
        let inl = ScriptOrigin::Inline {
            page_url: "https://site.com/".into(),
            position: 2,
        };
        let bun = ScriptOrigin::Bundled {
            url: "https://site.com/app.abc.js".into(),
            modules: vec!["pixel".into()],
        };
        assert_eq!(ext.url(), "https://cdn.x.com/a.js");
        assert_eq!(inl.url(), "https://site.com/");
        assert!(inl.is_inline());
        assert!(bun.is_bundled());
    }

    #[test]
    fn planned_request_counting() {
        let script = PageScript {
            origin: ScriptOrigin::External {
                url: "https://cdn.x.com/a.js".into(),
            },
            methods: vec![
                ScriptMethodSpec {
                    name: "init".into(),
                    requests: vec![planned("https://a.com/x", Purpose::Functional)],
                    callees: vec![1],
                },
                ScriptMethodSpec {
                    name: "send".into(),
                    requests: vec![
                        planned("https://t.com/collect?v=1&x=1", Purpose::Tracking),
                        planned("https://t.com/collect?v=1&x=2", Purpose::Tracking),
                    ],
                    callees: vec![],
                },
            ],
            loads_scripts: vec![],
            archetype: ScriptArchetype::Mixed,
        };
        assert_eq!(script.planned_request_count(), 3);
        let by_method: Vec<usize> = script.planned_requests().map(|(i, _)| i).collect();
        assert_eq!(by_method, vec![0, 1, 1]);
    }

    #[test]
    fn website_counters() {
        let site = Website {
            rank: 0,
            domain: "example.com".into(),
            hostname: "www.example.com".into(),
            url: "https://www.example.com/".into(),
            scripts: vec![],
            features: vec![],
            non_script_requests: vec![planned(
                "https://img.example.com/logo.png",
                Purpose::Functional,
            )],
        };
        assert_eq!(site.script_initiated_request_count(), 0);
        assert_eq!(site.mixed_script_count(), 0);
    }
}
