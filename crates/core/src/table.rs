//! The flattened serving representation: dense per-granularity class
//! arrays plus a frozen key lookup.
//!
//! PR 3's [`Sifter::verdict`](crate::service::Sifter::verdict) walked four
//! `HashMap<ResourceKey, LevelEntry>` levels — a string hash *and* a key
//! hash per granularity. This module replaces the per-query hierarchy-map
//! walk with one representation every read path shares:
//!
//! * [`ClassTable`] — four dense `Vec<u8>` arrays (one per
//!   [`Granularity`]), indexed by [`ResourceKey::index`]. Each byte encodes
//!   "not a member of this level" or one of the three classifications, so a
//!   level probe is a bounds-checked array read instead of a hash lookup.
//!   The incremental commit patches exactly the dirty slots in place.
//! * [`verdict_walk`] — the one implementation of the coarsest-to-finest
//!   verdict walk, generic over [`KeyResolver`] so the single-threaded
//!   sifter (live [`KeyInterner`](crate::intern::KeyInterner)) and the
//!   concurrent readers (immutable [`FrozenKeys`]) execute identical logic.
//! * [`VerdictTable`] — an immutable, point-in-time pairing of a
//!   [`ClassTable`] with the [`FrozenKeys`] it was built against, plus the
//!   commit version and request accounting. This is the unit the
//!   [`SifterWriter`](crate::concurrent::SifterWriter) publishes atomically
//!   and every [`SifterReader`](crate::concurrent::SifterReader) pins;
//!   snapshot restore produces its state through the same commit path, so
//!   batch, single-threaded, and concurrent serving all read through this
//!   one representation.

use crate::decision::{self, Decision, DecisionRequest, KeyedRequest, Resolved};
use crate::frames::{self, SurrogateFrames, FIXED_COMBOS, SINGLE_HEADER_LEN};
use crate::hierarchy::Granularity;
use crate::intern::{FrozenKeys, KeyResolver, ResourceKey};
use crate::ratio::Classification;
use crate::revision::{self, ChangeKind, RevisionChange, VerdictRevision};
use crate::service::{Verdict, VerdictRequest};
use crate::surrogate::SurrogateScript;
use crawler::json::{object, Value};
use filterlist::tokens::TokenHashBuilder;
use filterlist::FilterEngine;
use rewriter::{RewrittenUrl, UrlRewriter};
use std::collections::HashMap;
use std::sync::Arc;

/// The surrogate-plan map a table carries: `Arc` values shared with the
/// sifter's incrementally maintained cache, so publishing a table after a
/// commit clones pointers, not plan strings.
pub(crate) type SurrogatePlans = HashMap<ResourceKey, Arc<SurrogateScript>, TokenHashBuilder>;

/// Per-key preformatted surrogate response frames, maintained beside
/// [`SurrogatePlans`] by the sifter's commits (the frames of a plan only
/// change when the plan itself is rebuilt) and shared into every published
/// table by `Arc`.
pub(crate) type SurrogateFrameMap = HashMap<ResourceKey, SurrogateFrames, TokenHashBuilder>;

/// Byte code for "this key is not a member of the level".
const ABSENT: u8 = 0;

fn code_of(classification: Classification) -> u8 {
    match classification {
        Classification::Tracking => 1,
        Classification::Functional => 2,
        Classification::Mixed => 3,
    }
}

fn classification_of(code: u8) -> Option<Classification> {
    match code {
        1 => Some(Classification::Tracking),
        2 => Some(Classification::Functional),
        3 => Some(Classification::Mixed),
        _ => None,
    }
}

/// Dense committed classifications, one byte array per granularity, indexed
/// by [`ResourceKey::index`]. Slots beyond an array's length (keys interned
/// after the last commit) and [`ABSENT`] slots both read as "not a member".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassTable {
    levels: [Vec<u8>; 4],
}

impl ClassTable {
    /// The committed classification of `key` at `granularity`, or `None`
    /// when the key is not a member of that level.
    #[inline]
    pub fn class(&self, granularity: Granularity, key: ResourceKey) -> Option<Classification> {
        self.levels[granularity.index()]
            .get(key.index())
            .copied()
            .and_then(classification_of)
    }

    /// Set (or clear, with `None`) the committed classification of `key` at
    /// `granularity`, growing the level array on first touch of a new key.
    pub(crate) fn set(
        &mut self,
        granularity: Granularity,
        key: ResourceKey,
        classification: Option<Classification>,
    ) {
        let level = &mut self.levels[granularity.index()];
        let index = key.index();
        if index >= level.len() {
            if classification.is_none() {
                // Clearing a slot that was never set: nothing to record.
                return;
            }
            level.resize(index + 1, ABSENT);
        }
        level[index] = classification.map_or(ABSENT, code_of);
    }

    /// Number of member keys at a granularity (non-absent slots).
    pub fn members(&self, granularity: Granularity) -> usize {
        self.levels[granularity.index()]
            .iter()
            .filter(|&&code| code != ABSENT)
            .count()
    }

    /// Every per-key class transition from `old` to `self`, resolved to key
    /// strings through `keys` (the frozen view `self` was committed
    /// against; ids are append-only stable within an epoch, so it resolves
    /// every id `old` knew too). Canonical (granularity, key) order —
    /// this is what one [`VerdictRevision`](crate::revision::VerdictRevision)
    /// records per commit.
    pub(crate) fn changes_since(&self, old: &ClassTable, keys: &FrozenKeys) -> Vec<RevisionChange> {
        let mut changes = Vec::new();
        for granularity in Granularity::ALL {
            let before = &old.levels[granularity.index()];
            let after = &self.levels[granularity.index()];
            for index in 0..before.len().max(after.len()) {
                let from = classification_of(before.get(index).copied().unwrap_or(ABSENT));
                let to = classification_of(after.get(index).copied().unwrap_or(ABSENT));
                let Some(kind) = ChangeKind::of(from, to) else {
                    continue;
                };
                let Some(key) = keys.shared_string_for_id(index as u32) else {
                    continue;
                };
                changes.push(RevisionChange {
                    granularity,
                    key,
                    kind,
                });
            }
        }
        revision::sort_changes(&mut changes);
        changes
    }
}

/// The shared coarsest-to-finest verdict walk over a [`ClassTable`].
///
/// Semantics (identical to PR 3's hierarchy-map walk, now in one place):
/// the walk stops at the first granularity whose classification is not
/// mixed; falling off the trained hierarchy below a mixed resource yields
/// `Mixed` at the last observed granularity; an unknown (or uncommitted)
/// domain yields [`Verdict::Unknown`].
pub(crate) fn verdict_walk<K: KeyResolver + ?Sized>(
    keys: &K,
    classes: &ClassTable,
    request: &VerdictRequest<'_>,
) -> Verdict {
    let Some(domain_class) = keys
        .key(request.domain)
        .and_then(|d| classes.class(Granularity::Domain, d))
    else {
        return Verdict::Unknown;
    };
    if domain_class != Classification::Mixed {
        return Verdict::Decided {
            classification: domain_class,
            granularity: Granularity::Domain,
        };
    }
    let Some(host_class) = keys
        .key(request.hostname)
        .and_then(|h| classes.class(Granularity::Hostname, h))
    else {
        return Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Domain,
        };
    };
    if host_class != Classification::Mixed {
        return Verdict::Decided {
            classification: host_class,
            granularity: Granularity::Hostname,
        };
    }
    // The script key is resolved once and reused for the method-pair
    // lookup below — one string hash fewer than resolving the composed
    // `script :: method` key from scratch.
    let script = keys.key(request.script);
    let Some(script_class) = script.and_then(|s| classes.class(Granularity::Script, s)) else {
        return Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Hostname,
        };
    };
    if script_class != Classification::Mixed {
        return Verdict::Decided {
            classification: script_class,
            granularity: Granularity::Script,
        };
    }
    let method_class = keys
        .key(request.method)
        .and_then(|name| keys.method_key(script.expect("script key resolved above"), name))
        .and_then(|m| classes.class(Granularity::Method, m));
    match method_class {
        Some(classification) => Verdict::Decided {
            classification,
            granularity: Granularity::Method,
        },
        None => Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Script,
        },
    }
}

/// The keyed twin of [`verdict_walk`]: identical semantics over a request
/// whose four keys are already resolved (`None` = "that table never
/// interned this string"), so id-form wire requests walk the hierarchy
/// without a single string hash. The resolver is only consulted for the
/// `(script, method-name)` → composed-method-key pair lookup — a hash over
/// two `Copy` ids.
pub(crate) fn verdict_walk_keyed<K: KeyResolver + ?Sized>(
    keys: &K,
    classes: &ClassTable,
    request: &KeyedRequest<'_>,
) -> Verdict {
    let Some(domain_class) = request
        .domain
        .and_then(|d| classes.class(Granularity::Domain, d))
    else {
        return Verdict::Unknown;
    };
    if domain_class != Classification::Mixed {
        return Verdict::Decided {
            classification: domain_class,
            granularity: Granularity::Domain,
        };
    }
    let Some(host_class) = request
        .hostname
        .and_then(|h| classes.class(Granularity::Hostname, h))
    else {
        return Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Domain,
        };
    };
    if host_class != Classification::Mixed {
        return Verdict::Decided {
            classification: host_class,
            granularity: Granularity::Hostname,
        };
    }
    let Some(script_class) = request
        .script
        .and_then(|s| classes.class(Granularity::Script, s))
    else {
        return Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Hostname,
        };
    };
    if script_class != Classification::Mixed {
        return Verdict::Decided {
            classification: script_class,
            granularity: Granularity::Script,
        };
    }
    let method_class = request
        .method
        .and_then(|name| {
            keys.method_key(request.script.expect("script class resolved above"), name)
        })
        .and_then(|m| classes.class(Granularity::Method, m));
    match method_class {
        Some(classification) => Verdict::Decided {
            classification,
            granularity: Granularity::Method,
        },
        None => Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Script,
        },
    }
}

/// Response bodies preformatted at table-build time, so the serving hot
/// path answers with a `memcpy` of a prebuilt slice instead of walking a
/// JSON tree or encoding a frame per request.
///
/// Two families are prebuilt:
///
/// * the [`FIXED_COMBOS`] non-surrogate decisions (observe, allow/block ×
///   hierarchy granularity or filter list) as **complete** single-decision
///   bodies — JSON with the table version baked in, and 15-byte binary
///   frames — plus version-free JSON fragments for batch assembly;
/// * per-key **surrogate frames** (the JSON decision object and the binary
///   payload of every committed mixed script's plan), maintained
///   incrementally by the sifter beside the plans themselves and shared
///   here by `Arc` — a commit that rebuilt three plans reformats three
///   frames, not the whole map.
///
/// The JSON bodies are produced by rendering the same [`Value`] trees the
/// serialize-per-request path builds, so a preformatted answer is
/// byte-identical to a freshly encoded one — the property the wire
/// byte-identity tests pin down.
#[derive(Debug, Clone)]
pub struct PrebuiltResponses {
    /// Complete JSON single-decision bodies
    /// (`{"version":V,"decision":{…}}`), indexed by
    /// [`frames::fixed_index`].
    json_single: [Arc<str>; FIXED_COMBOS],
    /// Version-free JSON decision objects for batch assembly.
    json_fragment: [Arc<str>; FIXED_COMBOS],
    /// Complete 15-byte binary single-decision bodies, version baked.
    binary_single: [[u8; SINGLE_HEADER_LEN]; FIXED_COMBOS],
    /// `{"version":V,"decision":` — the prefix a surrogate's JSON fragment
    /// is spliced after (append `}` to close).
    json_single_prefix: Arc<str>,
    /// `{"version":V,"decisions":[` — the prefix of a batch JSON body
    /// (append `]}` to close).
    json_batch_prefix: Arc<str>,
    /// Per-key surrogate frames, shared with the sifter's cache.
    surrogates: Arc<SurrogateFrameMap>,
}

impl PrebuiltResponses {
    fn build(version: u64, surrogates: Arc<SurrogateFrameMap>) -> Self {
        let render_single = |index: usize| -> Arc<str> {
            object(vec![
                ("version", Value::number_u64(version)),
                (
                    "decision",
                    frames::decision_value(&frames::fixed_decision(index)),
                ),
            ])
            .render()
            .into()
        };
        let render_fragment = |index: usize| -> Arc<str> {
            frames::decision_value(&frames::fixed_decision(index))
                .render()
                .into()
        };
        // Derive the splice prefixes from a rendered probe body so manual
        // assembly (prefix + fragment + close) stays byte-identical to a
        // full render even if the JSON codec's formatting ever changes.
        let probe = object(vec![("version", Value::number_u64(version))]).render();
        let version_head = probe.strip_suffix('}').expect("object render ends in }");
        let json_single_prefix: Arc<str> = format!("{version_head},\"decision\":").into();
        let json_batch_prefix: Arc<str> = format!("{version_head},\"decisions\":[").into();
        PrebuiltResponses {
            json_single: std::array::from_fn(render_single),
            json_fragment: std::array::from_fn(render_fragment),
            binary_single: std::array::from_fn(|index| {
                frames::encode_fixed_single(&frames::fixed_decision(index), version)
            }),
            json_single_prefix,
            json_batch_prefix,
            surrogates,
        }
    }

    /// The complete JSON single-decision body of a fixed combo.
    pub fn json_single(&self, index: usize) -> &str {
        &self.json_single[index]
    }

    /// The version-free JSON decision object of a fixed combo.
    pub fn json_fragment(&self, index: usize) -> &str {
        &self.json_fragment[index]
    }

    /// The complete binary single-decision body of a fixed combo.
    pub fn binary_single(&self, index: usize) -> &[u8; SINGLE_HEADER_LEN] {
        &self.binary_single[index]
    }

    /// `{"version":V,"decision":` — append a surrogate's
    /// [`json fragment`](SurrogateFrames) and a closing `}` to form a
    /// complete single-decision body.
    pub fn json_single_prefix(&self) -> &str {
        &self.json_single_prefix
    }

    /// `{"version":V,"decisions":[` — append comma-joined decision
    /// fragments and a closing `]}` to form a complete batch body.
    pub fn json_batch_prefix(&self) -> &str {
        &self.json_batch_prefix
    }

    /// The preformatted frames of a committed mixed script's surrogate
    /// plan, if that key has one.
    pub fn surrogate(&self, script: ResourceKey) -> Option<&SurrogateFrames> {
        self.surrogates.get(&script)
    }
}

/// What the preformatted serving path answers with: an index into the
/// fixed prebuilt bodies, borrowed surrogate frames, or a rewritten URL.
/// Produced by [`VerdictTable::decide_prebuilt`]; the fixed and surrogate
/// arms are a `memcpy` away from a complete response body, while rewrite
/// payloads are inherently per-request (the rewritten URL depends on the
/// request URL) and are encoded at serve time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrebuiltDecision<'a> {
    /// A non-payload decision: index the fixed tables of
    /// [`PrebuiltResponses`] with this.
    Fixed(usize),
    /// A surrogate decision: the preformatted frames of the script's plan.
    Surrogate(&'a SurrogateFrames),
    /// A rewrite decision: the rewritten request URL.
    Rewrite(Arc<RewrittenUrl>),
}

/// An immutable point-in-time verdict table: the committed [`ClassTable`]
/// paired with the [`FrozenKeys`] view it was built against, plus the
/// commit version and request accounting of that commit.
///
/// Produced by [`Sifter::verdict_table`](crate::service::Sifter::verdict_table)
/// and published atomically by
/// [`SifterWriter::commit`](crate::concurrent::SifterWriter::commit); a
/// table never changes after construction, so any number of threads may
/// read one concurrently.
#[derive(Debug, Clone)]
pub struct VerdictTable {
    keys: Arc<FrozenKeys>,
    classes: ClassTable,
    version: u64,
    committed: u64,
    residue: u64,
    /// The epoch of this table's key-id space. Ids are append-only stable
    /// within one epoch; a snapshot restore rebuilds the interner and bumps
    /// the epoch, invalidating every id a client cached against the old
    /// one.
    keys_epoch: u64,
    /// The filter-list backstop for [`VerdictTable::decide`]; shared with
    /// the sifter that exported the table (engines never change after
    /// build, so every published table carries the same `Arc`).
    engine: Option<Arc<FilterEngine>>,
    /// The URL rewriter for mixed requests whose URLs carry identifier
    /// parameters; like the engine, immutable after build and shared by
    /// `Arc` with the exporting sifter.
    url_rewriter: Option<Arc<UrlRewriter>>,
    /// Surrogate plans for every committed mixed script, maintained
    /// incrementally by the sifter's commits and shared here so concurrent
    /// readers serve [`Decision::Surrogate`] without touching the writer.
    surrogates: Arc<SurrogatePlans>,
    /// The writer's bounded revision ring as of this publish, ascending by
    /// version (`Arc` per revision: publishing clones pointers, not change
    /// lists). Empty for tables exported outside a concurrent writer.
    revisions: Vec<Arc<VerdictRevision>>,
    /// Preformatted response bodies (version baked), rebuilt per table.
    prebuilt: PrebuiltResponses,
}

impl VerdictTable {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        keys: Arc<FrozenKeys>,
        classes: ClassTable,
        version: u64,
        committed: u64,
        residue: u64,
        engine: Option<Arc<FilterEngine>>,
        url_rewriter: Option<Arc<UrlRewriter>>,
        surrogates: Arc<SurrogatePlans>,
        frames: Arc<SurrogateFrameMap>,
    ) -> Self {
        VerdictTable {
            keys,
            classes,
            version,
            committed,
            residue,
            keys_epoch: 0,
            engine,
            url_rewriter,
            surrogates,
            revisions: Vec::new(),
            prebuilt: PrebuiltResponses::build(version, frames),
        }
    }

    /// Rebase the table's published version (used by the concurrent writer
    /// to keep versions monotone across a snapshot restore, which resets
    /// the underlying commit count). Rebuilds the version-baked fixed
    /// bodies; the per-key surrogate frames are version-free and shared.
    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
        self.prebuilt = PrebuiltResponses::build(version, Arc::clone(&self.prebuilt.surrogates));
    }

    /// Stamp the key-id epoch (used by the concurrent writer, which owns
    /// the epoch counter).
    pub(crate) fn set_keys_epoch(&mut self, epoch: u64) {
        self.keys_epoch = epoch;
    }

    /// Attach the writer's revision-ring snapshot (used by the concurrent
    /// writer at publish time, so `GET /v1/revisions` serves lock-free from
    /// the pinned table).
    pub(crate) fn set_revisions(&mut self, revisions: Vec<Arc<VerdictRevision>>) {
        self.revisions = revisions;
    }

    /// This table's committed class arrays (what the writer diffs between
    /// publishes to record a revision).
    pub(crate) fn classes(&self) -> &ClassTable {
        &self.classes
    }

    /// The shared surrogate-plan map this table serves from (what delta
    /// snapshots resolve touched plan keys against).
    pub(crate) fn surrogate_plans(&self) -> &Arc<SurrogatePlans> {
        &self.surrogates
    }

    /// The committed surrogate plan of a script URL, if this table carries
    /// one — the string-keyed lookup delta-snapshot assembly uses.
    pub fn surrogate_plan(&self, script: &str) -> Option<Arc<SurrogateScript>> {
        let key = self.keys.key(script)?;
        self.surrogates.get(&key).cloned()
    }

    /// The bounded ring of per-commit verdict revisions as of this publish,
    /// ascending by version. Diff any two covered versions with
    /// [`diff_revisions`](crate::revision::diff_revisions).
    pub fn revisions(&self) -> &[Arc<VerdictRevision>] {
        &self.revisions
    }

    /// Answer one verdict query against this table's frozen state.
    pub fn verdict(&self, request: &VerdictRequest<'_>) -> Verdict {
        verdict_walk(self.keys.as_ref(), &self.classes, request)
    }

    /// Answer one enforcement decision against this table's frozen state —
    /// the same composition as [`Sifter::decide`](crate::service::Sifter::decide)
    /// (hierarchy verdict → surrogate plan for mixed scripts → filter-list
    /// backstop), byte-identical for the same committed state.
    pub fn decide(&self, request: &DecisionRequest<'_>) -> Decision {
        decision::decide(
            self.keys.as_ref(),
            &self.classes,
            self.engine.as_deref(),
            self.url_rewriter.as_deref(),
            |script| self.surrogates.get(&script).cloned(),
            request,
        )
    }

    /// The frozen key table this table's classes are indexed by. Binary
    /// wire clients fetch it (via the server's key handshake) to translate
    /// strings to the numeric ids [`VerdictTable::decide_keyed`] consumes.
    pub fn keys(&self) -> &FrozenKeys {
        self.keys.as_ref()
    }

    /// The epoch of this table's key-id space. A client that interned ids
    /// under a different epoch must re-fetch the key table before sending
    /// id-form requests.
    pub fn keys_epoch(&self) -> u64 {
        self.keys_epoch
    }

    /// The preformatted response bodies of this table.
    pub fn prebuilt(&self) -> &PrebuiltResponses {
        &self.prebuilt
    }

    /// Resolve a string request's keys against this table's frozen
    /// interner — the one-off translation [`VerdictTable::decide_keyed`]
    /// and [`VerdictTable::decide_prebuilt`] then serve without hashing.
    pub fn resolve<'a>(&self, request: &DecisionRequest<'a>) -> KeyedRequest<'a> {
        KeyedRequest::resolve(self.keys.as_ref(), request)
    }

    /// [`VerdictTable::decide`] over pre-resolved keys: same policy, same
    /// answer, zero string hashing. With keys from [`VerdictTable::resolve`]
    /// on the same table this is exactly `decide`; with ids a wire client
    /// cached under this table's [`keys_epoch`](VerdictTable::keys_epoch)
    /// it is the binary hot path.
    pub fn decide_keyed(&self, request: &KeyedRequest<'_>) -> Decision {
        match decision::decide_keyed_with(
            self.keys.as_ref(),
            &self.classes,
            self.engine.as_deref(),
            self.url_rewriter.as_deref(),
            |script| self.surrogates.get(&script).cloned(),
            request,
        ) {
            Resolved::Fixed(decision) => decision,
            Resolved::Rewrite(rewritten) => Decision::Rewrite(rewritten),
            Resolved::Surrogate(plan) => Decision::Surrogate(plan),
        }
    }

    /// The serving hot path: decide over pre-resolved keys and answer with
    /// preformatted bytes — an index into the fixed prebuilt bodies or the
    /// script's preformatted surrogate frames. Encodes the same decision
    /// [`VerdictTable::decide_keyed`] returns, byte-identical once
    /// rendered.
    pub fn decide_prebuilt(&self, request: &KeyedRequest<'_>) -> PrebuiltDecision<'_> {
        match decision::decide_keyed_with(
            self.keys.as_ref(),
            &self.classes,
            self.engine.as_deref(),
            self.url_rewriter.as_deref(),
            |script| self.prebuilt.surrogates.get(&script),
            request,
        ) {
            Resolved::Fixed(decision) => PrebuiltDecision::Fixed(
                frames::fixed_index(&decision).expect("policy fixed decisions are the 11 combos"),
            ),
            Resolved::Rewrite(rewritten) => PrebuiltDecision::Rewrite(rewritten),
            Resolved::Surrogate(frames) => PrebuiltDecision::Surrogate(frames),
        }
    }

    /// Number of mixed scripts with a precomputed surrogate plan.
    pub fn surrogate_count(&self) -> usize {
        self.surrogates.len()
    }

    /// The commit count of the sifter state this table snapshots. Strictly
    /// increasing across the tables a [`SifterWriter`](crate::concurrent::SifterWriter)
    /// publishes, so readers can order the states they observe.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Observations folded into this table's committed state.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Committed requests still attributed to mixed methods (the paper's
    /// "<2% residue") as of this table.
    pub fn unattributed(&self) -> u64 {
        self.residue
    }

    /// Number of member resources at a granularity.
    pub fn members(&self, granularity: Granularity) -> usize {
        self.classes.members(granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_round_trips_codes() {
        let mut table = ClassTable::default();
        let key = ResourceKey::test_key(5);
        assert_eq!(table.class(Granularity::Domain, key), None);
        for class in [
            Classification::Tracking,
            Classification::Functional,
            Classification::Mixed,
        ] {
            table.set(Granularity::Domain, key, Some(class));
            assert_eq!(table.class(Granularity::Domain, key), Some(class));
        }
        // Levels are independent arrays.
        assert_eq!(table.class(Granularity::Hostname, key), None);
        table.set(Granularity::Domain, key, None);
        assert_eq!(table.class(Granularity::Domain, key), None);
        // Clearing an untouched slot does not grow the array.
        table.set(Granularity::Script, ResourceKey::test_key(1000), None);
        assert_eq!(table.members(Granularity::Script), 0);
    }

    /// The decision fixture of `crate::decision`'s tests: every arm of the
    /// policy reachable (pure tracking/functional domains, a mixed script
    /// with a surrogate plan, a filter-list backstop).
    fn trained_table() -> VerdictTable {
        use filterlist::ListKind;
        let mut sifter = crate::service::Sifter::builder()
            .filter_lists(&[(ListKind::EasyList, "||blocked.example^\n")])
            .rewriter(rewriter::RewriterBuilder::new().default_rules().build())
            .build();
        for _ in 0..5 {
            sifter.observe_parts(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send",
                true,
            );
            sifter.observe_parts(
                "cdn.com",
                "a.cdn.com",
                "https://pub.com/ui.js",
                "load",
                false,
            );
        }
        for flag in [true, false, true, false, true, false] {
            sifter.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "track",
                true,
            );
            sifter.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "render",
                false,
            );
            sifter.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "dispatch",
                flag,
            );
        }
        sifter.commit();
        sifter.verdict_table()
    }

    /// Requests covering every decision arm against `trained_table`.
    fn probe_requests() -> Vec<DecisionRequest<'static>> {
        vec![
            DecisionRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send"),
            DecisionRequest::new("cdn.com", "a.cdn.com", "https://pub.com/ui.js", "load"),
            DecisionRequest::new(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "dispatch",
            ),
            DecisionRequest::new("hub.com", "w.hub.com", "https://pub.com/mixed.js", "novel"),
            // Mixed below the trained hierarchy, URL carrying identifiers:
            // the rewrite arm.
            DecisionRequest::new("hub.com", "new.hub.com", "s2.js", "m").with_url(
                "https://new.hub.com/api?id=7&gclid=abc&utm_source=mail",
                "pub.com",
                filterlist::ResourceType::Xhr,
            ),
            DecisionRequest::new("zzz.com", "a.zzz.com", "s.js", "m"),
            DecisionRequest::new("zzz.com", "a.zzz.com", "s.js", "m").with_url(
                "https://px.blocked.example/p.gif",
                "pub.com",
                filterlist::ResourceType::Image,
            ),
            DecisionRequest::new("zzz.com", "a.zzz.com", "s.js", "m").with_url(
                "https://static.fine.example/app.css",
                "pub.com",
                filterlist::ResourceType::Stylesheet,
            ),
        ]
    }

    #[test]
    fn keyed_decisions_match_string_decisions() {
        let table = trained_table();
        let mut surrogates = 0;
        let mut rewrites = 0;
        for request in probe_requests() {
            let keyed = table.resolve(&request);
            let decision = table.decide(&request);
            assert_eq!(table.decide_keyed(&keyed), decision, "for {request:?}");
            if decision.surrogate().is_some() {
                surrogates += 1;
            }
            if decision.rewrite().is_some() {
                rewrites += 1;
            }
        }
        assert!(surrogates > 0, "fixture must exercise the surrogate arm");
        assert!(rewrites > 0, "fixture must exercise the rewrite arm");
    }

    #[test]
    fn prebuilt_decisions_render_byte_identically() {
        let table = trained_table();
        for request in probe_requests() {
            let decision = table.decide(&request);
            let fragment = match table.decide_prebuilt(&table.resolve(&request)) {
                PrebuiltDecision::Fixed(index) => {
                    assert_eq!(frames::fixed_decision(index), decision, "for {request:?}");
                    // The complete single body is prefix + fragment + close.
                    assert_eq!(
                        table.prebuilt().json_single(index),
                        format!(
                            "{}{}{}",
                            table.prebuilt().json_single_prefix(),
                            table.prebuilt().json_fragment(index),
                            '}'
                        ),
                        "for {request:?}"
                    );
                    // And the binary body matches the per-request encoder.
                    assert_eq!(
                        table.prebuilt().binary_single(index)[..],
                        frames::encode_fixed_single(&decision, table.version()),
                        "for {request:?}"
                    );
                    table.prebuilt().json_fragment(index).to_string()
                }
                PrebuiltDecision::Surrogate(sf) => {
                    let plan = decision.surrogate().expect("prebuilt surrogate arm");
                    assert_eq!(sf.binary.as_ref(), frames::encode_surrogate_payload(plan));
                    sf.json.to_string()
                }
                PrebuiltDecision::Rewrite(rewritten) => {
                    let expected = decision.rewrite().expect("prebuilt rewrite arm");
                    assert_eq!(rewritten.as_ref(), expected, "for {request:?}");
                    frames::rewrite_value(&rewritten).render()
                }
            };
            assert_eq!(
                fragment,
                frames::decision_value(&decision).render(),
                "for {request:?}"
            );
        }
    }

    #[test]
    fn members_counts_non_absent_slots() {
        let mut table = ClassTable::default();
        table.set(
            Granularity::Method,
            ResourceKey::test_key(0),
            Some(Classification::Mixed),
        );
        table.set(
            Granularity::Method,
            ResourceKey::test_key(7),
            Some(Classification::Tracking),
        );
        table.set(Granularity::Method, ResourceKey::test_key(7), None);
        assert_eq!(table.members(Granularity::Method), 1);
    }
}
