//! The flattened serving representation: dense per-granularity class
//! arrays plus a frozen key lookup.
//!
//! PR 3's [`Sifter::verdict`](crate::service::Sifter::verdict) walked four
//! `HashMap<ResourceKey, LevelEntry>` levels — a string hash *and* a key
//! hash per granularity. This module replaces the per-query hierarchy-map
//! walk with one representation every read path shares:
//!
//! * [`ClassTable`] — four dense `Vec<u8>` arrays (one per
//!   [`Granularity`]), indexed by [`ResourceKey::index`]. Each byte encodes
//!   "not a member of this level" or one of the three classifications, so a
//!   level probe is a bounds-checked array read instead of a hash lookup.
//!   The incremental commit patches exactly the dirty slots in place.
//! * [`verdict_walk`] — the one implementation of the coarsest-to-finest
//!   verdict walk, generic over [`KeyResolver`] so the single-threaded
//!   sifter (live [`KeyInterner`](crate::intern::KeyInterner)) and the
//!   concurrent readers (immutable [`FrozenKeys`]) execute identical logic.
//! * [`VerdictTable`] — an immutable, point-in-time pairing of a
//!   [`ClassTable`] with the [`FrozenKeys`] it was built against, plus the
//!   commit version and request accounting. This is the unit the
//!   [`SifterWriter`](crate::concurrent::SifterWriter) publishes atomically
//!   and every [`SifterReader`](crate::concurrent::SifterReader) pins;
//!   snapshot restore produces its state through the same commit path, so
//!   batch, single-threaded, and concurrent serving all read through this
//!   one representation.

use crate::decision::{self, Decision, DecisionRequest};
use crate::hierarchy::Granularity;
use crate::intern::{FrozenKeys, KeyResolver, ResourceKey};
use crate::ratio::Classification;
use crate::service::{Verdict, VerdictRequest};
use crate::surrogate::SurrogateScript;
use filterlist::tokens::TokenHashBuilder;
use filterlist::FilterEngine;
use std::collections::HashMap;
use std::sync::Arc;

/// The surrogate-plan map a table carries: `Arc` values shared with the
/// sifter's incrementally maintained cache, so publishing a table after a
/// commit clones pointers, not plan strings.
pub(crate) type SurrogatePlans = HashMap<ResourceKey, Arc<SurrogateScript>, TokenHashBuilder>;

/// Byte code for "this key is not a member of the level".
const ABSENT: u8 = 0;

fn code_of(classification: Classification) -> u8 {
    match classification {
        Classification::Tracking => 1,
        Classification::Functional => 2,
        Classification::Mixed => 3,
    }
}

fn classification_of(code: u8) -> Option<Classification> {
    match code {
        1 => Some(Classification::Tracking),
        2 => Some(Classification::Functional),
        3 => Some(Classification::Mixed),
        _ => None,
    }
}

/// Dense committed classifications, one byte array per granularity, indexed
/// by [`ResourceKey::index`]. Slots beyond an array's length (keys interned
/// after the last commit) and [`ABSENT`] slots both read as "not a member".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassTable {
    levels: [Vec<u8>; 4],
}

impl ClassTable {
    /// The committed classification of `key` at `granularity`, or `None`
    /// when the key is not a member of that level.
    #[inline]
    pub fn class(&self, granularity: Granularity, key: ResourceKey) -> Option<Classification> {
        self.levels[granularity.index()]
            .get(key.index())
            .copied()
            .and_then(classification_of)
    }

    /// Set (or clear, with `None`) the committed classification of `key` at
    /// `granularity`, growing the level array on first touch of a new key.
    pub(crate) fn set(
        &mut self,
        granularity: Granularity,
        key: ResourceKey,
        classification: Option<Classification>,
    ) {
        let level = &mut self.levels[granularity.index()];
        let index = key.index();
        if index >= level.len() {
            if classification.is_none() {
                // Clearing a slot that was never set: nothing to record.
                return;
            }
            level.resize(index + 1, ABSENT);
        }
        level[index] = classification.map_or(ABSENT, code_of);
    }

    /// Number of member keys at a granularity (non-absent slots).
    pub fn members(&self, granularity: Granularity) -> usize {
        self.levels[granularity.index()]
            .iter()
            .filter(|&&code| code != ABSENT)
            .count()
    }
}

/// The shared coarsest-to-finest verdict walk over a [`ClassTable`].
///
/// Semantics (identical to PR 3's hierarchy-map walk, now in one place):
/// the walk stops at the first granularity whose classification is not
/// mixed; falling off the trained hierarchy below a mixed resource yields
/// `Mixed` at the last observed granularity; an unknown (or uncommitted)
/// domain yields [`Verdict::Unknown`].
pub(crate) fn verdict_walk<K: KeyResolver + ?Sized>(
    keys: &K,
    classes: &ClassTable,
    request: &VerdictRequest<'_>,
) -> Verdict {
    let Some(domain_class) = keys
        .key(request.domain)
        .and_then(|d| classes.class(Granularity::Domain, d))
    else {
        return Verdict::Unknown;
    };
    if domain_class != Classification::Mixed {
        return Verdict::Decided {
            classification: domain_class,
            granularity: Granularity::Domain,
        };
    }
    let Some(host_class) = keys
        .key(request.hostname)
        .and_then(|h| classes.class(Granularity::Hostname, h))
    else {
        return Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Domain,
        };
    };
    if host_class != Classification::Mixed {
        return Verdict::Decided {
            classification: host_class,
            granularity: Granularity::Hostname,
        };
    }
    // The script key is resolved once and reused for the method-pair
    // lookup below — one string hash fewer than resolving the composed
    // `script :: method` key from scratch.
    let script = keys.key(request.script);
    let Some(script_class) = script.and_then(|s| classes.class(Granularity::Script, s)) else {
        return Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Hostname,
        };
    };
    if script_class != Classification::Mixed {
        return Verdict::Decided {
            classification: script_class,
            granularity: Granularity::Script,
        };
    }
    let method_class = keys
        .key(request.method)
        .and_then(|name| keys.method_key(script.expect("script key resolved above"), name))
        .and_then(|m| classes.class(Granularity::Method, m));
    match method_class {
        Some(classification) => Verdict::Decided {
            classification,
            granularity: Granularity::Method,
        },
        None => Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Script,
        },
    }
}

/// An immutable point-in-time verdict table: the committed [`ClassTable`]
/// paired with the [`FrozenKeys`] view it was built against, plus the
/// commit version and request accounting of that commit.
///
/// Produced by [`Sifter::verdict_table`](crate::service::Sifter::verdict_table)
/// and published atomically by
/// [`SifterWriter::commit`](crate::concurrent::SifterWriter::commit); a
/// table never changes after construction, so any number of threads may
/// read one concurrently.
#[derive(Debug, Clone)]
pub struct VerdictTable {
    keys: Arc<FrozenKeys>,
    classes: ClassTable,
    version: u64,
    committed: u64,
    residue: u64,
    /// The filter-list backstop for [`VerdictTable::decide`]; shared with
    /// the sifter that exported the table (engines never change after
    /// build, so every published table carries the same `Arc`).
    engine: Option<Arc<FilterEngine>>,
    /// Surrogate plans for every committed mixed script, maintained
    /// incrementally by the sifter's commits and shared here so concurrent
    /// readers serve [`Decision::Surrogate`] without touching the writer.
    surrogates: Arc<SurrogatePlans>,
}

impl VerdictTable {
    pub(crate) fn new(
        keys: Arc<FrozenKeys>,
        classes: ClassTable,
        version: u64,
        committed: u64,
        residue: u64,
        engine: Option<Arc<FilterEngine>>,
        surrogates: Arc<SurrogatePlans>,
    ) -> Self {
        VerdictTable {
            keys,
            classes,
            version,
            committed,
            residue,
            engine,
            surrogates,
        }
    }

    /// Rebase the table's published version (used by the concurrent writer
    /// to keep versions monotone across a snapshot restore, which resets
    /// the underlying commit count).
    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Answer one verdict query against this table's frozen state.
    pub fn verdict(&self, request: &VerdictRequest<'_>) -> Verdict {
        verdict_walk(self.keys.as_ref(), &self.classes, request)
    }

    /// Answer one enforcement decision against this table's frozen state —
    /// the same composition as [`Sifter::decide`](crate::service::Sifter::decide)
    /// (hierarchy verdict → surrogate plan for mixed scripts → filter-list
    /// backstop), byte-identical for the same committed state.
    pub fn decide(&self, request: &DecisionRequest<'_>) -> Decision {
        decision::decide(
            self.keys.as_ref(),
            &self.classes,
            self.engine.as_deref(),
            |script| self.surrogates.get(&script).cloned(),
            request,
        )
    }

    /// Number of mixed scripts with a precomputed surrogate plan.
    pub fn surrogate_count(&self) -> usize {
        self.surrogates.len()
    }

    /// The commit count of the sifter state this table snapshots. Strictly
    /// increasing across the tables a [`SifterWriter`](crate::concurrent::SifterWriter)
    /// publishes, so readers can order the states they observe.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Observations folded into this table's committed state.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Committed requests still attributed to mixed methods (the paper's
    /// "<2% residue") as of this table.
    pub fn unattributed(&self) -> u64 {
        self.residue
    }

    /// Number of member resources at a granularity.
    pub fn members(&self, granularity: Granularity) -> usize {
        self.classes.members(granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_round_trips_codes() {
        let mut table = ClassTable::default();
        let key = ResourceKey::test_key(5);
        assert_eq!(table.class(Granularity::Domain, key), None);
        for class in [
            Classification::Tracking,
            Classification::Functional,
            Classification::Mixed,
        ] {
            table.set(Granularity::Domain, key, Some(class));
            assert_eq!(table.class(Granularity::Domain, key), Some(class));
        }
        // Levels are independent arrays.
        assert_eq!(table.class(Granularity::Hostname, key), None);
        table.set(Granularity::Domain, key, None);
        assert_eq!(table.class(Granularity::Domain, key), None);
        // Clearing an untouched slot does not grow the array.
        table.set(Granularity::Script, ResourceKey::test_key(1000), None);
        assert_eq!(table.members(Granularity::Script), 0);
    }

    #[test]
    fn members_counts_non_absent_slots() {
        let mut table = ClassTable::default();
        table.set(
            Granularity::Method,
            ResourceKey::test_key(0),
            Some(Classification::Mixed),
        );
        table.set(
            Granularity::Method,
            ResourceKey::test_key(7),
            Some(Classification::Tracking),
        );
        table.set(Granularity::Method, ResourceKey::test_key(7), None);
        assert_eq!(table.members(Granularity::Method), 1);
    }
}
