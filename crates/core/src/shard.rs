//! Sharded verdict writers: N independent commit loops behind one façade.
//!
//! A single [`SifterWriter`](crate::concurrent::SifterWriter) serialises
//! every commit through one fold, so commit throughput flatlines no matter
//! how many cores ingest observations. The TrackerSift hierarchy offers a
//! natural partition key: every observation is attributed to exactly one
//! **registrable domain**, and the domain → hostname → script → method walk
//! descends strictly inside that domain. Splitting the verdict table by
//! domain hash therefore yields N sifters whose commits are independent —
//! the parameter-server shape (sharded writers, one read façade) the
//! scale-out roadmap calls for.
//!
//! * [`ShardedWriter`] routes each observation to `shard_of(domain)` and
//!   commits every shard (together or independently).
//! * [`ShardedReader`] composes the shards' lock-free readers:
//!   [`ShardedReader::decide`] pins only the owning shard, and
//!   [`ShardedReader::decide_batch`] pins **each shard once per batch**, so
//!   a batch costs `O(shards)` pin pairs, not `O(requests)`.
//!
//! # Byte-identity with the unsharded path
//!
//! Routing is a pure function of the registrable domain
//! ([`shard_index`]: FNV-1a 64 of the domain, mod N), so every key of one
//! domain — its hostnames, and the scripts/methods observed under them —
//! lands in the same shard, and that shard's verdict walk sees exactly the
//! observations the unsharded sifter would attribute to that domain.
//! Decisions are therefore byte-identical to a single writer fed the same
//! stream, with one documented caveat: a script observed under hostnames of
//! **multiple registrable domains** has its script-level class aggregated
//! across domains by a single sifter, but per-partition by the shards. The
//! [`ShardedWriter::cross_partition_scripts`] diagnostic counts exactly
//! those scripts; when it is zero (scripts stay domain-scoped, the common
//! case for first-party scripts), the equivalence is exact — the property
//! test interleaves observes and commits at every shard count to pin it.

use crate::concurrent::{SifterReader, SifterWriter};
use crate::decision::{Decision, DecisionRequest};
use crate::hierarchy::Granularity;
use crate::label::LabeledRequest;
use crate::service::{CommitStats, ObserveOutcome, Sifter, Verdict, VerdictRequest};
use filterlist::tokens::fnv1a64;
use filterlist::{registrable_domain, ParsedUrl, ResourceType};
use std::collections::HashMap;

/// The stateless routing function: which of `shards` partitions owns
/// `domain`. FNV-1a 64 over the domain string, mod the shard count — the
/// same hash the filter index and journal checksums already use, so routing
/// is deterministic across processes and releases.
pub fn shard_index(domain: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "a sharded writer has at least one shard");
    (fnv1a64(domain.as_bytes()) % shards as u64) as usize
}

/// N independent [`SifterWriter`] commit loops behind one ingestion façade,
/// partitioned by registrable-domain hash.
///
/// Build one writer per shard from identically configured sifters (share
/// the filter engine and rewriter by `Arc` via
/// [`SifterBuilder::shared_engine`](crate::service::SifterBuilder) so the
/// shards don't recompile them), then route observations through this
/// façade. `new` with a single sifter degenerates to the unsharded path.
///
/// ```
/// use trackersift::shard::ShardedWriter;
/// use trackersift::{DecisionRequest, Sifter};
///
/// let mut writer = ShardedWriter::build(4, |_| Sifter::builder().build());
/// writer.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", true);
/// writer.observe_parts("cdn.com", "a.cdn.com", "https://pub.com/ui.js", "load", false);
/// writer.commit(); // commits every shard; each fold is independent
///
/// let reader = writer.reader();
/// let request = DecisionRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send");
/// assert!(reader.decide(&request).is_enforcing());
/// ```
#[derive(Debug)]
pub struct ShardedWriter {
    shards: Vec<SifterWriter>,
}

impl ShardedWriter {
    /// Split each sifter into a shard's writer. Panics on an empty vector
    /// (a sharded writer has at least one shard).
    pub fn new(sifters: Vec<Sifter>) -> Self {
        assert!(
            !sifters.is_empty(),
            "a sharded writer needs at least one shard"
        );
        ShardedWriter {
            shards: sifters
                .into_iter()
                .map(|sifter| sifter.into_concurrent().0)
                .collect(),
        }
    }

    /// Build `shards` shards, constructing each sifter with `make` (called
    /// with the shard index). Configure every shard identically — same
    /// thresholds, same shared engine/rewriter — or the shards' answers
    /// will legitimately differ.
    pub fn build(shards: usize, make: impl FnMut(usize) -> Sifter) -> Self {
        ShardedWriter::new((0..shards.max(1)).map(make).collect())
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `domain` (see [`shard_index`]).
    pub fn shard_of(&self, domain: &str) -> usize {
        shard_index(domain, self.shards.len())
    }

    /// Ingest one labeled request into its domain's shard.
    pub fn observe(&mut self, request: &LabeledRequest) {
        let shard = self.shard_of(&request.domain);
        self.shards[shard].observe(request);
    }

    /// Ingest a batch of labeled requests, each into its domain's shard.
    pub fn observe_all<'a>(&mut self, requests: impl IntoIterator<Item = &'a LabeledRequest>) {
        for request in requests {
            self.observe(request);
        }
    }

    /// Ingest one observation by its four attribution keys and label; see
    /// [`SifterWriter::observe_parts`].
    pub fn observe_parts(
        &mut self,
        domain: &str,
        hostname: &str,
        script: &str,
        method: &str,
        tracking: bool,
    ) {
        let shard = self.shard_of(domain);
        self.shards[shard].observe_parts(domain, hostname, script, method, tracking);
    }

    /// Label and ingest one raw request URL; see
    /// [`SifterWriter::observe_url`]. The router derives the same
    /// registrable domain the shard's labeling path will (URL hostname →
    /// registrable domain), so the observation lands where its keys live;
    /// unparseable URLs route deterministically to shard 0, which counts
    /// the rejection.
    pub fn observe_url(
        &mut self,
        url: &str,
        source_hostname: &str,
        resource_type: ResourceType,
        initiator_script: &str,
        initiator_method: &str,
    ) -> ObserveOutcome {
        let shard = match ParsedUrl::parse(url) {
            Some(parsed) => self.shard_of(&registrable_domain(&parsed.hostname)),
            None => 0,
        };
        self.shards[shard].observe_url(
            url,
            source_hostname,
            resource_type,
            initiator_script,
            initiator_method,
        )
    }

    /// Commit every shard (each fold covers only that shard's dirty slice)
    /// and publish each shard's table atomically. Returns the per-shard
    /// commit stats, in shard order.
    pub fn commit(&mut self) -> Vec<CommitStats> {
        self.shards.iter_mut().map(|shard| shard.commit()).collect()
    }

    /// Commit one shard independently — the per-shard commit loop a
    /// deployment runs when shards are folded on their own cadences.
    pub fn commit_shard(&mut self, shard: usize) -> CommitStats {
        self.shards[shard].commit()
    }

    /// Total observations buffered across shards, pending the next commit.
    pub fn pending(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.sifter().pending())
            .sum()
    }

    /// Per-shard published table versions, in shard order.
    pub fn versions(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|shard| shard.published_version())
            .collect()
    }

    /// Per-shard commit counts, in shard order.
    pub fn commits(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|shard| shard.sifter().commits())
            .collect()
    }

    /// Borrow one shard's writer (stats, snapshots, revision rings).
    pub fn shard(&self, shard: usize) -> &SifterWriter {
        &self.shards[shard]
    }

    /// Mutably borrow one shard's writer (durability, capacity tuning).
    pub fn shard_mut(&mut self, shard: usize) -> &mut SifterWriter {
        &mut self.shards[shard]
    }

    /// A composing reader over every shard's lock-free reader.
    pub fn reader(&self) -> ShardedReader {
        ShardedReader {
            shards: self.shards.iter().map(|shard| shard.reader()).collect(),
        }
    }

    /// Disassemble the façade into its per-shard writers, in shard order —
    /// the deployment shape where each shard's commit loop runs on its own
    /// thread. Readers minted before the split stay valid; route
    /// observations with [`shard_index`] over the same shard count.
    pub fn into_writers(self) -> Vec<SifterWriter> {
        self.shards
    }

    /// The partition-invariant diagnostic: how many committed scripts are
    /// members of **more than one** shard. A single sifter aggregates such
    /// a script's class across all its domains; the shards classify it per
    /// partition — so a non-zero count marks the keys where sharded answers
    /// may legitimately diverge from the unsharded path. Computed on demand
    /// from committed members; no hot-path state.
    pub fn cross_partition_scripts(&self) -> usize {
        if self.shards.len() < 2 {
            return 0;
        }
        let mut seen: HashMap<String, u32> = HashMap::new();
        for shard in &self.shards {
            let hierarchy = shard.sifter().hierarchy();
            for level in &hierarchy.levels {
                if level.granularity != Granularity::Script {
                    continue;
                }
                for resource in &level.resources {
                    *seen.entry(resource.key.clone()).or_insert(0) += 1;
                }
            }
        }
        seen.values().filter(|&&shards| shards > 1).count()
    }
}

/// The composing read façade over a [`ShardedWriter`]'s shards: routes
/// per-key, pins per-shard, and stays byte-identical to the unsharded
/// reader for domain-scoped traffic (see the [module docs](self)).
///
/// `Clone + Send + Sync` like the underlying readers: clone one per serving
/// thread.
#[derive(Debug, Clone)]
pub struct ShardedReader {
    shards: Vec<SifterReader>,
}

impl ShardedReader {
    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `domain` (see [`shard_index`]).
    pub fn shard_of(&self, domain: &str) -> usize {
        shard_index(domain, self.shards.len())
    }

    /// Answer one verdict query from the owning shard's published table.
    pub fn verdict(&self, request: &VerdictRequest<'_>) -> Verdict {
        self.shards[self.shard_of(request.domain)].verdict(request)
    }

    /// Answer one enforcement decision from the owning shard's published
    /// table — one pin, on that shard only.
    pub fn decide(&self, request: &DecisionRequest<'_>) -> Decision {
        self.shards[self.shard_of(request.domain)].decide(request)
    }

    /// Serve a batch of verdicts (one output per input, in order), pinning
    /// **each shard once** for the whole batch: every answer routed to a
    /// shard reflects exactly one committed state of that shard.
    pub fn verdict_batch(&self, requests: &[VerdictRequest<'_>]) -> Vec<Verdict> {
        let pins: Vec<_> = self.shards.iter().map(|shard| shard.pin()).collect();
        requests
            .iter()
            .map(|request| pins[self.shard_of(request.domain)].verdict(request))
            .collect()
    }

    /// Serve a batch of decisions (one output per input, in order), pinning
    /// each shard once per batch — the sharded analogue of
    /// [`SifterReader::decide_batch`].
    pub fn decide_batch(&self, requests: &[DecisionRequest<'_>]) -> Vec<Decision> {
        let pins: Vec<_> = self.shards.iter().map(|shard| shard.pin()).collect();
        requests
            .iter()
            .map(|request| pins[self.shard_of(request.domain)].decide(request))
            .collect()
    }

    /// Per-shard published table versions, in shard order.
    pub fn versions(&self) -> Vec<u64> {
        self.shards.iter().map(|shard| shard.version()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(n: u64) -> (String, String, String, String, bool) {
        // A deterministic mixed workload: several domains, two hostnames
        // each, scripts scoped to their domain (the partition invariant).
        let domain = format!("site{}.com", n % 7);
        let hostname = format!("h{}.site{}.com", n % 2, n % 7);
        let script = format!("https://site{}.com/s{}.js", n % 7, n % 3);
        let method = format!("m{}", n % 4);
        let tracking = (n % 3) == 0;
        (domain, hostname, script, method, tracking)
    }

    #[test]
    fn routing_is_stable_and_covers_every_shard_eventually() {
        let writer = ShardedWriter::build(4, |_| Sifter::builder().build());
        let mut hit = [false; 4];
        for n in 0..64 {
            let domain = format!("d{n}.com");
            let shard = writer.shard_of(&domain);
            assert_eq!(
                shard,
                writer.shard_of(&domain),
                "routing is a pure function"
            );
            assert_eq!(shard, shard_index(&domain, 4));
            hit[shard] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 domains spread over 4 shards");
    }

    #[test]
    fn sharded_decisions_match_the_single_writer_byte_for_byte() {
        for shards in [1usize, 2, 3, 4] {
            let mut single = Sifter::builder().build();
            let mut sharded = ShardedWriter::build(shards, |_| Sifter::builder().build());
            for n in 0..200 {
                let (domain, hostname, script, method, tracking) = feed(n);
                single.observe_parts(&domain, &hostname, &script, &method, tracking);
                sharded.observe_parts(&domain, &hostname, &script, &method, tracking);
                if n % 50 == 49 {
                    single.commit();
                    sharded.commit();
                }
            }
            single.commit();
            sharded.commit();
            assert_eq!(sharded.cross_partition_scripts(), 0);
            let reader = sharded.reader();
            let mut requests = Vec::new();
            for n in 0..200 {
                let (domain, hostname, script, method, _) = feed(n);
                requests.push((domain, hostname, script, method));
            }
            let decisions = reader.decide_batch(
                &requests
                    .iter()
                    .map(|(d, h, s, m)| DecisionRequest::new(d, h, s, m))
                    .collect::<Vec<_>>(),
            );
            for ((domain, hostname, script, method), decision) in requests.iter().zip(decisions) {
                let request = DecisionRequest::new(domain, hostname, script, method);
                assert_eq!(
                    single.decide(&request),
                    decision,
                    "shards={shards} for {request:?}"
                );
                assert_eq!(single.decide(&request), reader.decide(&request));
            }
        }
    }

    #[test]
    fn cross_partition_scripts_are_counted() {
        let mut sharded = ShardedWriter::build(4, |_| Sifter::builder().build());
        // One script observed under many domains: it lands in however many
        // partitions its domains hash to.
        let mut partitions = std::collections::HashSet::new();
        for n in 0..6 {
            let domain = format!("d{n}.com");
            partitions.insert(sharded.shard_of(&domain));
            // Mixed domain so the hostname (and the script under it)
            // becomes a committed member.
            sharded.observe_parts(
                &domain,
                &format!("h.d{n}.com"),
                "https://cdn.com/s.js",
                "m",
                true,
            );
            sharded.observe_parts(
                &domain,
                &format!("h.d{n}.com"),
                "https://cdn.com/s.js",
                "m",
                false,
            );
        }
        sharded.commit();
        if partitions.len() > 1 {
            assert_eq!(sharded.cross_partition_scripts(), 1);
        }
    }
}
