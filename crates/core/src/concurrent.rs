//! Concurrent serving: lock-free [`SifterReader`] handles plus a single
//! [`SifterWriter`] with atomically published verdict tables.
//!
//! A deployed blocker or proxy is read-dominated with a trickle of writes:
//! millions of verdict queries per second, an `observe`+`commit` batch every
//! few seconds. Wrapping a [`Sifter`] in an `RwLock` makes every commit (and
//! even every observe) stall all verdict traffic. This module splits the
//! sifter instead:
//!
//! * [`Sifter::into_concurrent`] / [`SifterBuilder::build_concurrent`](crate::service::SifterBuilder::build_concurrent)
//!   return a cheaply-cloneable [`SifterReader`] (`Clone + Send + Sync`) and
//!   one [`SifterWriter`];
//! * readers serve [`SifterReader::verdict`] / [`SifterReader::verdict_batch`]
//!   from an immutable [`VerdictTable`] reached through an atomically
//!   swapped pointer — **no mutex or rwlock on the query path** — so a
//!   reader never observes a half-applied commit and never waits for the
//!   writer;
//! * the writer keeps the sifter's incremental dirty-set machinery;
//!   [`SifterWriter::commit`] reclassifies the dirty slice and publishes the
//!   next table in one atomic swap.
//!
//! # How publication stays safe without locks (hand-rolled, `std`-only)
//!
//! The shared state holds the current table as an `AtomicPtr` borrowed from
//! an owning `Arc`. The classic hazard with such a pointer is reclamation:
//! a reader that loaded the pointer must not have the table freed under it.
//! Rather than pull in `arc-swap` or epoch machinery, each reader handle
//! owns a **hazard slot**:
//!
//! 1. a reader pins by storing the loaded pointer into its slot and then
//!    re-checking that the pointer is still current (retrying on the rare
//!    race with a publish) — two `SeqCst` atomic operations, no lock;
//! 2. the writer publishes by swapping the pointer and moving the previous
//!    table onto a retire list; it frees a retired table only when no
//!    hazard slot protects it.
//!
//! Because the hazard store happens *before* the validation load, and the
//! writer's swap happens *before* its hazard scan (all `SeqCst`), a reader
//! that validated successfully is guaranteed visible to every later scan —
//! the protected table cannot be freed while pinned. Readers therefore
//! never touch a reference count or a lock; the writer alone reclaims.
//!
//! One [`PinnedTable`] guard covers a whole [`SifterReader::verdict_batch`],
//! so bulk serving amortises the two pin atomics across the batch. A pinned
//! table is a consistent point-in-time state: its
//! [`version`](VerdictTable::version) is the commit count, strictly
//! increasing across publishes, which is what the stress tests use to prove
//! atomic publication (every served verdict equals some committed state,
//! never a torn mix).
//!
//! The only lock in the module guards reader registration (clone/drop), the
//! retire list, and a slow-path fallback used when a *single* reader handle
//! is pinned from two threads at once (clone the reader per thread — the
//! intended mode — and the fallback never runs).

use crate::decision::{Decision, DecisionRequest};
use crate::intern::FrozenKeys;
use crate::journal::{DurableDir, Journal, JournalEntry, JournalStats, RecoveryReport};
use crate::label::LabeledRequest;
use crate::revision::VerdictRevision;
use crate::service::{CommitStats, ObserveOutcome, ServiceStats, Sifter, Verdict, VerdictRequest};
use crate::snapshot::{SifterSnapshot, SnapshotError};
use crate::table::{ClassTable, SurrogatePlans, VerdictTable};
use filterlist::ResourceType;
use std::io;
use std::path::PathBuf;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// The writer's attached durable store: the generation directory plus the
/// live generation's journal, and the lifetime stats carried across
/// checkpoint rotations.
#[derive(Debug)]
struct Durable {
    dir: DurableDir,
    journal: Journal,
    sync_every: u64,
    /// Stats folded in from journals retired by [`SifterWriter::checkpoint`].
    base_stats: JournalStats,
}

/// One reader's hazard slot: the table pointer it is currently reading (if
/// any), visible to the writer's reclamation scan.
#[derive(Debug)]
struct HazardSlot {
    /// Exclusive-use flag: a pin claims the slot with a CAS so two threads
    /// sharing one reader handle cannot corrupt each other's hazard.
    claimed: AtomicBool,
    /// The table this slot protects; null when not pinned.
    protected: AtomicPtr<VerdictTable>,
}

impl HazardSlot {
    fn new() -> Self {
        HazardSlot {
            claimed: AtomicBool::new(false),
            protected: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

/// State shared by the writer and every reader. The `owner` mutex holds the
/// `Arc` that keeps the current table alive; `current` caches its raw
/// pointer for the lock-free read path.
#[derive(Debug)]
struct Shared {
    current: AtomicPtr<VerdictTable>,
    owner: Mutex<Arc<VerdictTable>>,
    /// Previously published tables that may still be pinned by a reader.
    retired: Mutex<Vec<Arc<VerdictTable>>>,
    /// Every live reader's hazard slot, scanned before reclaiming.
    slots: Mutex<Vec<Arc<HazardSlot>>>,
}

impl Shared {
    fn new(table: Arc<VerdictTable>) -> Self {
        Shared {
            current: AtomicPtr::new(Arc::as_ptr(&table) as *mut VerdictTable),
            owner: Mutex::new(table),
            retired: Mutex::new(Vec::new()),
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Swap in `table` as the current one and reclaim every retired table
    /// no hazard slot protects.
    fn publish(&self, table: Arc<VerdictTable>) {
        let next = Arc::as_ptr(&table) as *mut VerdictTable;
        let previous = {
            let mut owner = self.owner.lock().expect("table owner lock");
            let previous = std::mem::replace(&mut *owner, table);
            self.current.store(next, Ordering::SeqCst);
            previous
        };
        let mut retired = self.retired.lock().expect("retire list lock");
        retired.push(previous);
        let slots = self.slots.lock().expect("hazard registry lock");
        // Keep (only) the tables some reader still pins; dropping the rest
        // here is safe because a pin is visible to this scan before its
        // validation load can succeed (see the module docs).
        retired.retain(|old| {
            let old = Arc::as_ptr(old) as *mut VerdictTable;
            slots
                .iter()
                .any(|slot| slot.protected.load(Ordering::SeqCst) == old)
        });
    }
}

impl Sifter {
    /// Split this sifter into a concurrent serving pair: a single
    /// [`SifterWriter`] (ingestion) and a [`SifterReader`] (verdicts) that
    /// can be cloned into as many reader handles as there are serving
    /// threads. The current committed state is published immediately, so
    /// readers serve from the first instant.
    pub fn into_concurrent(mut self) -> (SifterWriter, SifterReader) {
        let table = Arc::new(self.verdict_table());
        let prev_classes = table.classes().clone();
        let prev_plans = Arc::clone(table.surrogate_plans());
        let shared = Arc::new(Shared::new(table));
        let reader = SifterReader::register(Arc::clone(&shared));
        (
            SifterWriter {
                sifter: self,
                shared,
                version_floor: 0,
                keys_epoch: 0,
                durable: None,
                prev_classes,
                prev_plans,
                revisions: Vec::new(),
                revision_capacity: DEFAULT_REVISION_CAPACITY,
            },
            reader,
        )
    }
}

/// A standalone publication handle over the same hazard-pointer machinery
/// the [`SifterWriter`] uses: swap complete [`VerdictTable`]s in, mint
/// lock-free [`SifterReader`]s out.
///
/// This is the primitive a **replica** builds on: a follower that
/// reconstructs tables from a primary's delta snapshots (rather than from
/// local commits) still publishes them atomically to any number of serving
/// threads, with identical pin/reclaim semantics.
///
/// ```
/// use std::sync::Arc;
/// use trackersift::concurrent::TablePublisher;
/// use trackersift::{Sifter, VerdictRequest};
///
/// let mut sifter = Sifter::builder().build();
/// sifter.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", true);
/// sifter.commit();
///
/// let (publisher, reader) = TablePublisher::new(Arc::new(sifter.verdict_table()));
/// let query = VerdictRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send");
/// assert!(reader.verdict(&query).should_block());
///
/// sifter.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", false);
/// sifter.commit();
/// publisher.publish(Arc::new(sifter.verdict_table())); // readers swap atomically
/// assert_eq!(reader.version(), 2);
/// ```
#[derive(Debug)]
pub struct TablePublisher {
    shared: Arc<Shared>,
}

impl TablePublisher {
    /// Publish `table` as the initial state and mint the first reader.
    pub fn new(table: Arc<VerdictTable>) -> (TablePublisher, SifterReader) {
        let shared = Arc::new(Shared::new(table));
        let reader = SifterReader::register(Arc::clone(&shared));
        (TablePublisher { shared }, reader)
    }

    /// Atomically swap `table` in as the current state; readers pinned to
    /// the previous table finish on it, fresh pins see the new one.
    pub fn publish(&self, table: Arc<VerdictTable>) {
        self.shared.publish(table);
    }

    /// Mint another reader handle (equivalent to cloning any existing one).
    pub fn reader(&self) -> SifterReader {
        SifterReader::register(Arc::clone(&self.shared))
    }
}

/// The single ingestion handle of a concurrent sifter pair.
///
/// Wraps the [`Sifter`]'s incremental machinery: `observe*` buffers count
/// deltas and dirty marks exactly as [`Sifter::observe`] does, and
/// [`SifterWriter::commit`] reclassifies only the dirty slice, then
/// publishes the resulting [`VerdictTable`] to every reader in one atomic
/// swap. Readers keep serving the previous table until the swap, and batches
/// that already pinned the previous table finish on it — a commit is never
/// observable half-applied.
///
/// ```
/// use trackersift::{Sifter, VerdictRequest};
///
/// let (mut writer, reader) = Sifter::builder().build_concurrent();
/// writer.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", true);
/// assert_eq!(writer.sifter().pending(), 1);
///
/// let stats = writer.commit(); // reclassify the delta + publish atomically
/// assert_eq!(stats.observations, 1);
/// let query = VerdictRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send");
/// assert!(reader.verdict(&query).should_block());
/// ```
#[derive(Debug)]
pub struct SifterWriter {
    sifter: Sifter,
    shared: Arc<Shared>,
    /// Added to the sifter's commit count to form the *published* table
    /// version. Zero until a [`SifterWriter::restore_snapshot`] replaces
    /// the sifter (resetting its commit count); then bumped so published
    /// versions stay strictly increasing across the swap.
    version_floor: u64,
    /// The epoch of the key-id space stamped on every published table.
    /// Key ids are append-only stable within an epoch; a snapshot restore
    /// rebuilds the interner (ids may be reassigned), so the restore bumps
    /// the epoch to the published version at swap time — strictly
    /// increasing, and `0` for a writer that never restored.
    keys_epoch: u64,
    /// Write-ahead durability, attached by [`SifterWriter::open_durable`];
    /// `None` for an in-memory writer (no behaviour change, no I/O).
    durable: Option<Durable>,
    /// The class arrays of the last published table — what the next publish
    /// diffs against to record a [`VerdictRevision`].
    prev_classes: ClassTable,
    /// The surrogate-plan map of the last published table — diffed by
    /// `Arc` identity at the next publish to record which plans the commit
    /// rebuilt ([`VerdictRevision::plans_touched`]). Pointer identity is a
    /// superset of payload changes: the sifter re-`Arc`s exactly the plans
    /// its commit rebuilt and shares the rest.
    prev_plans: Arc<SurrogatePlans>,
    /// The bounded revision ring, ascending by published version. A
    /// snapshot (`Arc` clones) is attached to every published table.
    revisions: Vec<Arc<VerdictRevision>>,
    /// Ring bound: the oldest revision is dropped once the ring exceeds it.
    revision_capacity: usize,
}

/// How many per-commit revisions a writer retains by default. Bounds the
/// drift history `GET /v1/revisions` can serve; tune with
/// [`SifterWriter::set_revision_capacity`].
pub const DEFAULT_REVISION_CAPACITY: usize = 64;

/// The script keys whose surrogate plan differs between two published plan
/// maps, by `Arc` identity — exactly the plans the intervening commit
/// rebuilt (the sifter shares untouched plans pointer-for-pointer).
/// Resolved to sorted key strings through the table's frozen keys.
fn plans_touched_between(
    old: &SurrogatePlans,
    new: &SurrogatePlans,
    keys: &FrozenKeys,
) -> Vec<Arc<str>> {
    let mut touched = Vec::new();
    for (key, plan) in new {
        let same = old
            .get(key)
            .is_some_and(|previous| Arc::ptr_eq(previous, plan));
        if !same {
            if let Some(string) = keys.shared_string_for_id(key.index() as u32) {
                touched.push(string);
            }
        }
    }
    for key in old.keys() {
        if !new.contains_key(key) {
            if let Some(string) = keys.shared_string_for_id(key.index() as u32) {
                touched.push(string);
            }
        }
    }
    touched.sort();
    touched
}

/// Append `revision` to a bounded ring, overriding an existing entry with
/// the same (newest) version and ignoring stale out-of-order versions —
/// the one install path both live publishes and journal recovery use, so
/// persisted ring records and recomputed ones cannot double up.
fn install_revision(
    ring: &mut Vec<Arc<VerdictRevision>>,
    revision: Arc<VerdictRevision>,
    capacity: usize,
) {
    match ring.last() {
        Some(last) if last.version() == revision.version() => {
            let slot = ring.last_mut().expect("ring has a last entry");
            *slot = revision;
            return;
        }
        Some(last) if last.version() > revision.version() => return,
        _ => {}
    }
    if ring.len() >= capacity {
        let excess = ring.len() + 1 - capacity;
        ring.drain(..excess);
    }
    ring.push(revision);
}

impl SifterWriter {
    /// Ingest one labeled request (buffered until the next
    /// [`SifterWriter::commit`]); see [`Sifter::observe`]. With a durable
    /// store attached the observation is journaled first (write-ahead).
    pub fn observe(&mut self, request: &LabeledRequest) {
        self.observe_parts(
            &request.domain,
            &request.hostname,
            &request.initiator_script,
            &request.initiator_method,
            request.is_tracking(),
        );
    }

    /// Ingest a batch of labeled requests; see [`Sifter::observe_all`].
    pub fn observe_all<'a>(&mut self, requests: impl IntoIterator<Item = &'a LabeledRequest>) {
        for request in requests {
            self.observe(request);
        }
    }

    /// Ingest one observation by its four attribution keys and label; see
    /// [`Sifter::observe_parts`]. With a durable store attached the
    /// observation is journaled first (write-ahead).
    pub fn observe_parts(
        &mut self,
        domain: &str,
        hostname: &str,
        script: &str,
        method: &str,
        tracking: bool,
    ) {
        if self.durable.is_some() {
            self.journal_record(JournalEntry::Parts {
                domain: domain.to_string(),
                hostname: hostname.to_string(),
                script: script.to_string(),
                method: method.to_string(),
                tracking,
            });
        }
        self.sifter
            .observe_parts(domain, hostname, script, method, tracking);
    }

    /// Label and ingest one raw request URL; see [`Sifter::observe_url`].
    /// With a durable store attached the raw URL is journaled first and
    /// replayed through the same labeling path on recovery, so recovery is
    /// deterministic for a writer configured with the same engine.
    pub fn observe_url(
        &mut self,
        url: &str,
        source_hostname: &str,
        resource_type: ResourceType,
        initiator_script: &str,
        initiator_method: &str,
    ) -> ObserveOutcome {
        if self.durable.is_some() {
            self.journal_record(JournalEntry::Url {
                url: url.to_string(),
                source_hostname: source_hostname.to_string(),
                resource_type,
                script: initiator_script.to_string(),
                method: initiator_method.to_string(),
            });
        }
        self.sifter.observe_url(
            url,
            source_hostname,
            resource_type,
            initiator_script,
            initiator_method,
        )
    }

    /// Fold all pending observations into the servable state
    /// (reclassification work proportional to the dirty slice, as
    /// [`Sifter::commit`]) and publish the new [`VerdictTable`] to every
    /// reader in one atomic swap.
    ///
    /// Publication itself copies the dense class arrays (a few bytes per
    /// distinct key — a memcpy, not a reclassification) because readers may
    /// still be pinning the previous table; the frozen key lookup is only
    /// re-cloned when the delta interned new keys, and is shared between
    /// tables otherwise. For corpus-scale states this publication cost is
    /// small next to the avoided full reclassify (see the `commit_speedup`
    /// and contention sections of `BENCH_service.json`).
    ///
    /// With a durable store attached, a commit marker is journaled and the
    /// journal is **fsynced before the in-memory fold** — so a crash at any
    /// instant either replays this commit in full on recovery (marker
    /// durable) or loses it in full (marker in the torn tail), never half.
    pub fn commit(&mut self) -> CommitStats {
        if self.durable.is_some() {
            let version = self.published_version() + 1;
            self.journal_record(JournalEntry::Commit { version });
            if let Some(durable) = &mut self.durable {
                // Sync failures are counted in the journal stats; the
                // commit proceeds with degraded durability.
                let _ = durable.journal.sync();
            }
        }
        let stats = self.sifter.commit();
        self.publish_current(true);
        // Persist the ring entry the publish just recorded, so a restarted
        // primary rebuilds its pre-crash diff history instead of collapsing
        // it. Derivable from the fold, so a torn tail here only costs the
        // persisted copy — recovery recomputes the same revision.
        if self.durable.is_some() {
            if let Some(revision) = self.revisions.last() {
                let entry = JournalEntry::Revision {
                    revision: (**revision).clone(),
                };
                self.journal_record(entry);
            }
        }
        stats
    }

    /// Append one record to the attached journal, if any. Failed appends
    /// are counted in [`JournalStats::write_errors`]; serving continues
    /// with degraded durability rather than dropping the observation.
    fn journal_record(&mut self, entry: JournalEntry) {
        if let Some(durable) = &mut self.durable {
            let _ = durable.journal.append(&entry);
        }
    }

    /// Attach write-ahead durability backed by the generation directory at
    /// `dir`, recovering whatever a previous process left there: restore
    /// the live generation's checkpoint snapshot (if any), replay the
    /// journal's clean prefix on top of it (truncating a torn tail), and
    /// publish the recovered state to every reader in one atomic swap.
    ///
    /// `sync_every` batches fsyncs on the ingest path: the journal is
    /// forced to disk every that-many records and at every commit marker.
    /// A `kill -9` at any instant loses at most the un-fsynced tail.
    ///
    /// Call once, at boot, before serving; attaching twice is an error.
    pub fn open_durable(
        &mut self,
        dir: impl Into<PathBuf>,
        sync_every: u64,
    ) -> io::Result<RecoveryReport> {
        if self.durable.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "durable store already attached",
            ));
        }
        let dir = DurableDir::open(dir)?;
        let mut report = RecoveryReport {
            generation: dir.generation(),
            ..RecoveryReport::default()
        };
        match std::fs::read_to_string(dir.snapshot_path()) {
            Ok(text) => {
                let snapshot = SifterSnapshot::parse(&text)
                    .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error))?;
                self.restore_snapshot(&snapshot)
                    .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error))?;
                report.restored_snapshot = true;
                report.snapshot_observations = snapshot.observations();
            }
            Err(error) if error.kind() == io::ErrorKind::NotFound => {}
            Err(error) => return Err(error),
        }
        let (journal, entries, replay) = Journal::recover(dir.journal_path(), sync_every)?;
        report.replayed_records = replay.records;
        report.replayed_commits = replay.commits;
        report.torn_bytes = replay.torn_bytes;
        // Rebuild the revision ring alongside the state: persisted ring
        // records install directly (checkpoint seeds + per-commit records),
        // and every replayed commit marker *recomputes* its revision from
        // the replayed fold — so a torn-off revision record costs nothing,
        // and `?diff=` spans from before the crash still answer.
        let mut ring: Vec<Arc<VerdictRevision>> = Vec::new();
        let mut prev_classes = self.prev_classes.clone();
        let mut prev_plans = Arc::clone(&self.prev_plans);
        // The published version the journal says the recovered state has;
        // used to rebase the version floor so versions (and the ring) stay
        // continuous across the restart instead of resetting.
        let mut journal_version: Option<u64> = None;
        for entry in entries {
            match entry {
                JournalEntry::Parts {
                    domain,
                    hostname,
                    script,
                    method,
                    tracking,
                } => {
                    self.sifter
                        .observe_parts(&domain, &hostname, &script, &method, tracking);
                }
                JournalEntry::Url {
                    url,
                    source_hostname,
                    resource_type,
                    script,
                    method,
                } => {
                    let _ = self.sifter.observe_url(
                        &url,
                        &source_hostname,
                        resource_type,
                        &script,
                        &method,
                    );
                }
                JournalEntry::Commit { version } => {
                    self.sifter.commit();
                    let table = self.sifter.verdict_table();
                    let changes = table.classes().changes_since(&prev_classes, table.keys());
                    let plans_touched =
                        plans_touched_between(&prev_plans, table.surrogate_plans(), table.keys());
                    prev_classes = table.classes().clone();
                    prev_plans = Arc::clone(table.surrogate_plans());
                    install_revision(
                        &mut ring,
                        Arc::new(VerdictRevision::with_plans(version, changes, plans_touched)),
                        self.revision_capacity,
                    );
                    journal_version = Some(version);
                }
                JournalEntry::Revision { revision } => {
                    journal_version = Some(journal_version.unwrap_or(0).max(revision.version()));
                    install_revision(&mut ring, Arc::new(revision), self.revision_capacity);
                }
            }
        }
        if report.replayed_records > 0 {
            self.revisions = ring;
            // Rebase the floor so the recovered state publishes at the
            // version the journal recorded for it — continuous with the
            // pre-crash numbering the ring entries carry.
            if let Some(version) = journal_version {
                self.version_floor = version.saturating_sub(self.sifter.commits());
                if report.restored_snapshot {
                    // The interner was rebuilt from the snapshot, so ids may
                    // differ from the pre-crash epoch; stamp the epoch with
                    // the (rebased) version the restore published at.
                    self.keys_epoch = self.version_floor + 1;
                }
            }
            self.publish_current(false);
        }
        self.durable = Some(Durable {
            dir,
            journal,
            sync_every,
            base_stats: JournalStats::default(),
        });
        Ok(report)
    }

    /// Publish a durable checkpoint: commit any pending observations, write
    /// the full trained state as the next generation's snapshot, start that
    /// generation's fresh (empty) journal, and atomically flip the store's
    /// `CURRENT` pointer — the crash-safe equivalent of "snapshot export +
    /// journal truncation". Returns the new generation number.
    ///
    /// A crash at any point during the checkpoint boots from either the old
    /// generation (snapshot + its full journal) or the new one; never from
    /// a mixed pair.
    pub fn checkpoint(&mut self) -> io::Result<u64> {
        if self.durable.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no durable store attached",
            ));
        }
        if self.sifter.pending() > 0 {
            self.commit();
        }
        let snapshot_json = self.sifter.snapshot().to_json_string();
        let durable = self.durable.as_mut().expect("durable store attached");
        let fresh = durable.dir.advance(&snapshot_json, durable.sync_every)?;
        durable.base_stats.accumulate(durable.journal.stats());
        durable.base_stats.rotations += 1;
        durable.journal = fresh;
        // Seed the fresh generation with the current revision ring, so a
        // boot from this generation still answers `?diff=` spans that
        // predate the checkpoint (the snapshot alone carries no history).
        for revision in &self.revisions {
            let _ = durable.journal.append(&JournalEntry::Revision {
                revision: (**revision).clone(),
            });
        }
        let _ = durable.journal.sync();
        Ok(durable.dir.generation())
    }

    /// Force the attached journal's buffered records to disk (a shutdown
    /// flush). A no-op without a durable store.
    pub fn sync_journal(&mut self) -> io::Result<()> {
        match &mut self.durable {
            Some(durable) => durable.journal.sync(),
            None => Ok(()),
        }
    }

    /// Lifetime journal counters (summed across checkpoint rotations), or
    /// `None` without a durable store.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.durable.as_ref().map(|durable| {
            let mut stats = durable.base_stats.clone();
            stats.accumulate(durable.journal.stats());
            stats
        })
    }

    /// The durable store's live checkpoint generation, or `None` without
    /// one.
    pub fn durable_generation(&self) -> Option<u64> {
        self.durable
            .as_ref()
            .map(|durable| durable.dir.generation())
    }

    /// Export the current committed state (version rebased onto the floor)
    /// and publish it to every reader in one atomic swap.
    ///
    /// With `record_revision` set, the per-key class changes since the last
    /// publish are recorded as one [`VerdictRevision`] in the bounded ring
    /// (every commit records one, even when nothing changed, so ring
    /// versions stay contiguous and any two are diffable). The restore path
    /// publishes *without* recording: a snapshot swap is a new world, not a
    /// drift event, so the ring is cleared instead. Journal recovery
    /// ([`SifterWriter::open_durable`]) publishes once after the whole
    /// replay, collapsing the replayed commits into a single revision.
    fn publish_current(&mut self, record_revision: bool) {
        let floor = self.version_floor;
        let mut table = self.sifter.verdict_table();
        table.set_version(floor + table.version());
        table.set_keys_epoch(self.keys_epoch);
        if record_revision {
            let changes = table
                .classes()
                .changes_since(&self.prev_classes, table.keys());
            let plans_touched =
                plans_touched_between(&self.prev_plans, table.surrogate_plans(), table.keys());
            install_revision(
                &mut self.revisions,
                Arc::new(VerdictRevision::with_plans(
                    table.version(),
                    changes,
                    plans_touched,
                )),
                self.revision_capacity,
            );
        }
        self.prev_classes = table.classes().clone();
        self.prev_plans = Arc::clone(table.surrogate_plans());
        table.set_revisions(self.revisions.clone());
        self.shared.publish(Arc::new(table));
    }

    /// The bounded ring of per-commit revisions, ascending by version —
    /// the same snapshot the published table carries.
    pub fn revisions(&self) -> &[Arc<VerdictRevision>] {
        &self.revisions
    }

    /// Bound the revision ring to `capacity` entries (clamped to at least
    /// one; the default is [`DEFAULT_REVISION_CAPACITY`]), dropping the
    /// oldest revisions if the ring already exceeds it. Takes effect on the
    /// next publish for the table snapshot readers see.
    pub fn set_revision_capacity(&mut self, capacity: usize) {
        self.revision_capacity = capacity.max(1);
        if self.revisions.len() > self.revision_capacity {
            let excess = self.revisions.len() - self.revision_capacity;
            self.revisions.drain(..excess);
        }
    }

    /// The version of the table the readers currently serve
    /// (`version_floor` + the sifter's commit count) — strictly increasing
    /// across commits *and* snapshot restores.
    pub fn published_version(&self) -> u64 {
        self.version_floor + self.sifter.commits()
    }

    /// Replace the trained state with a restored snapshot and publish the
    /// result to every reader in one atomic swap — the `PUT /v1/snapshot`
    /// operation of a verdict server.
    ///
    /// The configured filter engine is kept (shared, not recompiled); the
    /// snapshot's thresholds take effect, exactly as
    /// [`SifterBuilder::restore`](crate::service::SifterBuilder::restore).
    /// Readers never observe a half-imported state: they keep serving the
    /// previous table until the single publish, and published versions stay
    /// strictly increasing across the swap (the restored state appears as
    /// `published_version() + 1`, not as a reset to 1). On error the
    /// previous state keeps serving untouched.
    ///
    /// Observations buffered but not yet committed at swap time do **not**
    /// survive it — the snapshot replaces the whole trained state. The
    /// returned count says how many were discarded, so a caller (e.g. the
    /// verdict server's `PUT /v1/snapshot`) can surface the loss instead
    /// of hiding it; commit first if they must be kept.
    ///
    /// With a durable store attached, the restore is **not durable until
    /// the next [`SifterWriter::checkpoint`]** — the on-disk generation
    /// still pairs the old snapshot with the old journal, so a crash
    /// before the checkpoint boots the pre-restore state (consistently).
    /// Call `checkpoint()` immediately after a successful restore, and
    /// report success to the requester only once it returns `Ok`.
    pub fn restore_snapshot(&mut self, snapshot: &SifterSnapshot) -> Result<u64, SnapshotError> {
        let mut builder = Sifter::builder();
        if let Some(engine) = self.sifter.engine_arc() {
            builder = builder.shared_engine(engine);
        }
        if let Some(rewriter) = self.sifter.rewriter_arc() {
            builder = builder.shared_rewriter(rewriter);
        }
        let restored = builder.restore(snapshot)?;
        let dropped_pending = self.sifter.pending();
        // The restored sifter has committed exactly once; place that commit
        // one past the last published version.
        self.version_floor = (self.published_version() + 1).saturating_sub(restored.commits());
        // The restored interner assigned fresh ids; invalidate every id a
        // client cached against the old table by bumping the epoch.
        self.keys_epoch = self.version_floor + restored.commits();
        self.sifter = restored;
        // A restored snapshot is a new world, not drift from the previous
        // one: drop the ring (its key ids belong to the old epoch anyway)
        // and publish without recording a revision.
        self.revisions.clear();
        self.publish_current(false);
        Ok(dropped_pending)
    }

    /// Mint another reader handle (equivalent to cloning any existing one).
    pub fn reader(&self) -> SifterReader {
        SifterReader::register(Arc::clone(&self.shared))
    }

    /// Read-only access to the underlying sifter, for inspection and
    /// export: [`Sifter::hierarchy`], [`Sifter::ingest_stats`],
    /// [`Sifter::committed_resources`], …
    pub fn sifter(&self) -> &Sifter {
        &self.sifter
    }

    /// Export the trained state as a versioned snapshot; see
    /// [`Sifter::snapshot`].
    pub fn snapshot(&self) -> SifterSnapshot {
        self.sifter.snapshot()
    }

    /// One consolidated view of the serving state; the `version` field is
    /// the *published* table version (monotone across
    /// [`SifterWriter::restore_snapshot`]), see [`ServiceStats`].
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            version: self.published_version(),
            ..self.sifter.service_stats()
        }
    }

    /// Dissolve the pair and take the sifter back. Existing readers keep
    /// serving the last published table indefinitely; no further commits
    /// will reach them.
    pub fn into_sifter(self) -> Sifter {
        self.sifter
    }
}

/// A lock-free verdict-serving handle over the writer's last published
/// [`VerdictTable`].
///
/// `SifterReader` is `Clone + Send + Sync`: clone one handle per serving
/// thread. Every query pins the current table through the handle's hazard
/// slot (two atomic operations, no lock — see the [module docs](self)), and
/// [`SifterReader::verdict_batch`] pins **once for the whole batch**, so a
/// batch is answered from a single consistent committed state even while
/// the writer publishes mid-batch.
///
/// ```
/// use std::thread;
/// use trackersift::{Sifter, VerdictRequest};
///
/// let (mut writer, reader) = Sifter::builder().build_concurrent();
/// writer.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", true);
/// writer.commit();
///
/// let workers: Vec<_> = (0..4)
///     .map(|_| {
///         let reader = reader.clone(); // one handle per thread
///         thread::spawn(move || {
///             let query =
///                 VerdictRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send");
///             reader.verdict(&query).should_block()
///         })
///     })
///     .collect();
/// for worker in workers {
///     assert!(worker.join().unwrap());
/// }
/// ```
#[derive(Debug)]
pub struct SifterReader {
    shared: Arc<Shared>,
    slot: Arc<HazardSlot>,
}

impl SifterReader {
    /// Create a handle with a fresh hazard slot and register the slot for
    /// the writer's reclamation scans.
    fn register(shared: Arc<Shared>) -> Self {
        let slot = Arc::new(HazardSlot::new());
        shared
            .slots
            .lock()
            .expect("hazard registry lock")
            .push(Arc::clone(&slot));
        SifterReader { shared, slot }
    }

    /// Pin the current table for a sequence of reads. The returned guard
    /// serves any number of verdicts from one consistent committed state;
    /// the writer can publish concurrently without affecting it. Dropping
    /// the guard releases the table for reclamation.
    ///
    /// Fast path (handle not pinned elsewhere): two `SeqCst` atomics, no
    /// lock. If this *same* handle is concurrently pinned from another
    /// thread, the pin falls back to cloning the table's `Arc` under a
    /// mutex — clone the reader per thread to stay on the lock-free path.
    pub fn pin(&self) -> PinnedTable<'_> {
        if self
            .slot
            .claimed
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            loop {
                let table = self.shared.current.load(Ordering::SeqCst);
                self.slot.protected.store(table, Ordering::SeqCst);
                // Validate after announcing the hazard: success means every
                // later reclamation scan sees the hazard, so `table` cannot
                // be freed while this guard lives.
                if self.shared.current.load(Ordering::SeqCst) == table {
                    return PinnedTable {
                        table,
                        guard: Guard::Hazard(&self.slot),
                    };
                }
                // Lost a race with a publish: retarget and revalidate.
            }
        }
        let table = Arc::clone(&self.shared.owner.lock().expect("table owner lock"));
        PinnedTable {
            table: ptr::null_mut(),
            guard: Guard::Owned(table),
        }
    }

    /// Answer one verdict query against the current published table.
    pub fn verdict(&self, request: &VerdictRequest<'_>) -> Verdict {
        self.pin().verdict(request)
    }

    /// Serve a batch of verdicts (one output per input, in order) from a
    /// single pinned table: the whole batch reflects exactly one committed
    /// state, even if the writer publishes mid-batch.
    pub fn verdict_batch(&self, requests: &[VerdictRequest<'_>]) -> Vec<Verdict> {
        let mut out = Vec::new();
        self.verdict_batch_into(requests, &mut out);
        out
    }

    /// Serve a batch of verdicts into a reusable buffer (cleared first);
    /// the batched analogue of [`Sifter::verdict_batch_into`], pinned once.
    pub fn verdict_batch_into(&self, requests: &[VerdictRequest<'_>], out: &mut Vec<Verdict>) {
        let pin = self.pin();
        let table = pin.table();
        out.clear();
        out.reserve(requests.len());
        for request in requests {
            out.push(table.verdict(request));
        }
    }

    /// Answer one enforcement decision against the current published table
    /// — [`Sifter::decide`] served lock-free; see [`crate::decision`].
    pub fn decide(&self, request: &DecisionRequest<'_>) -> Decision {
        self.pin().decide(request)
    }

    /// Serve a batch of decisions (one output per input, in order) from a
    /// single pinned table: the whole batch — surrogate payloads included —
    /// reflects exactly one committed state, even if the writer publishes
    /// mid-batch.
    pub fn decide_batch(&self, requests: &[DecisionRequest<'_>]) -> Vec<Decision> {
        let pin = self.pin();
        let table = pin.table();
        requests
            .iter()
            .map(|request| table.decide(request))
            .collect()
    }

    /// The version (commit count) of the currently published table.
    pub fn version(&self) -> u64 {
        self.pin().version()
    }

    /// Observations folded into the currently published table.
    pub fn committed(&self) -> u64 {
        self.pin().committed()
    }
}

impl Clone for SifterReader {
    fn clone(&self) -> Self {
        SifterReader::register(Arc::clone(&self.shared))
    }
}

impl Drop for SifterReader {
    fn drop(&mut self) {
        let mut slots = self.shared.slots.lock().expect("hazard registry lock");
        slots.retain(|slot| !Arc::ptr_eq(slot, &self.slot));
    }
}

// The serving contract: reader handles are shared across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SifterReader>();
    assert_send_sync::<SifterWriter>();
};

/// Keeps a [`PinnedTable`]'s table alive: either the reader's hazard slot
/// (fast path) or an owned `Arc` (slow path).
#[derive(Debug)]
enum Guard<'a> {
    Hazard(&'a HazardSlot),
    Owned(Arc<VerdictTable>),
}

/// A pinned, immutable [`VerdictTable`]: one consistent committed state,
/// valid for the guard's lifetime no matter what the writer publishes.
/// Created by [`SifterReader::pin`]; not `Send` (the pin belongs to the
/// thread that took it).
#[derive(Debug)]
pub struct PinnedTable<'a> {
    /// Hazard-protected pointer; null (unused) on the `Owned` path.
    table: *mut VerdictTable,
    guard: Guard<'a>,
}

impl PinnedTable<'_> {
    /// The pinned table.
    pub fn table(&self) -> &VerdictTable {
        match &self.guard {
            // SAFETY: the hazard slot announced `self.table` *before* the
            // pin validated it as current, so the writer's reclamation scan
            // retains it until the slot is cleared — which only `drop` does.
            Guard::Hazard(_) => unsafe { &*self.table },
            Guard::Owned(table) => table,
        }
    }

    /// Answer one verdict query against the pinned state.
    pub fn verdict(&self, request: &VerdictRequest<'_>) -> Verdict {
        self.table().verdict(request)
    }

    /// Answer one enforcement decision against the pinned state.
    pub fn decide(&self, request: &DecisionRequest<'_>) -> Decision {
        self.table().decide(request)
    }

    /// The pinned table's version (commit count at publish time).
    pub fn version(&self) -> u64 {
        self.table().version()
    }

    /// Observations folded into the pinned state.
    pub fn committed(&self) -> u64 {
        self.table().committed()
    }

    /// Requests still attributed to mixed methods as of the pinned state.
    pub fn unattributed(&self) -> u64 {
        self.table().unattributed()
    }
}

impl Drop for PinnedTable<'_> {
    fn drop(&mut self) {
        if let Guard::Hazard(slot) = &self.guard {
            slot.protected.store(ptr::null_mut(), Ordering::SeqCst);
            slot.claimed.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Classification;
    use crate::service::VerdictRequest;

    fn block_query<'a>() -> VerdictRequest<'a> {
        VerdictRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send")
    }

    #[test]
    fn commits_become_visible_to_existing_and_cloned_readers() {
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        assert_eq!(reader.version(), 0);
        assert_eq!(reader.verdict(&block_query()), Verdict::Unknown);

        writer.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
        // Buffered: readers still see the old table.
        assert_eq!(reader.verdict(&block_query()), Verdict::Unknown);
        writer.commit();

        let cloned = reader.clone();
        let minted = writer.reader();
        for handle in [&reader, &cloned, &minted] {
            assert_eq!(handle.version(), 1);
            assert!(handle.verdict(&block_query()).should_block());
        }
    }

    #[test]
    fn a_pinned_table_survives_later_publishes_unchanged() {
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        writer.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
        writer.commit();

        let pin = reader.pin();
        assert_eq!(pin.version(), 1);
        assert!(pin.verdict(&block_query()).should_block());

        // Publish twice more while the pin is held: the pinned state must
        // not move, while fresh pins see the newest table.
        for _ in 0..2 {
            writer.observe_parts(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send",
                false,
            );
            writer.commit();
        }
        assert_eq!(pin.version(), 1);
        assert!(pin.verdict(&block_query()).should_block());
        let fresh = writer.reader();
        assert_eq!(fresh.version(), 3);
        assert_eq!(
            fresh.verdict(&block_query()).classification(),
            Some(Classification::Mixed)
        );
        drop(pin);
        assert_eq!(reader.version(), 3);
    }

    #[test]
    fn concurrent_pins_on_one_handle_fall_back_safely() {
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        writer.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
        writer.commit();

        // Second pin on the same handle while the first is alive: the slot
        // is claimed, so it must take the owned fallback — and still serve
        // the same published state.
        let first = reader.pin();
        let second = reader.pin();
        assert_eq!(first.version(), second.version());
        assert_eq!(
            first.verdict(&block_query()),
            second.verdict(&block_query())
        );
        drop(first);
        drop(second);
        // The slot is free again: the fast path works afterwards.
        assert_eq!(reader.pin().version(), 1);
    }

    #[test]
    fn readers_outlive_the_writer_on_the_last_published_table() {
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        writer.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
        writer.commit();
        let sifter = writer.into_sifter();
        assert_eq!(sifter.commits(), 1);
        // The writer is gone; the reader keeps serving the last table.
        assert!(reader.verdict(&block_query()).should_block());
        assert_eq!(reader.clone().version(), 1);
    }

    #[test]
    fn restore_snapshot_swaps_state_monotonically_and_reports_dropped_pending() {
        // A trained source sifter to export.
        let mut source = Sifter::builder().build();
        source.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
        source.commit();
        let snapshot = source.snapshot();

        // A running pair with some history and a buffered observation.
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        for _ in 0..3 {
            writer.observe_parts("old.com", "h.old.com", "s.js", "m", false);
            writer.commit();
        }
        assert_eq!(reader.version(), 3);
        writer.observe_parts("old.com", "h.old.com", "s.js", "m", false);
        assert_eq!(writer.sifter().pending(), 1);

        // The swap reports the discarded pending observation, publishes
        // atomically, and versions keep increasing (never a reset to 1).
        let dropped = writer.restore_snapshot(&snapshot).expect("restore");
        assert_eq!(dropped, 1);
        assert_eq!(reader.version(), 4);
        assert_eq!(writer.published_version(), 4);
        assert_eq!(writer.service_stats().version, 4);
        assert!(reader.verdict(&block_query()).should_block());
        assert_eq!(
            reader.verdict(&VerdictRequest::new("old.com", "h.old.com", "s.js", "m")),
            Verdict::Unknown
        );

        // Later commits keep climbing from the rebased floor.
        writer.observe_parts(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
            true,
        );
        writer.commit();
        assert_eq!(reader.version(), 5);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos();
        std::env::temp_dir().join(format!(
            "trackersift-durable-{tag}-{}-{nanos}",
            std::process::id()
        ))
    }

    #[test]
    fn durable_writer_recovers_fsynced_observations_after_a_crash() {
        let dir = temp_dir("recover");
        {
            let (mut writer, _reader) = Sifter::builder().build_concurrent();
            let report = writer.open_durable(&dir, 1).expect("open durable");
            assert!(!report.restored_snapshot);
            assert_eq!(report.replayed_records, 0);
            writer.observe_parts(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send",
                true,
            );
            writer.commit();
            // One more observation, fsynced (sync_every = 1) but never
            // committed; then the process "crashes" (drop, no shutdown).
            writer.observe_parts(
                "ads.com",
                "px2.ads.com",
                "https://pub.com/a.js",
                "send",
                true,
            );
            let stats = writer.journal_stats().expect("journal stats");
            assert_eq!(
                stats.appended, 4,
                "2 observations + 1 commit marker + 1 ring record"
            );
            assert_eq!(stats.synced, 4);
        }
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        let report = writer.open_durable(&dir, 1).expect("recover");
        assert_eq!(report.replayed_records, 4);
        assert_eq!(report.replayed_commits, 1);
        assert_eq!(report.torn_bytes, 0);
        // The committed observation serves again; the uncommitted one is
        // pending again, exactly as before the crash.
        assert!(reader.verdict(&block_query()).should_block());
        assert_eq!(writer.sifter().pending(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rotates_the_journal_into_a_snapshot_generation() {
        let dir = temp_dir("checkpoint");
        {
            let (mut writer, _reader) = Sifter::builder().build_concurrent();
            writer.open_durable(&dir, 4).expect("open durable");
            writer.observe_parts(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send",
                true,
            );
            // checkpoint() commits the pending observation itself.
            let generation = writer.checkpoint().expect("checkpoint");
            assert_eq!(generation, 1);
            assert_eq!(writer.durable_generation(), Some(1));
            let stats = writer.journal_stats().expect("journal stats");
            assert_eq!(stats.rotations, 1);
            assert!(
                stats.bytes > 0,
                "fresh generation journal holds the seeded revision ring"
            );
        }
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        let report = writer.open_durable(&dir, 4).expect("reboot");
        assert!(report.restored_snapshot);
        assert_eq!(report.snapshot_observations, 1);
        assert_eq!(
            report.replayed_records, 1,
            "the seeded ring record replays; no observations do"
        );
        assert!(reader.verdict(&block_query()).should_block());
        assert_eq!(writer.sifter().pending(), 0);
        // The ring survived the checkpoint + restart: versions stay
        // continuous and the pre-crash span still answers.
        assert_eq!(writer.published_version(), 1);
        assert_eq!(writer.revisions().len(), 1);
        assert_eq!(writer.revisions()[0].version(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rebuilds_the_revision_ring_with_continuous_versions() {
        let dir = temp_dir("ring");
        {
            let (mut writer, _reader) = Sifter::builder().build_concurrent();
            writer.open_durable(&dir, 1).expect("open durable");
            for i in 0..3 {
                writer.observe_parts(
                    &format!("d{i}.com"),
                    &format!("h.d{i}.com"),
                    "https://pub.com/s.js",
                    "m",
                    true,
                );
                writer.commit();
            }
            assert_eq!(writer.published_version(), 3);
            assert_eq!(writer.revisions().len(), 3);
            // The process "crashes" here: drop without shutdown.
        }
        let (mut writer, _reader) = Sifter::builder().build_concurrent();
        writer.open_durable(&dir, 1).expect("recover");
        assert_eq!(
            writer.published_version(),
            3,
            "versions continue the pre-crash numbering"
        );
        let versions: Vec<u64> = writer.revisions().iter().map(|r| r.version()).collect();
        assert_eq!(
            versions,
            vec![1, 2, 3],
            "the ring is rebuilt, not collapsed"
        );
        let diff = crate::revision::diff_revisions(writer.revisions(), 0, 3).expect("full span");
        assert_eq!(
            diff.changes.len(),
            3,
            "one pure-tracking domain added per commit across the span"
        );
        // New commits keep extending the same numbering.
        writer.observe_parts("d9.com", "h.d9.com", "https://pub.com/s.js", "m", true);
        writer.commit();
        assert_eq!(writer.published_version(), 4);
        assert_eq!(writer.revisions().last().expect("ring entry").version(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_seeds_the_ring_into_the_next_generation() {
        let dir = temp_dir("ring-checkpoint");
        {
            let (mut writer, _reader) = Sifter::builder().build_concurrent();
            writer.open_durable(&dir, 1).expect("open durable");
            for i in 0..2 {
                writer.observe_parts(
                    &format!("d{i}.com"),
                    &format!("h.d{i}.com"),
                    "https://pub.com/s.js",
                    "m",
                    true,
                );
                writer.commit();
            }
            writer.checkpoint().expect("checkpoint");
            // One more commit after the checkpoint, then crash.
            writer.observe_parts("d2.com", "h.d2.com", "https://pub.com/s.js", "m", true);
            writer.commit();
        }
        let (mut writer, _reader) = Sifter::builder().build_concurrent();
        let report = writer.open_durable(&dir, 1).expect("recover");
        assert!(report.restored_snapshot);
        assert_eq!(writer.published_version(), 3);
        let versions: Vec<u64> = writer.revisions().iter().map(|r| r.version()).collect();
        assert_eq!(
            versions,
            vec![1, 2, 3],
            "pre-checkpoint ring entries survive via the seeded records"
        );
        assert!(
            crate::revision::diff_revisions(writer.revisions(), 0, 3).is_ok(),
            "a span predating the checkpoint still answers"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_observe_paths_mirror_the_sifter() {
        let (mut writer, _reader) = Sifter::builder().build_concurrent();
        assert_eq!(
            writer.observe_url(
                "https://x.test/a",
                "pub.com",
                ResourceType::Script,
                "s.js",
                "m"
            ),
            ObserveOutcome::NoEngine
        );
        writer.observe_parts("a.com", "h.a.com", "s.js", "m", true);
        assert_eq!(writer.sifter().pending(), 1);
        let stats = writer.commit();
        assert_eq!(stats.observations, 1);
        assert_eq!(writer.snapshot().observations(), 1);
        assert_eq!(writer.sifter().ingest_stats().no_engine, 1);
    }
}
