//! The hierarchical classifier (paper §2): domain → hostname → script →
//! method.
//!
//! At each granularity every resource accumulates the tracking / functional
//! counts of the requests attributed to it and is classified with the
//! log-ratio threshold. Requests attributed to *tracking* or *functional*
//! resources are "separated" and set aside; requests attributed to *mixed*
//! resources flow down to the next finer granularity:
//!
//! * **Domain** — all script-initiated requests, keyed by the request URL's
//!   eTLD+1;
//! * **Hostname** — only requests served by mixed domains, keyed by the
//!   request hostname;
//! * **Script** — only requests served by mixed hostnames, keyed by the URL
//!   of the initiating script (innermost stack frame);
//! * **Method** — only requests initiated by mixed scripts, keyed by
//!   `(script URL, method name)`.
//!
//! The per-level separation factor and the cumulative separation reproduce
//! the paper's Table 1; the per-level unique-resource class counts reproduce
//! Table 2; the per-resource ratios feed the Figure 3 histograms.

use crate::intern::{KeyInterner, ResourceKey};
use crate::label::LabeledRequest;
use crate::ratio::{Classification, Counts, Thresholds};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The four granularities of the hierarchy, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Granularity {
    /// eTLD+1 of the request URL.
    Domain,
    /// Full hostname of the request URL.
    Hostname,
    /// URL of the initiating script.
    Script,
    /// `(script URL, method name)` of the initiating frame.
    Method,
}

impl Granularity {
    /// All four granularities, coarsest first.
    pub const ALL: [Granularity; 4] = [
        Granularity::Domain,
        Granularity::Hostname,
        Granularity::Script,
        Granularity::Method,
    ];

    /// The position of this granularity in [`Granularity::ALL`] (coarsest =
    /// 0). This is the array index the flattened
    /// [`VerdictTable`](crate::table::VerdictTable) uses for its dense
    /// per-granularity class arrays.
    pub fn index(self) -> usize {
        match self {
            Granularity::Domain => 0,
            Granularity::Hostname => 1,
            Granularity::Script => 2,
            Granularity::Method => 3,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Granularity::Domain => "Domain",
            Granularity::Hostname => "Hostname",
            Granularity::Script => "Script",
            Granularity::Method => "Method",
        }
    }

    /// The attribution key of one request at this granularity, as an
    /// interned symbol. This is the single definition of "what groups a
    /// request" shared by the hierarchical pipeline and the flat ablation;
    /// method keys go through [`ResourceKey::method_label`] via the
    /// interner, so no `format!`-built strings appear on the per-request
    /// path.
    pub fn request_key(self, request: &LabeledRequest, interner: &mut KeyInterner) -> ResourceKey {
        match self {
            Granularity::Domain => interner.intern(&request.domain),
            Granularity::Hostname => interner.intern(&request.hostname),
            Granularity::Script => interner.intern(&request.initiator_script),
            Granularity::Method => {
                interner.intern_method(&request.initiator_script, &request.initiator_method)
            }
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts split by classification outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Tracking-classified.
    pub tracking: u64,
    /// Functional-classified.
    pub functional: u64,
    /// Mixed-classified.
    pub mixed: u64,
}

impl ClassCounts {
    /// Total across the three classes.
    pub fn total(&self) -> u64 {
        self.tracking + self.functional + self.mixed
    }

    /// Add `n` to the bucket for `class`.
    pub fn add(&mut self, class: Classification, n: u64) {
        match class {
            Classification::Tracking => self.tracking += n,
            Classification::Functional => self.functional += n,
            Classification::Mixed => self.mixed += n,
        }
    }

    /// Fraction of the total that is *not* mixed (i.e. separated), in
    /// percent. Returns 0 when empty.
    pub fn separation_factor(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        100.0 * (self.tracking + self.functional) as f64 / total as f64
    }

    /// Fraction that is mixed, in percent.
    pub fn mixed_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.mixed as f64 / total as f64
    }
}

/// One classified resource at some granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceEntry {
    /// Attribution key: domain, hostname, script URL, or `script :: method`.
    pub key: String,
    /// Request counts attributed to this resource.
    pub counts: Counts,
    /// Classification under the thresholds in force.
    pub classification: Classification,
}

impl ResourceEntry {
    /// The log-ratio of the resource (always defined — resources only exist
    /// because at least one request was attributed to them).
    pub fn log_ratio(&self) -> f64 {
        self.counts
            .log_ratio()
            .expect("resources have at least one request")
    }
}

/// The result of classifying one granularity level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelResult {
    /// Which granularity this is.
    pub granularity: Granularity,
    /// Every resource observed at this level.
    pub resources: Vec<ResourceEntry>,
    /// Unique-resource counts per class (paper Table 2).
    pub resource_counts: ClassCounts,
    /// Request counts per class (paper Table 1).
    pub request_counts: ClassCounts,
    /// Number of requests that entered this level.
    pub input_requests: u64,
}

impl LevelResult {
    /// Build a level result from its resources: sorts them into the
    /// canonical output order (descending request volume, then key) and
    /// tallies the per-class resource/request counts.
    ///
    /// This is the *single* constructor both the batch classifier and the
    /// incremental [`Sifter`](crate::service::Sifter) export go through, so
    /// the two can never drift apart on ordering or accounting — the
    /// foundation of the observe/commit ≡ from-scratch equivalence the
    /// service tests assert.
    pub fn from_entries(
        granularity: Granularity,
        mut resources: Vec<ResourceEntry>,
        input_requests: u64,
    ) -> Self {
        // Deterministic output order: by descending volume, then key.
        resources.sort_by(|a, b| {
            b.counts
                .total()
                .cmp(&a.counts.total())
                .then_with(|| a.key.cmp(&b.key))
        });
        let mut resource_counts = ClassCounts::default();
        let mut request_counts = ClassCounts::default();
        for resource in &resources {
            resource_counts.add(resource.classification, 1);
            request_counts.add(resource.classification, resource.counts.total());
        }
        LevelResult {
            granularity,
            resources,
            resource_counts,
            request_counts,
            input_requests,
        }
    }

    /// Separation factor over this level's input requests, in percent
    /// (paper Table 1 "Separation Factor").
    pub fn request_separation_factor(&self) -> f64 {
        self.request_counts.separation_factor()
    }

    /// Separation factor over unique resources (paper Table 2).
    pub fn resource_separation_factor(&self) -> f64 {
        self.resource_counts.separation_factor()
    }

    /// The keys of the mixed resources at this level.
    pub fn mixed_keys(&self) -> Vec<&str> {
        self.resources
            .iter()
            .filter(|r| r.classification == Classification::Mixed)
            .map(|r| r.key.as_str())
            .collect()
    }

    /// Resources of a given class, sorted by total request volume
    /// descending (useful for "notable domains" style reporting).
    pub fn top_resources(&self, class: Classification, n: usize) -> Vec<&ResourceEntry> {
        let mut out: Vec<&ResourceEntry> = self
            .resources
            .iter()
            .filter(|r| r.classification == class)
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.counts.total()));
        out.truncate(n);
        out
    }
}

/// The complete hierarchy result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyResult {
    /// Thresholds used.
    pub thresholds: Thresholds,
    /// Per-level results, coarsest first (Domain, Hostname, Script, Method).
    pub levels: Vec<LevelResult>,
    /// Total script-initiated requests that entered the analysis.
    pub total_requests: u64,
    /// Requests that remain attributed to mixed methods after the finest
    /// level (the <2% residue of the paper).
    pub unattributed_requests: u64,
}

impl HierarchyResult {
    /// The level result for a granularity.
    pub fn level(&self, granularity: Granularity) -> &LevelResult {
        self.levels
            .iter()
            .find(|l| l.granularity == granularity)
            .expect("all four levels are always present")
    }

    /// Cumulative separation factor after each level, in percent of the
    /// total script-initiated requests (paper Table 1, last column).
    pub fn cumulative_separation(&self) -> Vec<(Granularity, f64)> {
        let mut separated = 0u64;
        let mut out = Vec::new();
        for level in &self.levels {
            separated += level.request_counts.tracking + level.request_counts.functional;
            let pct = if self.total_requests == 0 {
                0.0
            } else {
                100.0 * separated as f64 / self.total_requests as f64
            };
            out.push((level.granularity, pct));
        }
        out
    }

    /// The overall fraction of requests attributed to either tracking or
    /// functional resources by the end of the hierarchy (the paper's
    /// headline "98%").
    pub fn overall_attribution(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        100.0 * (self.total_requests - self.unattributed_requests) as f64
            / self.total_requests as f64
    }
}

/// The hierarchical classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchicalClassifier {
    /// Thresholds applied at every level.
    pub thresholds: Thresholds,
}

impl HierarchicalClassifier {
    /// A classifier with the paper's default threshold of 2.
    pub fn new(thresholds: Thresholds) -> Self {
        HierarchicalClassifier { thresholds }
    }

    /// Run the full four-level analysis over labeled requests.
    ///
    /// One [`KeyInterner`] is threaded through all four levels, so every
    /// attribution key — including the composed `script :: method` keys —
    /// is allocated at most once for the whole classification.
    pub fn classify(&self, requests: &[LabeledRequest]) -> HierarchyResult {
        let all: Vec<&LabeledRequest> = requests.iter().collect();
        let total_requests = all.len() as u64;
        let mut interner = KeyInterner::with_capacity(1024);

        // Domain level over everything; each subsequent level only sees the
        // requests attributed to the previous level's mixed resources.
        let (domain_level, to_hostname) =
            self.classify_level(Granularity::Domain, &all, &mut interner);
        let (hostname_level, to_script) =
            self.classify_level(Granularity::Hostname, &to_hostname, &mut interner);
        let (script_level, to_method) =
            self.classify_level(Granularity::Script, &to_script, &mut interner);
        let (method_level, residue) =
            self.classify_level(Granularity::Method, &to_method, &mut interner);

        HierarchyResult {
            thresholds: self.thresholds,
            levels: vec![domain_level, hostname_level, script_level, method_level],
            total_requests,
            unattributed_requests: residue.len() as u64,
        }
    }

    /// Classify a single granularity over an arbitrary request set — the
    /// flat baseline of the flat-vs-hierarchical ablation.
    pub fn classify_flat(
        &self,
        granularity: Granularity,
        input: &[&LabeledRequest],
    ) -> LevelResult {
        let mut interner = KeyInterner::new();
        self.classify_level(granularity, input, &mut interner).0
    }

    /// Classify one level: group `input` by its interned granularity key,
    /// count labels, classify each resource, and return the level result
    /// plus the requests that belong to mixed resources (the next level's
    /// input).
    fn classify_level<'a>(
        &self,
        granularity: Granularity,
        input: &[&'a LabeledRequest],
        interner: &mut KeyInterner,
    ) -> (LevelResult, Vec<&'a LabeledRequest>) {
        let mut groups: HashMap<ResourceKey, Counts> = HashMap::new();
        for request in input {
            groups
                .entry(granularity.request_key(request, interner))
                .or_default()
                .record(request.is_tracking());
        }

        let mut mixed_keys: HashSet<ResourceKey> = HashSet::new();
        let resources: Vec<ResourceEntry> = groups
            .into_iter()
            .map(|(id, counts)| {
                let classification = self
                    .thresholds
                    .classify(&counts)
                    .expect("grouped resources have requests");
                if classification == Classification::Mixed {
                    mixed_keys.insert(id);
                }
                ResourceEntry {
                    key: interner.resolve(id).to_string(),
                    counts,
                    classification,
                }
            })
            .collect();

        // Every key below was interned during grouping, so this pass does a
        // pure lookup — no allocation per request.
        let mut next: Vec<&LabeledRequest> = Vec::new();
        if !mixed_keys.is_empty() {
            for request in input.iter().copied() {
                if mixed_keys.contains(&granularity.request_key(request, interner)) {
                    next.push(request);
                }
            }
        }

        (
            LevelResult::from_entries(granularity, resources, input.len() as u64),
            next,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure1_requests;

    #[test]
    fn granularity_index_matches_position_in_all() {
        for (i, g) in Granularity::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn figure1_domains_classify_as_expected() {
        let result = HierarchicalClassifier::default().classify(&figure1_requests());
        let domains = result.level(Granularity::Domain);
        let class_of = |key: &str| {
            domains
                .resources
                .iter()
                .find(|r| r.key == key)
                .map(|r| r.classification)
        };
        assert_eq!(class_of("ads.com"), Some(Classification::Tracking));
        assert_eq!(class_of("news.com"), Some(Classification::Functional));
        assert_eq!(class_of("google.com"), Some(Classification::Mixed));
        assert_eq!(domains.resource_counts.total(), 3);
    }

    #[test]
    fn figure1_hostnames_only_cover_mixed_domains() {
        let result = HierarchicalClassifier::default().classify(&figure1_requests());
        let hostnames = result.level(Granularity::Hostname);
        // Only google.com hostnames appear.
        assert!(hostnames
            .resources
            .iter()
            .all(|r| r.key.ends_with("google.com")));
        let class_of = |key: &str| {
            hostnames
                .resources
                .iter()
                .find(|r| r.key == key)
                .map(|r| r.classification)
        };
        assert_eq!(class_of("ad.google.com"), Some(Classification::Tracking));
        assert_eq!(
            class_of("maps.google.com"),
            Some(Classification::Functional)
        );
        assert_eq!(class_of("cdn.google.com"), Some(Classification::Mixed));
    }

    #[test]
    fn figure1_scripts_and_methods_untangle_clone_js() {
        let result = HierarchicalClassifier::default().classify(&figure1_requests());
        let scripts = result.level(Granularity::Script);
        let class_of = |key: &str| {
            scripts
                .resources
                .iter()
                .find(|r| r.key == key)
                .map(|r| r.classification)
        };
        assert_eq!(
            class_of("https://pub.com/sdk.js"),
            Some(Classification::Tracking)
        );
        assert_eq!(
            class_of("https://pub.com/stack.js"),
            Some(Classification::Functional)
        );
        assert_eq!(
            class_of("https://pub.com/clone.js"),
            Some(Classification::Mixed)
        );

        let methods = result.level(Granularity::Method);
        let class_of = |key: &str| {
            methods
                .resources
                .iter()
                .find(|r| r.key == key)
                .map(|r| r.classification)
        };
        assert_eq!(
            class_of("https://pub.com/clone.js :: m1"),
            Some(Classification::Tracking)
        );
        assert_eq!(
            class_of("https://pub.com/clone.js :: m3"),
            Some(Classification::Functional)
        );
        assert_eq!(
            class_of("https://pub.com/clone.js :: m2"),
            Some(Classification::Mixed)
        );
        assert_eq!(result.unattributed_requests, 2);
    }

    #[test]
    fn request_flow_is_conserved_between_levels() {
        let requests = figure1_requests();
        let result = HierarchicalClassifier::default().classify(&requests);
        assert_eq!(result.total_requests, requests.len() as u64);
        // Each level's input equals the previous level's mixed request count.
        for window in result.levels.windows(2) {
            assert_eq!(window[1].input_requests, window[0].request_counts.mixed);
        }
        // Each level's input equals its own request-count total.
        for level in &result.levels {
            assert_eq!(level.input_requests, level.request_counts.total());
        }
        // Unattributed = mixed at the finest level.
        assert_eq!(
            result.unattributed_requests,
            result.level(Granularity::Method).request_counts.mixed
        );
    }

    #[test]
    fn cumulative_separation_is_monotone_and_matches_overall() {
        let result = HierarchicalClassifier::default().classify(&figure1_requests());
        let cumulative = result.cumulative_separation();
        assert_eq!(cumulative.len(), 4);
        for window in cumulative.windows(2) {
            assert!(window[1].1 >= window[0].1);
        }
        let last = cumulative.last().unwrap().1;
        assert!((last - result.overall_attribution()).abs() < 1e-9);
    }

    #[test]
    fn empty_input_produces_empty_levels() {
        let result = HierarchicalClassifier::default().classify(&[]);
        assert_eq!(result.total_requests, 0);
        assert_eq!(result.unattributed_requests, 0);
        for level in &result.levels {
            assert!(level.resources.is_empty());
            assert_eq!(level.request_counts.total(), 0);
        }
        assert_eq!(result.overall_attribution(), 0.0);
    }

    #[test]
    fn top_resources_ranks_by_volume() {
        let result = HierarchicalClassifier::default().classify(&figure1_requests());
        let domains = result.level(Granularity::Domain);
        let top = domains.top_resources(Classification::Mixed, 5);
        assert_eq!(top[0].key, "google.com");
    }

    #[test]
    fn looser_threshold_increases_mixed_resources() {
        let requests = figure1_requests();
        let strict = HierarchicalClassifier::new(Thresholds::new(0.5)).classify(&requests);
        let paper = HierarchicalClassifier::new(Thresholds::paper()).classify(&requests);
        let strict_mixed = strict.level(Granularity::Domain).resource_counts.mixed;
        let paper_mixed = paper.level(Granularity::Domain).resource_counts.mixed;
        assert!(strict_mixed <= paper_mixed);
    }
}
