//! The serving-oriented `Sifter` API: build once, answer millions of
//! verdicts, ingest observations incrementally.
//!
//! [`Study::run`](crate::pipeline::Study) materialises the whole batch
//! pipeline; a deployed content blocker or proxy instead needs a long-lived
//! handle that answers "tracking, functional, or mixed?" per request. This
//! module provides that handle:
//!
//! * [`SifterBuilder`] — builder-pattern configuration (thresholds, filter
//!   lists for raw-traffic labeling, pre-trained state from a
//!   [`SifterSnapshot`]) producing a [`Sifter`];
//! * [`Sifter::verdict`] — walks the hierarchy coarsest-to-finest (domain →
//!   hostname → script → method) through interned keys. The hot path is
//!   **allocation-free** for already-interned keys: every lookup is a borrow
//!   of the query strings and the returned [`Verdict`] is `Copy`.
//!   [`Sifter::verdict_batch`] serves bulk callers;
//! * [`Sifter::observe`] + [`Sifter::commit`] — incremental ingestion.
//!   `observe` accumulates [`Counts`] deltas and marks the touched resources
//!   dirty; `commit` reclassifies **only** the dirty resources (and whatever
//!   their classification flips invalidate downstream), instead of re-running
//!   the full hierarchical classification. The equivalence tests prove that
//!   any interleaving of `observe`/`commit` ends in exactly the state a
//!   from-scratch [`HierarchicalClassifier::classify`] would produce;
//! * [`Sifter::snapshot`] / [`SifterBuilder::restore`] — versioned
//!   export/import of the trained state (see [`crate::snapshot`]), so a
//!   serving process restarts without a re-crawl.
//!
//! # How incremental commits stay equivalent to batch classification
//!
//! The hierarchy's levels are input-conditional: the hostname level only
//! sees requests of *mixed* domains, the script level only requests of
//! mixed hostnames, and so on. A hostname determines its registrable
//! domain, so domain- and hostname-level counts are unconditional and can
//! be accumulated directly. A script, however, fires requests at many
//! hostnames, and only the slice that flows through mixed hostnames counts
//! at script level. The sifter therefore keeps the per-`(script, hostname)`
//! and per-`(method, hostname)` count cells, and a commit recomputes a
//! dirty script or method by summing its cells over the currently-mixed
//! hostnames. Classification flips propagate downward through adjacency
//! lists (domain → its hostnames → their scripts → their methods), so a
//! commit touches exactly the resources whose verdicts could have changed.
//!
//! # Serving concurrency
//!
//! A `Sifter` is `Send + Sync`; [`Sifter::verdict`] takes `&self` and never
//! mutates, so an `Arc<Sifter>` serves concurrent readers without interior
//! locking on the query path — but `observe`/`commit` take `&mut self`, so
//! that sharing mode cannot ingest. For read-heavy deployments that must
//! keep ingesting, split the sifter with [`Sifter::into_concurrent`] (or
//! [`SifterBuilder::build_concurrent`]) into a
//! [`SifterWriter`](crate::concurrent::SifterWriter) and cheaply-cloneable
//! [`SifterReader`](crate::concurrent::SifterReader) handles: readers serve
//! from an immutable [`VerdictTable`] behind an atomically swapped pointer
//! (no lock on the query path), and every commit publishes the next table
//! in one atomic swap. See [`crate::concurrent`].
//!
//! All three read paths — `Sifter::verdict`, `SifterReader`, and the batch
//! [`Study::sifter`](crate::pipeline::Study::sifter) bridge — walk the same
//! flattened representation ([`crate::table`]): dense per-granularity class
//! arrays indexed by interned key, patched in place by each commit.

use crate::decision::{self, Decision, DecisionRequest};
use crate::frames::SurrogateFrames;
use crate::hierarchy::{
    Granularity, HierarchicalClassifier, HierarchyResult, LevelResult, ResourceEntry,
};
use crate::intern::{FrozenKeys, KeyInterner, ResourceKey};
use crate::label::LabeledRequest;
use crate::ratio::{Classification, Counts, Thresholds};
use crate::snapshot::{SifterSnapshot, SnapshotError};
use crate::surrogate::{MethodPlan, SurrogateScript};
use crate::table::{verdict_walk, ClassTable, VerdictTable};
use filterlist::tokens::TokenHashBuilder;
use filterlist::{
    registrable_domain, FilterEngine, FilterRequest, ListKind, ParsedUrl, RequestLabel,
    ResourceType,
};
use rewriter::UrlRewriter;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

type KeyMap<V> = HashMap<ResourceKey, V, TokenHashBuilder>;
type PairMap<V> = HashMap<(ResourceKey, ResourceKey), V, TokenHashBuilder>;
type KeySet = HashSet<ResourceKey, TokenHashBuilder>;

/// One verdict query: the four attribution keys of a request, borrowed from
/// the caller. `domain` must be the registrable domain (eTLD+1) of
/// `hostname`, exactly as [`LabeledRequest`] carries them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerdictRequest<'a> {
    /// Registrable domain (eTLD+1) of the request URL.
    pub domain: &'a str,
    /// Full hostname of the request URL.
    pub hostname: &'a str,
    /// URL of the initiating script (innermost stack frame).
    pub script: &'a str,
    /// Method (function) name of the initiating frame.
    pub method: &'a str,
}

impl<'a> VerdictRequest<'a> {
    /// A query from explicit keys.
    pub fn new(domain: &'a str, hostname: &'a str, script: &'a str, method: &'a str) -> Self {
        VerdictRequest {
            domain,
            hostname,
            script,
            method,
        }
    }

    /// The query for a labeled request's attribution keys.
    pub fn from_labeled(request: &'a LabeledRequest) -> Self {
        VerdictRequest {
            domain: &request.domain,
            hostname: &request.hostname,
            script: &request.initiator_script,
            method: &request.initiator_method,
        }
    }
}

/// The answer to one [`VerdictRequest`].
///
/// A verdict is decided at the *coarsest* granularity that settles it: a
/// domain classified tracking answers every request under it, a mixed
/// domain defers to the hostname level, and so on. When the walk falls off
/// the trained hierarchy below a mixed resource (e.g. a never-observed
/// script on a known-mixed hostname), the verdict is `Mixed` at the last
/// granularity that was observed — the safe answer for a blocker, since
/// neither blanket blocking nor blanket allowing is justified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The hierarchy settled the request at `granularity`.
    Decided {
        /// Tracking, functional, or (still) mixed.
        classification: Classification,
        /// The granularity whose classification decided the verdict.
        granularity: Granularity,
    },
    /// No component of the request was ever observed (unknown domain).
    Unknown,
}

impl Verdict {
    /// The classification, if any component of the request was known.
    pub fn classification(&self) -> Option<Classification> {
        match self {
            Verdict::Decided { classification, .. } => Some(*classification),
            Verdict::Unknown => None,
        }
    }

    /// The granularity that decided the verdict.
    pub fn granularity(&self) -> Option<Granularity> {
        match self {
            Verdict::Decided { granularity, .. } => Some(*granularity),
            Verdict::Unknown => None,
        }
    }

    /// `true` when a blocker acting on this verdict should block the
    /// request (classified tracking at some granularity).
    pub fn should_block(&self) -> bool {
        self.classification() == Some(Classification::Tracking)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Decided {
                classification,
                granularity,
            } => write!(f, "{classification} (decided at {granularity} level)"),
            Verdict::Unknown => f.write_str("unknown"),
        }
    }
}

/// What one [`Sifter::commit`] did: how many observations it folded in and
/// how many resources it had to reclassify per level. The whole point of
/// incremental ingestion is that these stay proportional to the delta, not
/// to the corpus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Observations folded in by this commit.
    pub observations: u64,
    /// Domains reclassified.
    pub domains: usize,
    /// Hostnames reclassified (dirty plus membership flips from domains).
    pub hostnames: usize,
    /// Scripts reclassified.
    pub scripts: usize,
    /// Methods reclassified.
    pub methods: usize,
}

impl CommitStats {
    /// Total resources reclassified across all four levels.
    pub fn reclassified(&self) -> usize {
        self.domains + self.hostnames + self.scripts + self.methods
    }
}

/// What happened to one [`Sifter::observe_url`] call.
///
/// Raw-URL ingestion can fail for two very different reasons that the old
/// `Option<RequestLabel>` return conflated: the sifter may have no labeling
/// oracle at all (a configuration problem the caller should fix once), or
/// this particular URL may not parse (a per-request data problem the batch
/// labeling stage also excludes). Both skip reasons are counted on the
/// sifter — see [`Sifter::ingest_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserveOutcome {
    /// The URL was labeled by the filter engine and observed; verdicts will
    /// reflect it after the next [`Sifter::commit`].
    Observed(RequestLabel),
    /// No filter engine is configured ([`SifterBuilder::filter_lists`] /
    /// [`SifterBuilder::engine`]); the request was not observed.
    NoEngine,
    /// The URL did not parse; the request was excluded, exactly as the
    /// batch labeling stage excludes it.
    InvalidUrl,
}

impl ObserveOutcome {
    /// The oracle label, when the request was actually observed.
    pub fn label(&self) -> Option<RequestLabel> {
        match self {
            ObserveOutcome::Observed(label) => Some(*label),
            ObserveOutcome::NoEngine | ObserveOutcome::InvalidUrl => None,
        }
    }

    /// `true` when the request was ingested.
    pub fn was_observed(&self) -> bool {
        matches!(self, ObserveOutcome::Observed(_))
    }
}

/// Ingestion accounting across every observe path, including the requests
/// that were *not* ingested and why — so a deployment can alarm on
/// configuration problems (`no_engine`) separately from data problems
/// (`invalid_urls`, `conflicting_domains`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Observations ever ingested, including pending ones.
    pub observed: u64,
    /// Observations folded into the committed (servable) state.
    pub committed: u64,
    /// Observations waiting for the next commit.
    pub pending: u64,
    /// [`Sifter::observe_url`] calls skipped because the URL did not parse.
    pub invalid_urls: u64,
    /// [`Sifter::observe_url`] calls skipped because no engine is configured.
    pub no_engine: u64,
    /// Observations whose hostname arrived under a different registrable
    /// domain than first seen (ingested under the first-seen domain).
    pub conflicting_domains: u64,
}

/// One consolidated view of a serving sifter's operational state — what a
/// `/v1/stats` endpoint or a monitoring loop reads in a single call instead
/// of stitching together five getters.
///
/// Produced by [`Sifter::service_stats`] (where `version` is the commit
/// count) and [`SifterWriter::service_stats`](crate::concurrent::SifterWriter::service_stats)
/// (where `version` is the *published* table version, which keeps growing
/// monotonically across [`restore_snapshot`](crate::concurrent::SifterWriter::restore_snapshot)
/// even though the underlying commit count resets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Full ingestion accounting, including skipped requests.
    pub ingest: IngestStats,
    /// Observations whose hostname conflicted with its first-seen domain
    /// (also available as `ingest.conflicting_domains`; surfaced at top
    /// level because deployments alarm on it).
    pub conflicting_observations: u64,
    /// The servable table version (commit count, or published version for
    /// the concurrent writer).
    pub version: u64,
    /// Committed requests still attributed to mixed methods (the residue).
    pub unattributed: u64,
    /// Committed member resources per granularity, indexed by
    /// [`Granularity::index`].
    pub resources: [usize; 4],
}

impl ServiceStats {
    /// Total committed member resources across all four granularities.
    pub fn total_resources(&self) -> usize {
        self.resources.iter().sum()
    }
}

/// Unconditional per-hostname state: owning domain plus raw counts.
#[derive(Debug, Clone, Copy)]
struct HostMeta {
    domain: ResourceKey,
    counts: Counts,
}

/// Immutable attribution of a method key: its script and method-name
/// symbols (needed for membership tests and snapshot export).
#[derive(Debug, Clone, Copy)]
struct MethodMeta {
    script: ResourceKey,
    name: ResourceKey,
}

/// Committed (servable) state of one resource at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LevelEntry {
    counts: Counts,
    classification: Classification,
}

/// Builder-pattern configuration of a [`Sifter`].
///
/// ```
/// use trackersift::{Sifter, Thresholds};
///
/// let sifter = Sifter::builder().thresholds(Thresholds::paper()).build();
/// assert_eq!(sifter.observed(), 0);
/// ```
#[derive(Debug, Default)]
pub struct SifterBuilder {
    thresholds: Thresholds,
    engine: Option<Arc<FilterEngine>>,
    rewriter: Option<Arc<UrlRewriter>>,
}

impl SifterBuilder {
    /// A builder with the paper's thresholds and no filter engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the classification thresholds.
    pub fn thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Compile filter lists into the labeling oracle the sifter uses for
    /// [`Sifter::observe_url`] (raw-traffic ingestion) and the filter-list
    /// backstop of [`Sifter::decide`].
    pub fn filter_lists(mut self, lists: &[(ListKind, &str)]) -> Self {
        self.engine = Some(Arc::new(FilterEngine::from_lists(lists)));
        self
    }

    /// Use an already-compiled filter engine as the labeling oracle.
    pub fn engine(mut self, engine: FilterEngine) -> Self {
        self.engine = Some(Arc::new(engine));
        self
    }

    /// Share an already-compiled filter engine (no recompilation, no copy)
    /// — how a serving process reuses one engine across sifter rebuilds,
    /// e.g. when restoring a snapshot into a running writer.
    pub fn shared_engine(mut self, engine: Arc<FilterEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Use a compiled [`UrlRewriter`] as the rewrite arm of
    /// [`Sifter::decide`]: mixed requests whose URLs carry identifier
    /// parameters are answered with [`Decision::Rewrite`] instead of the
    /// filter-list backstop. See [`crate::decision`] for where rewrites sit
    /// in the policy (Allow < Rewrite < Surrogate < Block).
    pub fn rewriter(mut self, rewriter: UrlRewriter) -> Self {
        self.rewriter = Some(Arc::new(rewriter));
        self
    }

    /// Share an already-compiled rewriter (no copy) across sifter rebuilds,
    /// mirroring [`SifterBuilder::shared_engine`].
    pub fn shared_rewriter(mut self, rewriter: Arc<UrlRewriter>) -> Self {
        self.rewriter = Some(rewriter);
        self
    }

    /// Produce an empty sifter (no pre-trained state).
    pub fn build(self) -> Sifter {
        Sifter {
            thresholds: self.thresholds,
            engine: self.engine,
            rewriter: self.rewriter,
            interner: KeyInterner::new(),
            domain_counts: KeyMap::default(),
            host_meta: KeyMap::default(),
            method_meta: KeyMap::default(),
            script_host: PairMap::default(),
            method_host: PairMap::default(),
            hosts_of_domain: KeyMap::default(),
            scripts_of_host: KeyMap::default(),
            methods_of_host: KeyMap::default(),
            hosts_of_script: KeyMap::default(),
            hosts_of_method: KeyMap::default(),
            methods_of_script: KeyMap::default(),
            domain_entries: KeyMap::default(),
            host_entries: KeyMap::default(),
            script_entries: KeyMap::default(),
            method_entries: KeyMap::default(),
            dirty_domains: KeySet::default(),
            dirty_hosts: KeySet::default(),
            dirty_scripts: KeySet::default(),
            dirty_methods: KeySet::default(),
            classes: ClassTable::default(),
            surrogate_plans: KeyMap::default(),
            surrogate_frames: KeyMap::default(),
            frozen: None,
            observed_requests: 0,
            committed_requests: 0,
            residue_requests: 0,
            pending_observations: 0,
            commits: 0,
            invalid_urls: 0,
            no_engine_urls: 0,
            conflicting_observations: 0,
        }
    }

    /// Produce an empty concurrent reader/writer pair directly — shorthand
    /// for [`SifterBuilder::build`] followed by [`Sifter::into_concurrent`].
    ///
    /// ```
    /// use trackersift::{Sifter, Thresholds};
    ///
    /// let (writer, reader) = Sifter::builder()
    ///     .thresholds(Thresholds::paper())
    ///     .build_concurrent();
    /// assert_eq!(writer.sifter().observed(), 0);
    /// assert_eq!(reader.version(), 0);
    /// ```
    pub fn build_concurrent(
        self,
    ) -> (
        crate::concurrent::SifterWriter,
        crate::concurrent::SifterReader,
    ) {
        self.build().into_concurrent()
    }

    /// Produce a sifter pre-trained from a [`SifterSnapshot`] (the state a
    /// previous process exported with [`Sifter::snapshot`]). The snapshot's
    /// thresholds take precedence over [`SifterBuilder::thresholds`]; a
    /// configured filter engine and rewriter are kept. All restored
    /// observations are
    /// committed, so the returned sifter serves verdicts immediately.
    pub fn restore(self, snapshot: &SifterSnapshot) -> Result<Sifter, SnapshotError> {
        if !snapshot.threshold.is_finite() || snapshot.threshold <= 0.0 {
            return Err(SnapshotError::Corrupt(format!(
                "threshold {} is not positive",
                snapshot.threshold
            )));
        }
        let mut sifter = self
            .thresholds(Thresholds {
                log_ratio: snapshot.threshold,
            })
            .build();
        sifter.load(snapshot)?;
        Ok(sifter)
    }
}

/// A long-lived, `Send + Sync` verdict server over TrackerSift's trained
/// hierarchical state. Built by [`SifterBuilder`]; see the [module
/// docs](crate::service) for the full serving story.
#[derive(Debug)]
pub struct Sifter {
    thresholds: Thresholds,
    engine: Option<Arc<FilterEngine>>,
    rewriter: Option<Arc<UrlRewriter>>,
    interner: KeyInterner,

    // -- raw accumulated observations (updated by `observe`) --
    /// Unconditional counts per domain.
    domain_counts: KeyMap<Counts>,
    /// Owning domain + unconditional counts per hostname.
    host_meta: KeyMap<HostMeta>,
    /// Script and name symbols per method key.
    method_meta: KeyMap<MethodMeta>,
    /// Count cells per `(script, hostname)` pair.
    script_host: PairMap<Counts>,
    /// Count cells per `(method, hostname)` pair.
    method_host: PairMap<Counts>,

    // -- adjacency (first-seen order, deduplicated by the cell maps) --
    hosts_of_domain: KeyMap<Vec<ResourceKey>>,
    scripts_of_host: KeyMap<Vec<ResourceKey>>,
    methods_of_host: KeyMap<Vec<ResourceKey>>,
    hosts_of_script: KeyMap<Vec<ResourceKey>>,
    hosts_of_method: KeyMap<Vec<ResourceKey>>,
    methods_of_script: KeyMap<Vec<ResourceKey>>,

    // -- committed serving state (updated only by `commit`) --
    /// Every committed domain.
    domain_entries: KeyMap<LevelEntry>,
    /// Hostname-level members: hostnames whose domain is mixed.
    host_entries: KeyMap<LevelEntry>,
    /// Script-level members: scripts with requests through mixed hostnames.
    script_entries: KeyMap<LevelEntry>,
    /// Method-level members: methods of mixed scripts.
    method_entries: KeyMap<LevelEntry>,

    // -- dirty sets consumed by the next `commit` --
    dirty_domains: KeySet,
    dirty_hosts: KeySet,
    dirty_scripts: KeySet,
    dirty_methods: KeySet,

    // -- the flattened serving representation (see `crate::table`) --
    /// Dense committed classifications per granularity, patched in place by
    /// each commit alongside the `*_entries` maps. `verdict` reads this.
    classes: ClassTable,
    /// Surrogate plans for every committed mixed script, maintained
    /// incrementally by `commit` (only scripts whose classification or
    /// member methods changed are rebuilt). `Arc` values so publishing a
    /// [`VerdictTable`] clones pointers, not strings.
    surrogate_plans: KeyMap<Arc<SurrogateScript>>,
    /// The wire encodings of `surrogate_plans`, preformatted at commit
    /// time in lockstep with the plans (same keys, same incremental
    /// refresh) so serving a surrogate is a memcpy, not an encode.
    surrogate_frames: KeyMap<SurrogateFrames>,
    /// Cached frozen key view for publishing [`VerdictTable`]s; refreshed
    /// lazily when the interner has grown since the last freeze.
    frozen: Option<Arc<FrozenKeys>>,

    /// Observations ever ingested (including pending).
    observed_requests: u64,
    /// Observations visible to the committed state.
    committed_requests: u64,
    /// Committed requests still attributed to mixed methods (the residue).
    residue_requests: u64,
    /// Observations since the last commit.
    pending_observations: u64,
    /// Commits performed.
    commits: u64,
    /// `observe_url` calls skipped: unparseable URL.
    invalid_urls: u64,
    /// `observe_url` calls skipped: no engine configured.
    no_engine_urls: u64,
    /// Observations whose hostname conflicted with its first-seen domain.
    conflicting_observations: u64,
}

// The serving contract: one Sifter shared across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Sifter>();
};

impl Sifter {
    /// Start building a sifter.
    pub fn builder() -> SifterBuilder {
        SifterBuilder::new()
    }

    /// The thresholds in force.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// `true` when a filter engine was configured (enables
    /// [`Sifter::observe_url`]).
    pub fn has_engine(&self) -> bool {
        self.engine.is_some()
    }

    /// Observations ever ingested, including pending ones.
    pub fn observed(&self) -> u64 {
        self.observed_requests
    }

    /// Observations folded into the committed (servable) state.
    pub fn committed(&self) -> u64 {
        self.committed_requests
    }

    /// Observations waiting for the next [`Sifter::commit`].
    pub fn pending(&self) -> u64 {
        self.pending_observations
    }

    /// Commits performed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Committed requests still attributed to mixed methods — the paper's
    /// "<2% residue".
    pub fn unattributed_requests(&self) -> u64 {
        self.residue_requests
    }

    /// Observations whose hostname was seen under a different registrable
    /// domain than its first-seen one. Such observations are ingested under
    /// the first-seen domain (see [`Sifter::observe_parts`]); this counter
    /// is how a deployment notices the upstream attribution bug.
    pub fn conflicting_observations(&self) -> u64 {
        self.conflicting_observations
    }

    /// The full ingestion accounting, including requests that were skipped
    /// and why (see [`IngestStats`]).
    pub fn ingest_stats(&self) -> IngestStats {
        IngestStats {
            observed: self.observed_requests,
            committed: self.committed_requests,
            pending: self.pending_observations,
            invalid_urls: self.invalid_urls,
            no_engine: self.no_engine_urls,
            conflicting_domains: self.conflicting_observations,
        }
    }

    /// One consolidated view of the serving state (ingest accounting,
    /// conflicts, table version, residue, member counts) — see
    /// [`ServiceStats`].
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            ingest: self.ingest_stats(),
            conflicting_observations: self.conflicting_observations,
            version: self.commits,
            unattributed: self.residue_requests,
            resources: [
                self.domain_entries.len(),
                self.host_entries.len(),
                self.script_entries.len(),
                self.method_entries.len(),
            ],
        }
    }

    /// The shared filter engine, if one was configured.
    pub(crate) fn engine_arc(&self) -> Option<Arc<FilterEngine>> {
        self.engine.clone()
    }

    /// The shared URL rewriter, if one was configured.
    pub(crate) fn rewriter_arc(&self) -> Option<Arc<UrlRewriter>> {
        self.rewriter.clone()
    }

    /// Number of committed member resources at a granularity.
    pub fn committed_resources(&self, granularity: Granularity) -> usize {
        match granularity {
            Granularity::Domain => self.domain_entries.len(),
            Granularity::Hostname => self.host_entries.len(),
            Granularity::Script => self.script_entries.len(),
            Granularity::Method => self.method_entries.len(),
        }
    }

    // -----------------------------------------------------------------
    // ingestion
    // -----------------------------------------------------------------

    /// Ingest one labeled request. The observation is buffered into count
    /// deltas and dirty marks; verdicts do not change until the next
    /// [`Sifter::commit`].
    pub fn observe(&mut self, request: &LabeledRequest) {
        self.observe_parts(
            &request.domain,
            &request.hostname,
            &request.initiator_script,
            &request.initiator_method,
            request.is_tracking(),
        );
    }

    /// Ingest a batch of labeled requests (see [`Sifter::observe`]).
    pub fn observe_all<'a>(&mut self, requests: impl IntoIterator<Item = &'a LabeledRequest>) {
        for request in requests {
            self.observe(request);
        }
    }

    /// Ingest one raw (unlabeled) request: label it with the configured
    /// filter engine, derive the hostname / registrable domain, and observe
    /// the result. The returned [`ObserveOutcome`] distinguishes "labeled
    /// and observed" from the two skip reasons — no engine configured
    /// ([`ObserveOutcome::NoEngine`]) and unparseable URL
    /// ([`ObserveOutcome::InvalidUrl`], excluded exactly as the batch
    /// labeling stage excludes it) — and every skip is counted in
    /// [`Sifter::ingest_stats`].
    pub fn observe_url(
        &mut self,
        url: &str,
        source_hostname: &str,
        resource_type: ResourceType,
        initiator_script: &str,
        initiator_method: &str,
    ) -> ObserveOutcome {
        let Some(engine) = self.engine.as_ref() else {
            self.no_engine_urls += 1;
            return ObserveOutcome::NoEngine;
        };
        let Some(parsed) = ParsedUrl::parse(url) else {
            self.invalid_urls += 1;
            return ObserveOutcome::InvalidUrl;
        };
        let request = FilterRequest::from_parsed(parsed, source_hostname, resource_type);
        let label = engine.label(&request);
        let hostname = request.into_url().hostname;
        let domain = registrable_domain(&hostname);
        self.observe_parts(
            &domain,
            &hostname,
            initiator_script,
            initiator_method,
            label.is_tracking(),
        );
        ObserveOutcome::Observed(label)
    }

    /// Ingest one observation given its four attribution keys and label.
    ///
    /// `domain` should be the registrable domain of `hostname` — the
    /// invariant every [`LabeledRequest`] produced by the labeling stage
    /// satisfies by construction. When a hostname arrives under a
    /// *different* domain than it was first observed with, the sifter
    /// degrades gracefully instead of corrupting the hierarchy (a hostname
    /// must belong to exactly one domain): the observation is credited to
    /// the first-seen domain and the event is counted in
    /// [`Sifter::conflicting_observations`].
    pub fn observe_parts(
        &mut self,
        domain: &str,
        hostname: &str,
        script: &str,
        method: &str,
        tracking: bool,
    ) {
        let claimed = self.interner.intern(domain);
        let h = self.interner.intern(hostname);
        let s = self.interner.intern(script);
        let name = self.interner.intern(method);
        let m = self.interner.intern_method(script, method);

        // Resolve the *effective* domain first: the hostname's first-seen
        // domain wins, so domain counts and hostname ownership can never
        // disagree.
        let d = match self.host_meta.entry(h) {
            Entry::Occupied(mut entry) => {
                let meta = entry.get_mut();
                if meta.domain != claimed {
                    self.conflicting_observations += 1;
                }
                meta.counts.record(tracking);
                meta.domain
            }
            Entry::Vacant(entry) => {
                let mut counts = Counts::new();
                counts.record(tracking);
                entry.insert(HostMeta {
                    domain: claimed,
                    counts,
                });
                self.hosts_of_domain.entry(claimed).or_default().push(h);
                claimed
            }
        };
        self.domain_counts.entry(d).or_default().record(tracking);
        if let Entry::Vacant(entry) = self.method_meta.entry(m) {
            entry.insert(MethodMeta { script: s, name });
            self.methods_of_script.entry(s).or_default().push(m);
        }
        match self.script_host.entry((s, h)) {
            Entry::Occupied(mut entry) => entry.get_mut().record(tracking),
            Entry::Vacant(entry) => {
                let mut counts = Counts::new();
                counts.record(tracking);
                entry.insert(counts);
                self.scripts_of_host.entry(h).or_default().push(s);
                self.hosts_of_script.entry(s).or_default().push(h);
            }
        }
        match self.method_host.entry((m, h)) {
            Entry::Occupied(mut entry) => entry.get_mut().record(tracking),
            Entry::Vacant(entry) => {
                let mut counts = Counts::new();
                counts.record(tracking);
                entry.insert(counts);
                self.methods_of_host.entry(h).or_default().push(m);
                self.hosts_of_method.entry(m).or_default().push(h);
            }
        }

        self.dirty_domains.insert(d);
        self.dirty_hosts.insert(h);
        self.dirty_scripts.insert(s);
        self.dirty_methods.insert(m);
        self.observed_requests += 1;
        self.pending_observations += 1;
    }

    /// Fold all pending observations into the servable state by
    /// reclassifying only the dirty resources, coarsest level first.
    /// Classification flips at one level dirty exactly the dependent
    /// resources of the next, so the work is proportional to the delta (and
    /// its blast radius), never to the corpus.
    pub fn commit(&mut self) -> CommitStats {
        let mut stats = CommitStats {
            observations: self.pending_observations,
            ..CommitStats::default()
        };

        // Phase 1: domains. A mixedness flip changes the membership of the
        // domain's entire hostname set.
        let dirty_domains: Vec<ResourceKey> = self.dirty_domains.drain().collect();
        stats.domains = dirty_domains.len();
        for d in dirty_domains {
            let counts = self.domain_counts[&d];
            let classification = self
                .thresholds
                .classify(&counts)
                .expect("observed domains have requests");
            let previous = self.domain_entries.insert(
                d,
                LevelEntry {
                    counts,
                    classification,
                },
            );
            self.classes
                .set(Granularity::Domain, d, Some(classification));
            let was_mixed =
                matches!(previous, Some(e) if e.classification == Classification::Mixed);
            if was_mixed != (classification == Classification::Mixed) {
                if let Some(hosts) = self.hosts_of_domain.get(&d) {
                    self.dirty_hosts.extend(hosts.iter().copied());
                }
            }
        }

        // Phase 2: hostnames. Membership = the owning domain is mixed; an
        // *effective-mixedness* flip (member and itself mixed) changes
        // which cells count toward every script/method seen on this host.
        let dirty_hosts: Vec<ResourceKey> = self.dirty_hosts.drain().collect();
        stats.hostnames = dirty_hosts.len();
        for h in dirty_hosts {
            let meta = self.host_meta[&h];
            let member = matches!(
                self.domain_entries.get(&meta.domain),
                Some(e) if e.classification == Classification::Mixed
            );
            let was_effective = matches!(
                self.host_entries.get(&h),
                Some(e) if e.classification == Classification::Mixed
            );
            let now_effective = if member {
                let classification = self
                    .thresholds
                    .classify(&meta.counts)
                    .expect("observed hostnames have requests");
                self.host_entries.insert(
                    h,
                    LevelEntry {
                        counts: meta.counts,
                        classification,
                    },
                );
                self.classes
                    .set(Granularity::Hostname, h, Some(classification));
                classification == Classification::Mixed
            } else {
                self.host_entries.remove(&h);
                self.classes.set(Granularity::Hostname, h, None);
                false
            };
            if was_effective != now_effective {
                if let Some(scripts) = self.scripts_of_host.get(&h) {
                    self.dirty_scripts.extend(scripts.iter().copied());
                }
                if let Some(methods) = self.methods_of_host.get(&h) {
                    self.dirty_methods.extend(methods.iter().copied());
                }
            }
        }

        // Phase 3: scripts. A script's level counts are the sum of its
        // cells over currently effective-mixed hostnames; zero total means
        // the script is not a member of the level at all.
        let dirty_scripts: Vec<ResourceKey> = self.dirty_scripts.drain().collect();
        stats.scripts = dirty_scripts.len();
        // Scripts whose surrogate plan must be rebuilt after phase 4: the
        // reclassified scripts themselves, plus (below) the owning script
        // of every reclassified method. Everything else keeps its cached
        // plan, so plan maintenance stays proportional to the delta.
        let mut plans_dirty: KeySet = dirty_scripts.iter().copied().collect();
        for s in dirty_scripts {
            let counts = self.member_counts(s, &self.hosts_of_script, &self.script_host);
            let was_mixed = matches!(
                self.script_entries.get(&s),
                Some(e) if e.classification == Classification::Mixed
            );
            let now_mixed = if !counts.is_empty() {
                let classification = self
                    .thresholds
                    .classify(&counts)
                    .expect("nonzero counts classify");
                self.script_entries.insert(
                    s,
                    LevelEntry {
                        counts,
                        classification,
                    },
                );
                self.classes
                    .set(Granularity::Script, s, Some(classification));
                classification == Classification::Mixed
            } else {
                self.script_entries.remove(&s);
                self.classes.set(Granularity::Script, s, None);
                false
            };
            if was_mixed != now_mixed {
                if let Some(methods) = self.methods_of_script.get(&s) {
                    self.dirty_methods.extend(methods.iter().copied());
                }
            }
        }

        // Phase 4: methods. Membership = the owning script is mixed; mixed
        // member methods are the residue.
        let dirty_methods: Vec<ResourceKey> = self.dirty_methods.drain().collect();
        stats.methods = dirty_methods.len();
        for m in dirty_methods {
            let meta = self.method_meta[&m];
            plans_dirty.insert(meta.script);
            if let Some(old) = self.method_entries.get(&m) {
                if old.classification == Classification::Mixed {
                    self.residue_requests -= old.counts.total();
                }
            }
            let member = matches!(
                self.script_entries.get(&meta.script),
                Some(e) if e.classification == Classification::Mixed
            );
            if !member {
                self.method_entries.remove(&m);
                self.classes.set(Granularity::Method, m, None);
                continue;
            }
            let counts = self.member_counts(m, &self.hosts_of_method, &self.method_host);
            if counts.is_empty() {
                self.method_entries.remove(&m);
                self.classes.set(Granularity::Method, m, None);
                continue;
            }
            let classification = self
                .thresholds
                .classify(&counts)
                .expect("nonzero counts classify");
            if classification == Classification::Mixed {
                self.residue_requests += counts.total();
            }
            self.method_entries.insert(
                m,
                LevelEntry {
                    counts,
                    classification,
                },
            );
            self.classes
                .set(Granularity::Method, m, Some(classification));
        }

        // Refresh the surrogate plans of exactly the scripts this commit
        // could have changed: a committed-mixed script (re)gains its plan,
        // everything else drops out of the map.
        for s in plans_dirty {
            let mixed = matches!(
                self.script_entries.get(&s),
                Some(e) if e.classification == Classification::Mixed
            );
            match mixed.then(|| self.plan_for_script(s)).flatten() {
                Some(plan) => {
                    self.surrogate_frames.insert(s, SurrogateFrames::new(&plan));
                    self.surrogate_plans.insert(s, Arc::new(plan));
                }
                None => {
                    self.surrogate_plans.remove(&s);
                    self.surrogate_frames.remove(&s);
                }
            }
        }

        self.committed_requests = self.observed_requests;
        self.pending_observations = 0;
        self.commits += 1;
        stats
    }

    /// Sum a resource's count cells over the currently effective-mixed
    /// hostnames it was observed on.
    fn member_counts(
        &self,
        key: ResourceKey,
        hosts_of: &KeyMap<Vec<ResourceKey>>,
        cells: &PairMap<Counts>,
    ) -> Counts {
        let mut counts = Counts::new();
        if let Some(hosts) = hosts_of.get(&key) {
            for &h in hosts {
                let effective = matches!(
                    self.host_entries.get(&h),
                    Some(e) if e.classification == Classification::Mixed
                );
                if effective {
                    counts.merge(cells[&(key, h)]);
                }
            }
        }
        counts
    }

    // -----------------------------------------------------------------
    // serving
    // -----------------------------------------------------------------

    /// Answer one verdict query by walking the committed hierarchy
    /// coarsest-to-finest over the flattened class table (one string-key
    /// lookup plus one dense array read per level — see [`crate::table`]).
    /// Allocation-free: all keys resolve through the interner by borrowed
    /// lookup, and the result is `Copy`.
    pub fn verdict(&self, request: &VerdictRequest<'_>) -> Verdict {
        verdict_walk(&self.interner, &self.classes, request)
    }

    /// Serve a batch of verdicts (one output per input, in order).
    pub fn verdict_batch(&self, requests: &[VerdictRequest<'_>]) -> Vec<Verdict> {
        let mut out = Vec::new();
        self.verdict_batch_into(requests, &mut out);
        out
    }

    /// Serve a batch of verdicts into a reusable buffer (cleared first), so
    /// steady-state bulk serving performs no per-batch allocation once the
    /// buffer has grown to the batch size.
    pub fn verdict_batch_into(&self, requests: &[VerdictRequest<'_>], out: &mut Vec<Verdict>) {
        out.clear();
        out.reserve(requests.len());
        for request in requests {
            out.push(self.verdict(request));
        }
    }

    /// The blessed enforcement entry point: compose the hierarchy verdict,
    /// the surrogate plan for mixed scripts, and the filter-list backstop
    /// into the action a blocker should take. See [`crate::decision`] for
    /// the policy; [`SifterReader::decide`](crate::concurrent::SifterReader::decide)
    /// answers identically (byte for byte) from the published table.
    pub fn decide(&self, request: &DecisionRequest<'_>) -> Decision {
        decision::decide(
            &self.interner,
            &self.classes,
            self.engine.as_deref(),
            self.rewriter.as_deref(),
            |script| self.surrogate_plans.get(&script).cloned(),
            request,
        )
    }

    /// Serve a batch of decisions (one output per input, in order).
    pub fn decide_batch(&self, requests: &[DecisionRequest<'_>]) -> Vec<Decision> {
        requests
            .iter()
            .map(|request| self.decide(request))
            .collect()
    }

    /// Build the surrogate plan for one committed script from scratch: its
    /// member methods (in name order) with their committed classifications
    /// and counts, reduced through the same constructor the batch
    /// [`generate_surrogates`](crate::surrogate::generate_surrogates) path
    /// uses. `None` when the script has no committed member methods (a
    /// surrogate with nothing to keep, stub, or guard is no surrogate).
    /// `commit` calls this for exactly the scripts a delta touched and
    /// caches the results in `surrogate_plans`; the decision paths read
    /// the cache.
    ///
    /// Serving-side plans carry no call stacks, so guards for
    /// still-mixed methods have no divergence predicates (empty
    /// `blocked_callers`) — they preserve the functional traffic and
    /// suppress nothing, exactly the conservative degradation the batch
    /// path applies when divergence analysis finds nothing.
    fn plan_for_script(&self, script: ResourceKey) -> Option<SurrogateScript> {
        let methods = self.methods_of_script.get(&script)?;
        let mut plans: Vec<MethodPlan> = methods
            .iter()
            .filter_map(|m| {
                let entry = self.method_entries.get(m)?;
                Some(MethodPlan {
                    name: self.interner.resolve(self.method_meta[m].name).to_string(),
                    classification: entry.classification,
                    tracking: entry.counts.tracking,
                    functional: entry.counts.functional,
                    blocked_callers: Vec::new(),
                })
            })
            .collect();
        if plans.is_empty() {
            return None;
        }
        plans.sort_by(|a, b| a.name.cmp(&b.name));
        Some(SurrogateScript::from_method_plans(
            self.interner.resolve(script).to_string(),
            plans,
        ))
    }

    /// Export the committed serving state as an immutable, point-in-time
    /// [`VerdictTable`] — the unit the concurrent writer publishes and the
    /// representation every read path shares. The frozen key view is cached
    /// and re-cloned only when the interner has grown since the last call,
    /// so successive exports after small commits stay cheap.
    ///
    /// Scaling caveat: when a delta *did* intern new keys, the re-freeze
    /// clones the full string→key lookup — O(total keys), not O(delta). At
    /// corpus scale that is a bulk `HashMap` clone sharing the `Arc<str>`
    /// storage (no string copies); a layered/persistent lookup that shares
    /// unchanged buckets across freezes is the known next optimisation if
    /// novel-key churn ever dominates commit latency.
    pub fn verdict_table(&mut self) -> VerdictTable {
        let stale = match &self.frozen {
            Some(frozen) => {
                frozen.len() != self.interner.len()
                    || frozen.pair_count() != self.interner.pair_count()
            }
            None => true,
        };
        if stale {
            self.frozen = Some(Arc::new(self.interner.freeze()));
        }
        let keys = Arc::clone(self.frozen.as_ref().expect("frozen view refreshed above"));
        VerdictTable::new(
            keys,
            self.classes.clone(),
            self.commits,
            self.committed_requests,
            self.residue_requests,
            self.engine.clone(),
            self.rewriter.clone(),
            Arc::new(self.surrogate_plans.clone()),
            Arc::new(self.surrogate_frames.clone()),
        )
    }

    // -----------------------------------------------------------------
    // export
    // -----------------------------------------------------------------

    /// Materialise the committed state as a [`HierarchyResult`] — exactly
    /// what [`HierarchicalClassifier::classify`] over every committed
    /// observation would return, byte for byte (the equivalence the service
    /// tests pin down). This is how the report/metrics layer reads a
    /// sifter.
    pub fn hierarchy(&self) -> HierarchyResult {
        let domain_level = self.level(Granularity::Domain, &self.domain_entries);
        let hostname_level = self.level(Granularity::Hostname, &self.host_entries);
        let script_level = self.level(Granularity::Script, &self.script_entries);
        let method_level = self.level(Granularity::Method, &self.method_entries);
        HierarchyResult {
            thresholds: self.thresholds,
            total_requests: self.committed_requests,
            unattributed_requests: self.residue_requests,
            levels: vec![domain_level, hostname_level, script_level, method_level],
        }
    }

    fn level(&self, granularity: Granularity, entries: &KeyMap<LevelEntry>) -> LevelResult {
        let resources: Vec<ResourceEntry> = entries
            .iter()
            .map(|(&k, entry)| ResourceEntry {
                key: self.interner.resolve(k).to_string(),
                counts: entry.counts,
                classification: entry.classification,
            })
            .collect();
        let input_requests = match granularity {
            Granularity::Domain => self.committed_requests,
            _ => resources.iter().map(|r| r.counts.total()).sum(),
        };
        LevelResult::from_entries(granularity, resources, input_requests)
    }

    /// Export the full trained state (including pending, uncommitted
    /// observations) as a versioned [`SifterSnapshot`]. Restoring the
    /// snapshot commits everything, so exporting with pending observations
    /// is safe but the restored process will already see them applied;
    /// export after [`Sifter::commit`] to round-trip the exact serving
    /// state.
    pub fn snapshot(&self) -> SifterSnapshot {
        let keys: Vec<String> = self.interner.iter().map(|(_, s)| s.to_string()).collect();
        let mut hostnames: Vec<(u32, u32)> = self
            .host_meta
            .iter()
            .map(|(&h, meta)| (h.index() as u32, meta.domain.index() as u32))
            .collect();
        hostnames.sort_unstable();
        let mut methods: Vec<(u32, u32, u32)> = self
            .method_meta
            .iter()
            .map(|(&m, meta)| {
                (
                    m.index() as u32,
                    meta.script.index() as u32,
                    meta.name.index() as u32,
                )
            })
            .collect();
        methods.sort_unstable();
        let mut cells: Vec<(u32, u32, u64, u64)> = self
            .method_host
            .iter()
            .map(|(&(m, h), counts)| {
                (
                    m.index() as u32,
                    h.index() as u32,
                    counts.tracking,
                    counts.functional,
                )
            })
            .collect();
        cells.sort_unstable();
        SifterSnapshot {
            threshold: self.thresholds.log_ratio,
            observed: self.observed_requests,
            keys,
            hostnames,
            methods,
            cells,
        }
    }

    /// Rebuild state from a snapshot (empty sifter only) and commit it.
    fn load(&mut self, snapshot: &SifterSnapshot) -> Result<(), SnapshotError> {
        debug_assert_eq!(self.observed_requests, 0, "load requires an empty sifter");
        // 1. Restore the interner verbatim so every persisted id resolves
        //    to the same string (and verdict/export bytes cannot drift).
        for (index, key) in snapshot.keys.iter().enumerate() {
            let id = self.interner.intern(key);
            if id.index() != index {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate interner key {key:?} at index {index}"
                )));
            }
        }
        // Resolve a persisted id against the freshly-restored interner. A
        // free function (not a closure) so the interner borrow ends at each
        // call and `intern_method` below can still borrow mutably.
        fn key_of(
            interner: &KeyInterner,
            keys: &[String],
            id: u32,
        ) -> Result<ResourceKey, SnapshotError> {
            let index = id as usize;
            if index >= keys.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "key id {id} out of range ({} keys)",
                    keys.len()
                )));
            }
            Ok(interner.get(&keys[index]).expect("restored above"))
        }
        let key = |interner: &KeyInterner, id: u32| key_of(interner, &snapshot.keys, id);
        // 2. Hostname → domain ownership.
        for &(h_id, d_id) in &snapshot.hostnames {
            let (h, d) = (key(&self.interner, h_id)?, key(&self.interner, d_id)?);
            if self
                .host_meta
                .insert(
                    h,
                    HostMeta {
                        domain: d,
                        counts: Counts::new(),
                    },
                )
                .is_some()
            {
                return Err(SnapshotError::Corrupt(format!(
                    "hostname id {h_id} listed twice"
                )));
            }
            self.hosts_of_domain.entry(d).or_default().push(h);
        }
        // 3. Method → (script, name) attribution; re-interning the pair
        //    also repopulates the interner's pair cache for `get_method`.
        for &(m_id, s_id, name_id) in &snapshot.methods {
            let (m, s, name) = (
                key(&self.interner, m_id)?,
                key(&self.interner, s_id)?,
                key(&self.interner, name_id)?,
            );
            let script_str = self.interner.resolve_shared(s);
            let name_str = self.interner.resolve_shared(name);
            if self.interner.intern_method(&script_str, &name_str) != m {
                return Err(SnapshotError::Corrupt(format!(
                    "method id {m_id} does not compose from script id {s_id} + name id {name_id}"
                )));
            }
            if self
                .method_meta
                .insert(m, MethodMeta { script: s, name })
                .is_some()
            {
                return Err(SnapshotError::Corrupt(format!(
                    "method id {m_id} listed twice"
                )));
            }
            self.methods_of_script.entry(s).or_default().push(m);
        }
        // 4. Count cells, routed through the same accumulation structures
        //    `observe` fills, then one commit reclassifies everything.
        for &(m_id, h_id, tracking, functional) in &snapshot.cells {
            let (m, h) = (key(&self.interner, m_id)?, key(&self.interner, h_id)?);
            let counts = Counts {
                tracking,
                functional,
            };
            if counts.is_empty() {
                return Err(SnapshotError::Corrupt(format!(
                    "empty count cell for method id {m_id} on hostname id {h_id}"
                )));
            }
            let s = self
                .method_meta
                .get(&m)
                .ok_or_else(|| {
                    SnapshotError::Corrupt(format!("cell references unknown method id {m_id}"))
                })?
                .script;
            let host = self.host_meta.get_mut(&h).ok_or_else(|| {
                SnapshotError::Corrupt(format!("cell references unknown hostname id {h_id}"))
            })?;
            host.counts.merge(counts);
            let d = host.domain;
            self.domain_counts.entry(d).or_default().merge(counts);
            match self.script_host.entry((s, h)) {
                Entry::Occupied(mut entry) => entry.get_mut().merge(counts),
                Entry::Vacant(entry) => {
                    entry.insert(counts);
                    self.scripts_of_host.entry(h).or_default().push(s);
                    self.hosts_of_script.entry(s).or_default().push(h);
                }
            }
            if self.method_host.insert((m, h), counts).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate count cell for method id {m_id} on hostname id {h_id}"
                )));
            }
            self.methods_of_host.entry(h).or_default().push(m);
            self.hosts_of_method.entry(m).or_default().push(h);
            self.dirty_domains.insert(d);
            self.dirty_hosts.insert(h);
            self.dirty_scripts.insert(s);
            self.dirty_methods.insert(m);
            self.observed_requests += counts.total();
            self.pending_observations += counts.total();
        }
        if self.observed_requests != snapshot.observed {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot claims {} observations but its cells sum to {}",
                snapshot.observed, self.observed_requests
            )));
        }
        // Every hostname row must be backed by at least one cell: a
        // zero-count hostname is unrepresentable through `observe`, and a
        // later mixedness flip of its domain would ask the classifier for
        // an (undefined) verdict on empty counts.
        for &(h_id, _) in &snapshot.hostnames {
            let h = key(&self.interner, h_id)?;
            if self.host_meta[&h].counts.is_empty() {
                return Err(SnapshotError::Corrupt(format!(
                    "hostname id {h_id} has no count cells"
                )));
            }
        }
        self.commit();
        Ok(())
    }

    /// From-scratch reference classification over an explicit request set —
    /// the naive baseline `bench_service` measures incremental commits
    /// against.
    pub fn classifier(&self) -> HierarchicalClassifier {
        HierarchicalClassifier::new(self.thresholds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1_requests, labeled_request as req};
    use filterlist::RequestLabel;

    fn trained(requests: &[LabeledRequest]) -> Sifter {
        let mut sifter = Sifter::builder().build();
        sifter.observe_all(requests);
        sifter.commit();
        sifter
    }

    #[test]
    fn verdicts_walk_the_figure1_hierarchy() {
        let sifter = trained(&figure1_requests());
        let verdict = |d, h, s, m| sifter.verdict(&VerdictRequest::new(d, h, s, m));

        // Decided at domain level.
        assert_eq!(
            verdict("ads.com", "px.ads.com", "https://pub.com/a.js", "t"),
            Verdict::Decided {
                classification: Classification::Tracking,
                granularity: Granularity::Domain
            }
        );
        // Mixed domain, decided at hostname level.
        assert_eq!(
            verdict(
                "google.com",
                "ad.google.com",
                "https://pub.com/sdk.js",
                "send"
            ),
            Verdict::Decided {
                classification: Classification::Tracking,
                granularity: Granularity::Hostname
            }
        );
        // Mixed hostname, decided at script level.
        assert_eq!(
            verdict(
                "google.com",
                "cdn.google.com",
                "https://pub.com/stack.js",
                "load"
            ),
            Verdict::Decided {
                classification: Classification::Functional,
                granularity: Granularity::Script
            }
        );
        // Mixed script, decided at method level; m2 stays mixed (residue).
        assert_eq!(
            verdict(
                "google.com",
                "cdn.google.com",
                "https://pub.com/clone.js",
                "m1"
            ),
            Verdict::Decided {
                classification: Classification::Tracking,
                granularity: Granularity::Method
            }
        );
        assert_eq!(
            verdict(
                "google.com",
                "cdn.google.com",
                "https://pub.com/clone.js",
                "m2"
            ),
            Verdict::Decided {
                classification: Classification::Mixed,
                granularity: Granularity::Method
            }
        );
        assert!(verdict("ads.com", "px.ads.com", "https://pub.com/a.js", "t").should_block());
    }

    #[test]
    fn unknown_resources_fall_back_to_the_deepest_observed_level() {
        let sifter = trained(&figure1_requests());
        // Never-seen domain.
        assert_eq!(
            sifter.verdict(&VerdictRequest::new("zzz.com", "a.zzz.com", "s", "m")),
            Verdict::Unknown
        );
        // Known-mixed domain, never-seen hostname: mixed at domain level.
        assert_eq!(
            sifter.verdict(&VerdictRequest::new(
                "google.com",
                "new.google.com",
                "s",
                "m"
            )),
            Verdict::Decided {
                classification: Classification::Mixed,
                granularity: Granularity::Domain
            }
        );
        // Known-mixed hostname, never-seen script: mixed at hostname level.
        assert_eq!(
            sifter.verdict(&VerdictRequest::new(
                "google.com",
                "cdn.google.com",
                "https://pub.com/new.js",
                "m"
            )),
            Verdict::Decided {
                classification: Classification::Mixed,
                granularity: Granularity::Hostname
            }
        );
        // Known-mixed script, never-seen method: mixed at script level.
        assert_eq!(
            sifter.verdict(&VerdictRequest::new(
                "google.com",
                "cdn.google.com",
                "https://pub.com/clone.js",
                "m99"
            )),
            Verdict::Decided {
                classification: Classification::Mixed,
                granularity: Granularity::Script
            }
        );
    }

    #[test]
    fn hierarchy_export_equals_from_scratch_classification() {
        let requests = figure1_requests();
        let sifter = trained(&requests);
        let scratch = sifter.classifier().classify(&requests);
        assert_eq!(sifter.hierarchy(), scratch);
        assert_eq!(
            sifter.unattributed_requests(),
            scratch.unattributed_requests
        );
    }

    #[test]
    fn observations_become_visible_only_at_commit() {
        let requests = figure1_requests();
        let mut sifter = Sifter::builder().build();
        sifter.observe_all(&requests);
        // Nothing committed yet: everything is unknown.
        assert_eq!(
            sifter.verdict(&VerdictRequest::from_labeled(&requests[0])),
            Verdict::Unknown
        );
        assert_eq!(sifter.pending(), requests.len() as u64);
        let stats = sifter.commit();
        assert_eq!(stats.observations, requests.len() as u64);
        assert!(stats.reclassified() > 0);
        assert_eq!(sifter.pending(), 0);
        assert_ne!(
            sifter.verdict(&VerdictRequest::from_labeled(&requests[0])),
            Verdict::Unknown
        );
    }

    #[test]
    fn incremental_flips_propagate_downward() {
        // Start with hub.com mixed (5 tracking / 5 functional across two
        // hostnames), then flood it with tracking until the whole domain
        // crosses the threshold: its hostname/script/method members must
        // drop out of the finer levels.
        let mut sifter = Sifter::builder().thresholds(Thresholds::new(1.0)).build();
        let mut all = Vec::new();
        for _ in 0..5 {
            all.push(req(
                "hub.com",
                "t.hub.com",
                "https://p.com/a.js",
                "send",
                true,
            ));
            all.push(req(
                "hub.com",
                "f.hub.com",
                "https://p.com/b.js",
                "load",
                false,
            ));
        }
        sifter.observe_all(&all);
        sifter.commit();
        assert_eq!(sifter.hierarchy(), sifter.classifier().classify(&all));
        assert!(sifter.committed_resources(Granularity::Hostname) > 0);

        for _ in 0..100 {
            let r = req("hub.com", "t.hub.com", "https://p.com/a.js", "send", true);
            sifter.observe(&r);
            all.push(r);
        }
        let stats = sifter.commit();
        assert!(
            stats.hostnames >= 2,
            "domain flip must dirty both hostnames"
        );
        assert_eq!(sifter.hierarchy(), sifter.classifier().classify(&all));
        // hub.com is now tracking: no hostname-level members remain.
        assert_eq!(sifter.committed_resources(Granularity::Hostname), 0);
        assert_eq!(
            sifter.verdict(&VerdictRequest::new(
                "hub.com",
                "f.hub.com",
                "https://p.com/b.js",
                "load"
            )),
            Verdict::Decided {
                classification: Classification::Tracking,
                granularity: Granularity::Domain
            }
        );
    }

    #[test]
    fn commit_work_is_proportional_to_the_delta() {
        let requests = figure1_requests();
        let mut sifter = trained(&requests);
        // One more observation on an already-classified pure domain.
        sifter.observe(&req(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "t",
            true,
        ));
        let stats = sifter.commit();
        assert_eq!(stats.observations, 1);
        // Only the four directly-touched resources get reclassified; no
        // flips, so nothing propagates.
        assert_eq!(stats.domains, 1);
        assert_eq!(stats.hostnames, 1);
        assert_eq!(stats.scripts, 1);
        assert_eq!(stats.methods, 1);
    }

    #[test]
    fn verdict_batch_matches_single_verdicts() {
        let requests = figure1_requests();
        let sifter = trained(&requests);
        let queries: Vec<VerdictRequest<'_>> =
            requests.iter().map(VerdictRequest::from_labeled).collect();
        let batch = sifter.verdict_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (query, verdict) in queries.iter().zip(&batch) {
            assert_eq!(sifter.verdict(query), *verdict);
        }
        let mut buffer = Vec::new();
        sifter.verdict_batch_into(&queries, &mut buffer);
        assert_eq!(buffer, batch);
    }

    #[test]
    fn observe_url_labels_through_the_configured_engine() {
        let mut sifter = Sifter::builder()
            .filter_lists(&[(ListKind::EasyList, "||tracker.io^$third-party\n")])
            .build();
        assert!(sifter.has_engine());
        let outcome = sifter.observe_url(
            "https://px.tracker.io/beacon?x=1",
            "shop.com",
            ResourceType::Script,
            "https://shop.com/app.js",
            "send",
        );
        assert_eq!(outcome, ObserveOutcome::Observed(RequestLabel::Tracking));
        assert_eq!(outcome.label(), Some(RequestLabel::Tracking));
        assert!(outcome.was_observed());
        assert_eq!(sifter.observed(), 1);
        sifter.commit();
        assert_eq!(
            sifter.verdict(&VerdictRequest::new(
                "tracker.io",
                "px.tracker.io",
                "https://shop.com/app.js",
                "send"
            )),
            Verdict::Decided {
                classification: Classification::Tracking,
                granularity: Granularity::Domain
            }
        );
        // Unparseable URLs are excluded, exactly like the batch labeler —
        // and reported as such, not conflated with a missing engine.
        assert_eq!(
            sifter.observe_url("notaurl", "shop.com", ResourceType::Script, "s", "m"),
            ObserveOutcome::InvalidUrl
        );
        assert_eq!(sifter.observed(), 1);
        let stats = sifter.ingest_stats();
        assert_eq!(stats.observed, 1);
        assert_eq!(stats.invalid_urls, 1);
        assert_eq!(stats.no_engine, 0);
    }

    #[test]
    fn observe_url_without_an_engine_reports_the_configuration_gap() {
        let mut sifter = Sifter::builder().build();
        assert!(!sifter.has_engine());
        let outcome = sifter.observe_url(
            "https://px.tracker.io/beacon",
            "shop.com",
            ResourceType::Script,
            "s",
            "m",
        );
        assert_eq!(outcome, ObserveOutcome::NoEngine);
        assert_eq!(outcome.label(), None);
        assert!(!outcome.was_observed());
        assert_eq!(sifter.observed(), 0);
        assert_eq!(sifter.ingest_stats().no_engine, 1);
        assert_eq!(sifter.ingest_stats().invalid_urls, 0);
    }

    #[test]
    fn conflicting_domains_keep_first_seen_ownership_in_all_builds() {
        // The same hostname observed under two registrable domains must not
        // panic (it used to debug_assert): the first-seen domain keeps the
        // hostname, every observation still counts, and the conflict is
        // surfaced through a counter.
        let mut sifter = Sifter::builder().build();
        sifter.observe_parts("a.com", "cdn.shared.net", "https://p.com/s.js", "m", true);
        sifter.observe_parts("b.com", "cdn.shared.net", "https://p.com/s.js", "m", true);
        sifter.observe_parts("a.com", "cdn.shared.net", "https://p.com/s.js", "m", false);
        assert_eq!(sifter.conflicting_observations(), 1);
        assert_eq!(sifter.observed(), 3);
        sifter.commit();
        // All three observations are credited to the first-seen domain;
        // the conflicting domain never becomes a committed resource.
        let hierarchy = sifter.hierarchy();
        let domains = hierarchy.level(Granularity::Domain);
        assert_eq!(domains.resources.len(), 1);
        assert_eq!(domains.resources[0].key, "a.com");
        assert_eq!(domains.resources[0].counts.total(), 3);
        assert_eq!(
            sifter.verdict(&VerdictRequest::new("b.com", "cdn.shared.net", "s", "m")),
            Verdict::Unknown
        );
        assert_eq!(sifter.ingest_stats().conflicting_domains, 1);
    }

    #[test]
    fn incremental_surrogate_plans_match_a_from_scratch_rebuild() {
        // The plan cache is maintained incrementally (only delta-touched
        // scripts refresh), so pin it against the from-scratch definition
        // after every commit of a schedule that flips a script into and
        // out of mixedness.
        let assert_plans_fresh = |sifter: &Sifter| {
            let mut scratch: Vec<(ResourceKey, SurrogateScript)> = sifter
                .script_entries
                .iter()
                .filter(|(_, entry)| entry.classification == Classification::Mixed)
                .filter_map(|(&s, _)| Some((s, sifter.plan_for_script(s)?)))
                .collect();
            let mut cached: Vec<(ResourceKey, SurrogateScript)> = sifter
                .surrogate_plans
                .iter()
                .map(|(&s, plan)| (s, SurrogateScript::clone(plan)))
                .collect();
            scratch.sort_by_key(|(s, _)| s.index());
            cached.sort_by_key(|(s, _)| s.index());
            assert_eq!(cached, scratch);
        };

        let mut sifter = Sifter::builder().thresholds(Thresholds::new(1.0)).build();
        // Mixed domain -> mixed hostname -> mixed script: plan appears.
        for flag in [true, false, true, false, true, false] {
            sifter.observe_parts("hub.com", "w.hub.com", "https://p.com/m.js", "go", flag);
        }
        sifter.commit();
        assert_plans_fresh(&sifter);
        assert_eq!(sifter.surrogate_plans.len(), 1);

        // A new method on the same script without dirtying the script via
        // classification change: the plan must still refresh.
        sifter.observe_parts("hub.com", "w.hub.com", "https://p.com/m.js", "extra", true);
        sifter.commit();
        assert_plans_fresh(&sifter);

        // Flood the script with tracking until it leaves mixedness: the
        // plan must drop out.
        for _ in 0..60 {
            sifter.observe_parts("hub.com", "w.hub.com", "https://p.com/m.js", "go", true);
        }
        sifter.commit();
        assert_plans_fresh(&sifter);

        // And an unrelated commit leaves the (empty) cache consistent.
        sifter.observe_parts("a.com", "h.a.com", "s.js", "m", true);
        sifter.commit();
        assert_plans_fresh(&sifter);
    }

    #[test]
    fn restore_rejects_hostnames_without_cells() {
        // A crafted snapshot whose second hostname has no count cells must
        // be rejected with a typed error: such a hostname is
        // unrepresentable through `observe`, and if it slipped through, a
        // mixedness flip of the shared domain would later ask the
        // classifier for a verdict on empty counts.
        let text = concat!(
            r#"{"format":"trackersift.sifter","version":1,"threshold":2,"observed":2,"#,
            r#""keys":["d.com","h1.d.com","h2.d.com","s.js","m","s.js :: m"],"#,
            r#""hostnames":[[1,0],[2,0]],"methods":[[5,3,4]],"cells":[[5,1,1,1]]}"#
        );
        let snapshot = SifterSnapshot::parse(text).unwrap();
        assert!(matches!(
            Sifter::builder().restore(&snapshot),
            Err(SnapshotError::Corrupt(message)) if message.contains("no count cells")
        ));
    }

    #[test]
    fn verdict_display_is_human_readable() {
        let sifter = trained(&figure1_requests());
        let verdict = sifter.verdict(&VerdictRequest::new(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "t",
        ));
        assert_eq!(verdict.to_string(), "tracking (decided at Domain level)");
        assert_eq!(Verdict::Unknown.to_string(), "unknown");
    }
}
