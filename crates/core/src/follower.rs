//! Replica followers: rebuild a primary's [`VerdictTable`] from delta
//! snapshots instead of local commits.
//!
//! The revision ring ([`crate::revision`]) records what every commit
//! changed; this module turns that record into a **state-transfer
//! protocol**:
//!
//! * [`DeltaSnapshot`] — the wire unit. A *delta* carries the net class
//!   transitions between two committed versions plus the current surrogate
//!   plans of every script those commits touched; a *full* snapshot carries
//!   the entire committed serving state in the same shape (every member as
//!   an addition, every plan). Assembled by [`VerdictTable::delta_since`] /
//!   [`VerdictTable::full_snapshot_delta`] from the table a reader already
//!   pins — no writer round-trip.
//! * [`FollowerState`] — a replica's mutable mirror: apply a full snapshot
//!   to bootstrap, then apply deltas in version order; [`FollowerState::table`]
//!   publishes the result as a [`VerdictTable`] at the **primary's exact
//!   committed version** (the consistency guarantee a replica offers:
//!   never a torn or interpolated state).
//!
//! The follower re-interns every key string locally, so its dense id space
//! is its own (clients of a replica fetch keys from that replica); the
//! filter engine and URL rewriter are re-attached locally, not shipped.
//! Surrogate frames are re-encoded from the shipped plans — frames are a
//! pure function of the plan, so replica wire bytes match the primary's.

use crate::frames::SurrogateFrames;
use crate::hierarchy::Granularity;
use crate::intern::{FrozenKeys, KeyInterner, ResourceKey};
use crate::revision::{diff_revisions, plans_touched_in_span, RevisionChange, RevisionRangeError};
use crate::surrogate::SurrogateScript;
use crate::table::{ClassTable, SurrogateFrameMap, SurrogatePlans, VerdictTable};
use filterlist::FilterEngine;
use rewriter::UrlRewriter;
use std::fmt;
use std::sync::Arc;

/// One state-transfer unit of the replication protocol: either the net
/// drift between two committed primary versions (`since = Some(v)`), or a
/// complete serving state for bootstrap (`since = None`).
///
/// Appliable with [`FollowerState::apply`]; produced by
/// [`VerdictTable::delta_since`] and [`VerdictTable::full_snapshot_delta`];
/// wire-encoded (JSON and binary) by [`crate::frames`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaSnapshot {
    /// The baseline version this delta applies on top of (exclusive), or
    /// `None` for a full snapshot (applies on empty state).
    pub since: Option<u64>,
    /// The committed primary version a follower holds after applying.
    pub to: u64,
    /// Observations folded into the primary's state at `to`.
    pub committed: u64,
    /// Requests still attributed to mixed methods at `to`.
    pub residue: u64,
    /// Per-key class transitions, canonical order. For a full snapshot:
    /// every committed member, as an addition.
    pub changes: Vec<RevisionChange>,
    /// Current surrogate plans of every script the span touched, sorted by
    /// script key; `None` means the script no longer has a plan. For a
    /// full snapshot: every plan the primary serves.
    pub plans: Vec<(Arc<str>, Option<Arc<SurrogateScript>>)>,
}

impl DeltaSnapshot {
    /// `true` for a bootstrap (full-state) snapshot.
    pub fn is_full(&self) -> bool {
        self.since.is_none()
    }
}

impl VerdictTable {
    /// Assemble the delta from committed version `since` (exclusive) to
    /// this table's version, from the revision ring this table carries.
    ///
    /// Errors exactly as [`diff_revisions`]: an
    /// [`Inverted`](RevisionRangeError::Inverted) range is a caller bug
    /// (HTTP 400); an [`Unknown`](RevisionRangeError::Unknown) range means
    /// `since` aged out of the bounded ring — the server answers that with
    /// `410 Gone` plus [`VerdictTable::full_snapshot_delta`], and the
    /// follower re-bootstraps.
    pub fn delta_since(&self, since: u64) -> Result<DeltaSnapshot, RevisionRangeError> {
        let diff = diff_revisions(self.revisions(), since, self.version())?;
        let plans = plans_touched_in_span(self.revisions(), since, self.version())
            .into_iter()
            .map(|script| {
                let plan = self.surrogate_plan(&script);
                (script, plan)
            })
            .collect();
        Ok(DeltaSnapshot {
            since: Some(since),
            to: self.version(),
            committed: self.committed(),
            residue: self.unattributed(),
            changes: diff.changes,
            plans,
        })
    }

    /// Export this table's complete committed serving state as a bootstrap
    /// [`DeltaSnapshot`]: every member as an addition, every surrogate
    /// plan. Applying it on an empty [`FollowerState`] reproduces this
    /// table's every decision.
    pub fn full_snapshot_delta(&self) -> DeltaSnapshot {
        let changes = self
            .classes()
            .changes_since(&ClassTable::default(), self.keys());
        let mut plans: Vec<(Arc<str>, Option<Arc<SurrogateScript>>)> = self
            .surrogate_plans()
            .iter()
            .filter_map(|(key, plan)| {
                let script = self.keys().shared_string_for_id(key.index() as u32)?;
                Some((script, Some(Arc::clone(plan))))
            })
            .collect();
        plans.sort_by(|a, b| a.0.cmp(&b.0));
        DeltaSnapshot {
            since: None,
            to: self.version(),
            committed: self.committed(),
            residue: self.unattributed(),
            changes,
            plans,
        }
    }
}

/// Why a [`DeltaSnapshot`] could not be applied to a [`FollowerState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// A delta arrived whose baseline is not the follower's current
    /// version — applying it would interpolate a state the primary never
    /// committed. Re-fetch from the actual version (or re-bootstrap).
    BaselineMismatch {
        /// The follower's current version.
        held: u64,
        /// The delta's baseline.
        baseline: u64,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::BaselineMismatch { held, baseline } => write!(
                f,
                "delta baseline {baseline} does not match the held version {held}"
            ),
        }
    }
}

impl std::error::Error for ApplyError {}

/// A replica's mutable mirror of a primary's committed serving state.
///
/// Bootstrap from a full [`DeltaSnapshot`], apply deltas in version order,
/// and publish [`FollowerState::table`] after each apply (e.g. through a
/// [`TablePublisher`](crate::concurrent::TablePublisher)) — the published
/// table always equals **some exact committed primary version**, never a
/// mix. The filter engine and rewriter are attached locally at
/// construction (they are configuration, not replicated state).
#[derive(Debug, Default)]
pub struct FollowerState {
    interner: KeyInterner,
    classes: ClassTable,
    plans: SurrogatePlans,
    frames: SurrogateFrameMap,
    version: u64,
    committed: u64,
    residue: u64,
    keys_epoch: u64,
    bootstraps: u64,
    engine: Option<Arc<FilterEngine>>,
    rewriter: Option<Arc<UrlRewriter>>,
    frozen: Option<Arc<FrozenKeys>>,
}

impl FollowerState {
    /// An empty follower with its local enforcement configuration.
    pub fn new(engine: Option<Arc<FilterEngine>>, rewriter: Option<Arc<UrlRewriter>>) -> Self {
        FollowerState {
            engine,
            rewriter,
            ..FollowerState::default()
        }
    }

    /// The committed primary version this follower currently mirrors.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How many times this follower bootstrapped from a full snapshot.
    pub fn bootstraps(&self) -> u64 {
        self.bootstraps
    }

    /// Apply a snapshot: a full one (re)bootstraps from scratch, a delta
    /// extends the held version. Deltas must chain exactly —
    /// `delta.since == Some(held version)` — anything else is a typed
    /// [`ApplyError`] and leaves the state untouched. (A fresh follower
    /// holds version 0, which *is* the primary's empty pre-commit state,
    /// so a delta from 0 chains without a prior bootstrap.)
    pub fn apply(&mut self, snapshot: &DeltaSnapshot) -> Result<(), ApplyError> {
        match snapshot.since {
            None => {
                // A bootstrap rebuilds the interner; if any ids were ever
                // handed out, they are reassigned now, so bump the local
                // epoch to invalidate cached client ids.
                if !self.interner.is_empty() || self.version > 0 {
                    self.keys_epoch += 1;
                }
                self.bootstraps += 1;
                self.interner = KeyInterner::new();
                self.classes = ClassTable::default();
                self.plans = SurrogatePlans::default();
                self.frames = SurrogateFrameMap::default();
                self.frozen = None;
            }
            Some(baseline) => {
                if baseline != self.version {
                    return Err(ApplyError::BaselineMismatch {
                        held: self.version,
                        baseline,
                    });
                }
            }
        }
        for change in &snapshot.changes {
            let key = self.intern_change_key(change.granularity, &change.key);
            self.classes
                .set(change.granularity, key, change.kind.new_class());
        }
        for (script, plan) in &snapshot.plans {
            let key = self.interner.intern(script);
            match plan {
                Some(plan) => {
                    self.frames.insert(key, SurrogateFrames::new(plan));
                    self.plans.insert(key, Arc::clone(plan));
                }
                None => {
                    self.plans.remove(&key);
                    self.frames.remove(&key);
                }
            }
        }
        self.version = snapshot.to;
        self.committed = snapshot.committed;
        self.residue = snapshot.residue;
        Ok(())
    }

    /// Intern one change's key. Method-granularity keys arrive as composed
    /// `script :: method` labels; they are split and interned as a pair so
    /// the verdict walk's `(script, name)` → method lookup resolves (method
    /// names never contain the separator — the label composer guarantees
    /// the last separator is the real one).
    fn intern_change_key(&mut self, granularity: Granularity, label: &str) -> ResourceKey {
        if granularity == Granularity::Method {
            if let Some((script, name)) = label.rsplit_once(ResourceKey::METHOD_SEPARATOR) {
                return self.interner.intern_method(script, name);
            }
        }
        self.interner.intern(label)
    }

    /// Publish the mirrored state as an immutable [`VerdictTable`] at the
    /// primary's exact committed version. The frozen key view is cached
    /// across calls and re-cloned only when a delta interned new keys.
    pub fn table(&mut self) -> VerdictTable {
        let stale = match &self.frozen {
            Some(frozen) => {
                frozen.len() != self.interner.len()
                    || frozen.pair_count() != self.interner.pair_count()
            }
            None => true,
        };
        if stale {
            self.frozen = Some(Arc::new(self.interner.freeze()));
        }
        let keys = Arc::clone(self.frozen.as_ref().expect("frozen view refreshed above"));
        let mut table = VerdictTable::new(
            keys,
            self.classes.clone(),
            self.version,
            self.committed,
            self.residue,
            self.engine.clone(),
            self.rewriter.clone(),
            Arc::new(self.plans.clone()),
            Arc::new(self.frames.clone()),
        );
        table.set_keys_epoch(self.keys_epoch);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::DecisionRequest;
    use crate::intern::KeyResolver;
    use crate::service::Sifter;

    fn mixed_sifter(rounds: u64) -> Sifter {
        let mut sifter = Sifter::builder().build();
        for n in 0..rounds {
            sifter.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "track",
                true,
            );
            sifter.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "render",
                n % 2 == 0,
            );
            sifter.observe_parts(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send",
                true,
            );
        }
        sifter.commit();
        sifter
    }

    fn probes() -> Vec<DecisionRequest<'static>> {
        vec![
            DecisionRequest::new("hub.com", "w.hub.com", "https://pub.com/mixed.js", "track"),
            DecisionRequest::new("hub.com", "w.hub.com", "https://pub.com/mixed.js", "render"),
            DecisionRequest::new("hub.com", "w.hub.com", "https://pub.com/mixed.js", "novel"),
            DecisionRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send"),
            DecisionRequest::new("zzz.com", "a.zzz.com", "s.js", "m"),
        ]
    }

    #[test]
    fn full_snapshot_bootstrap_reproduces_every_decision() {
        let mut sifter = mixed_sifter(6);
        let table = sifter.verdict_table();
        let full = table.full_snapshot_delta();
        assert!(full.is_full());
        assert!(!full.changes.is_empty());
        assert!(!full.plans.is_empty(), "the mixed script ships its plan");

        let mut follower = FollowerState::new(None, None);
        follower.apply(&full).expect("bootstrap");
        let replica = follower.table();
        assert_eq!(replica.version(), table.version());
        assert_eq!(replica.committed(), table.committed());
        assert_eq!(replica.unattributed(), table.unattributed());
        for request in probes() {
            assert_eq!(
                replica.decide(&request),
                table.decide(&request),
                "{request:?}"
            );
        }
        // Frames re-encode byte-identically from the shipped plan.
        let key = replica
            .keys()
            .key("https://pub.com/mixed.js")
            .expect("script key");
        let frames = replica.prebuilt().surrogate(key).expect("replica frames");
        assert_eq!(
            frames.binary.as_ref(),
            crate::frames::encode_surrogate_payload(
                table
                    .surrogate_plan("https://pub.com/mixed.js")
                    .expect("plan")
                    .as_ref()
            )
        );
    }

    #[test]
    fn deltas_chain_exactly_and_mismatches_are_typed() {
        let (mut writer, _reader) = Sifter::builder().build_concurrent();
        writer.observe_parts("a.com", "h.a.com", "s.js", "m", true);
        writer.commit();
        let table = writer.reader().pin().table().clone();
        let full = table.full_snapshot_delta();

        let mut follower = FollowerState::new(None, None);
        follower.apply(&full).expect("bootstrap");
        assert_eq!(follower.version(), 1);

        writer.observe_parts("b.com", "h.b.com", "s.js", "m", false);
        writer.commit();
        let next = writer.reader().pin().table().clone();
        let delta = next.delta_since(1).expect("covered span");
        assert_eq!(delta.since, Some(1));
        assert_eq!(delta.to, 2);
        // A stale baseline is rejected without touching state.
        let stale = next.delta_since(0).expect("ring covers 0..2");
        let mut wrong = stale.clone();
        wrong.since = Some(7);
        assert_eq!(
            follower.apply(&wrong),
            Err(ApplyError::BaselineMismatch {
                held: 1,
                baseline: 7
            })
        );
        follower.apply(&delta).expect("chained delta");
        assert_eq!(follower.version(), 2);
        for request in probes() {
            assert_eq!(follower.table().decide(&request), next.decide(&request));
        }
    }

    #[test]
    fn a_delta_from_zero_chains_on_a_fresh_follower() {
        let (mut writer, reader) = Sifter::builder().build_concurrent();
        for n in 0..3u64 {
            writer.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "track",
                true,
            );
            writer.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "render",
                n % 2 == 0,
            );
            writer.commit();
        }
        let pin = reader.pin();
        let table = pin.table();
        let delta = table.delta_since(0).expect("ring covers 0..3");
        let mut follower = FollowerState::new(None, None);
        follower
            .apply(&delta)
            .expect("version 0 is the empty state");
        assert_eq!(follower.version(), table.version());
        assert_eq!(follower.bootstraps(), 0);
        let replica = follower.table();
        for request in probes() {
            assert_eq!(replica.decide(&request), table.decide(&request));
        }
    }

    #[test]
    fn rebootstrap_bumps_the_local_keys_epoch() {
        let mut sifter = mixed_sifter(2);
        let full = sifter.verdict_table().full_snapshot_delta();
        let mut follower = FollowerState::new(None, None);
        follower.apply(&full).expect("first bootstrap");
        let first_epoch = follower.table().keys_epoch();
        follower.apply(&full).expect("re-bootstrap");
        assert_eq!(follower.bootstraps(), 2);
        assert!(follower.table().keys_epoch() > first_epoch);
    }
}
