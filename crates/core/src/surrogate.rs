//! Surrogate script generation (paper §5, "Blocking mixed scripts").
//!
//! Once TrackerSift has classified the methods of a mixed script, a
//! *surrogate* can be generated: a replacement script that keeps the
//! functional methods, removes the tracking methods, and wraps the methods
//! that remain mixed in a *guard* — a predicate that blocks the tracking
//! invocations while allowing the functional ones (the paper sketches
//! deriving the predicate from invariants over the calling context; we
//! derive it from the stack-divergence analysis of Figure 5). Content
//! blockers such as uBlock Origin and Firefox SmartBlock ship hand-written
//! surrogates today; TrackerSift makes generating them automatic.

use crate::callstack::{build_call_graph, CallGraph};
use crate::hierarchy::{Granularity, HierarchyResult};
use crate::intern::ResourceKey;
use crate::label::LabeledRequest;
use crate::ratio::Classification;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What the surrogate does with one method of the original script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MethodAction {
    /// The method is functional: kept verbatim.
    Keep,
    /// The method is tracking: replaced with an inert no-op stub so callers
    /// do not crash (the SmartBlock approach).
    Stub,
    /// The method is mixed: kept but wrapped in a guard predicate that
    /// blocks invocations whose call stack passes through a tracking-only
    /// divergence point.
    Guard {
        /// `script @ method` labels of the divergence points the guard
        /// checks for.
        blocked_callers: Vec<String>,
    },
}

/// The surrogate plan for one mixed script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateScript {
    /// URL of the original mixed script.
    pub script_url: String,
    /// Action per method name.
    pub methods: Vec<(String, MethodAction)>,
    /// Number of tracking requests that the surrogate suppresses.
    pub suppressed_tracking_requests: u64,
    /// Number of functional requests the surrogate preserves.
    pub preserved_functional_requests: u64,
}

/// One method's inputs to the shared surrogate-plan constructor: its name,
/// classification, request counts, and (for mixed methods) the tracking-only
/// divergence points a guard can check for. Both
/// [`generate_surrogates`] (batch, with call stacks) and the serving-side
/// [`decision`](crate::decision) layer (committed counts only, no stacks)
/// reduce their data to this shape so the two paths can never disagree on
/// what a surrogate looks like.
#[derive(Debug, Clone)]
pub(crate) struct MethodPlan {
    /// Method name.
    pub name: String,
    /// The method-level classification driving the action.
    pub classification: Classification,
    /// Tracking requests attributed to the method.
    pub tracking: u64,
    /// Functional requests attributed to the method.
    pub functional: u64,
    /// `script @ method` labels of tracking-only divergence points (empty
    /// when no call-stack evidence is available).
    pub blocked_callers: Vec<String>,
}

impl SurrogateScript {
    /// The one constructor both the batch and the serving path use: map
    /// each method's classification to its action and account for what the
    /// surrogate suppresses and preserves. `methods` must already be sorted
    /// by name (the canonical order of the rendered payload).
    pub(crate) fn from_method_plans(script_url: String, methods: Vec<MethodPlan>) -> Self {
        let mut out = Vec::with_capacity(methods.len());
        let mut suppressed = 0u64;
        let mut preserved = 0u64;
        for plan in methods {
            let action = match plan.classification {
                Classification::Functional => {
                    preserved += plan.functional;
                    MethodAction::Keep
                }
                Classification::Tracking => {
                    suppressed += plan.tracking;
                    MethodAction::Stub
                }
                Classification::Mixed => {
                    // A guard only suppresses what it can distinguish.
                    if !plan.blocked_callers.is_empty() {
                        suppressed += plan.tracking;
                    }
                    preserved += plan.functional;
                    MethodAction::Guard {
                        blocked_callers: plan.blocked_callers,
                    }
                }
            };
            out.push((plan.name, action));
        }
        SurrogateScript {
            script_url,
            methods: out,
            suppressed_tracking_requests: suppressed,
            preserved_functional_requests: preserved,
        }
    }

    /// Methods kept unchanged.
    pub fn kept(&self) -> usize {
        self.methods
            .iter()
            .filter(|(_, a)| matches!(a, MethodAction::Keep))
            .count()
    }

    /// Methods stubbed out.
    pub fn stubbed(&self) -> usize {
        self.methods
            .iter()
            .filter(|(_, a)| matches!(a, MethodAction::Stub))
            .count()
    }

    /// Methods wrapped in guards.
    pub fn guarded(&self) -> usize {
        self.methods
            .iter()
            .filter(|(_, a)| matches!(a, MethodAction::Guard { .. }))
            .count()
    }

    /// Render the surrogate as a human-readable pseudo-JavaScript sketch —
    /// what a blocker would ship as the shim payload.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("// Surrogate for {}\n", self.script_url));
        out.push_str("// Generated by TrackerSift: functional methods kept, tracking methods\n");
        out.push_str("// stubbed, mixed methods guarded by call-stack predicates.\n");
        for (name, action) in &self.methods {
            match action {
                MethodAction::Keep => {
                    out.push_str(&format!(
                        "export {{ {name} }} from 'original'; // functional\n"
                    ));
                }
                MethodAction::Stub => {
                    out.push_str(&format!(
                        "export function {name}() {{ /* tracking removed */ }}\n"
                    ));
                }
                MethodAction::Guard { blocked_callers } => {
                    out.push_str(&format!("export function {name}(...args) {{\n"));
                    out.push_str("  const stack = captureStack();\n");
                    for caller in blocked_callers {
                        out.push_str(&format!(
                            "  if (stack.includes('{caller}')) return; // tracking path\n"
                        ));
                    }
                    out.push_str(&format!("  return original.{name}(...args);\n}}\n"));
                }
            }
        }
        out
    }
}

/// Generate surrogates for every mixed script in a hierarchy result.
///
/// `requests` must be the same labeled requests the hierarchy was computed
/// from; they provide the per-method request counts and the stacks for the
/// guard predicates.
pub fn generate_surrogates(
    result: &HierarchyResult,
    requests: &[LabeledRequest],
) -> Vec<SurrogateScript> {
    let script_level = result.level(Granularity::Script);
    let method_level = result.level(Granularity::Method);

    // Classification of each (script, method) key at the method level.
    let method_class: HashMap<&str, Classification> = method_level
        .resources
        .iter()
        .map(|r| (r.key.as_str(), r.classification))
        .collect();

    let mut surrogates = Vec::new();
    for script in script_level
        .resources
        .iter()
        .filter(|r| r.classification == Classification::Mixed)
    {
        // All requests initiated by this script (any target), grouped by method.
        let mut by_method: HashMap<&str, Vec<&LabeledRequest>> = HashMap::new();
        for request in requests.iter().filter(|r| r.initiator_script == script.key) {
            by_method
                .entry(request.initiator_method.as_str())
                .or_default()
                .push(request);
        }

        let mut plans = Vec::new();
        let mut method_names: Vec<&&str> = by_method.keys().collect();
        method_names.sort();
        for method in method_names {
            let reqs = &by_method[*method];
            let key = ResourceKey::method_label(&script.key, method);
            let class = method_class.get(key.as_str()).copied().unwrap_or_else(|| {
                // The method never reached the method level (its requests
                // were attributed earlier); classify it directly from its
                // own requests.
                let mut counts = crate::ratio::Counts::default();
                for r in reqs.iter() {
                    counts.record(r.is_tracking());
                }
                result
                    .thresholds
                    .classify(&counts)
                    .unwrap_or(Classification::Mixed)
            });
            let tracking = reqs.iter().filter(|r| r.is_tracking()).count() as u64;
            let functional = reqs.len() as u64 - tracking;
            let blocked_callers = if class == Classification::Mixed {
                let graph: CallGraph = build_call_graph(&script.key, method, reqs.iter().copied());
                graph
                    .divergence_points()
                    .into_iter()
                    .map(|(n, _)| n.label())
                    .collect()
            } else {
                Vec::new()
            };
            plans.push(MethodPlan {
                name: (*method).to_string(),
                classification: class,
                tracking,
                functional,
                blocked_callers,
            });
        }

        surrogates.push(SurrogateScript::from_method_plans(
            script.key.clone(),
            plans,
        ));
    }
    surrogates.sort_by(|a, b| a.script_url.cmp(&b.script_url));
    surrogates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchicalClassifier;
    use crate::label::{LabeledFrame, LabeledRequest};
    use filterlist::{RequestLabel, ResourceType};

    fn req(
        hostname: &str,
        script: &str,
        method: &str,
        tracking: bool,
        extra_frame: Option<(&str, &str)>,
    ) -> LabeledRequest {
        let mut stack = vec![LabeledFrame {
            script_url: script.into(),
            method: method.into(),
        }];
        if let Some((s, m)) = extra_frame {
            stack.push(LabeledFrame {
                script_url: s.into(),
                method: m.into(),
            });
        }
        LabeledRequest {
            request_id: 0,
            top_level_url: "https://www.pub.com/".into(),
            site_domain: "pub.com".into(),
            url: format!("https://{hostname}/x"),
            domain: "hub.com".into(),
            hostname: hostname.into(),
            resource_type: ResourceType::Xhr,
            initiator_script: script.into(),
            initiator_method: method.into(),
            stack,
            async_boundary: None,
            label: if tracking {
                RequestLabel::Tracking
            } else {
                RequestLabel::Functional
            },
        }
    }

    /// One mixed script `bundle.js` with a tracking method, a functional
    /// method, and a mixed dispatcher whose tracking calls always come via a
    /// `pixel.js firePixel` caller.
    fn requests() -> Vec<LabeledRequest> {
        let host = "www.hub.com";
        let script = "https://www.pub.com/bundle.js";
        let mut v = Vec::new();
        for _ in 0..6 {
            v.push(req(host, script, "trackEvent", true, None));
            v.push(req(host, script, "render", false, None));
        }
        for _ in 0..3 {
            v.push(req(
                host,
                script,
                "xhr",
                true,
                Some(("https://www.pub.com/pixel.js", "firePixel")),
            ));
            v.push(req(
                host,
                script,
                "xhr",
                false,
                Some(("https://www.pub.com/app.js", "fetchData")),
            ));
        }
        v
    }

    #[test]
    fn surrogate_keeps_stubs_and_guards_as_expected() {
        let requests = requests();
        let result = HierarchicalClassifier::default().classify(&requests);
        let surrogates = generate_surrogates(&result, &requests);
        assert_eq!(surrogates.len(), 1);
        let s = &surrogates[0];
        assert_eq!(s.kept(), 1, "{:?}", s.methods);
        assert_eq!(s.stubbed(), 1, "{:?}", s.methods);
        assert_eq!(s.guarded(), 1, "{:?}", s.methods);
        // The guard blocks the pixel.js caller.
        let guard = s
            .methods
            .iter()
            .find_map(|(n, a)| match a {
                MethodAction::Guard { blocked_callers } if n == "xhr" => {
                    Some(blocked_callers.clone())
                }
                _ => None,
            })
            .unwrap();
        assert!(guard.iter().any(|c| c.contains("pixel.js")));
        assert!(s.suppressed_tracking_requests >= 9);
        assert!(s.preserved_functional_requests >= 9);
    }

    #[test]
    fn render_mentions_every_method() {
        let requests = requests();
        let result = HierarchicalClassifier::default().classify(&requests);
        let surrogates = generate_surrogates(&result, &requests);
        let text = surrogates[0].render();
        for (name, _) in &surrogates[0].methods {
            assert!(text.contains(name), "render misses {name}");
        }
        assert!(text.contains("tracking removed"));
    }

    #[test]
    fn purely_functional_scripts_get_no_surrogate() {
        let host = "www.hub.com";
        let reqs: Vec<LabeledRequest> = (0..10)
            .map(|_| req(host, "https://www.pub.com/app.js", "fetch", false, None))
            .collect();
        let result = HierarchicalClassifier::default().classify(&reqs);
        assert!(generate_surrogates(&result, &reqs).is_empty());
    }
}
