//! The enforcement layer: one blessed entry point turning a request into
//! the action a blocker should take.
//!
//! [`Verdict::should_block`](crate::service::Verdict::should_block) is too
//! blunt for deployment: it collapses TrackerSift's whole point — *mixed*
//! resources deserve finer treatment than block-or-allow — into a boolean.
//! A real blocker composes three sources of truth per request:
//!
//! 1. the **hierarchy verdict** (coarsest-to-finest walk over the trained
//!    state, see [`crate::service`]),
//! 2. a **surrogate plan** when the request is settled at a *mixed script*
//!    (keep the functional methods, stub the tracking ones, guard the
//!    mixed ones — paper §5, see [`crate::surrogate`]),
//! 3. the **filter-list match** as the backstop for requests the hierarchy
//!    cannot settle (unknown domains, still-mixed coarse resources).
//!
//! Callers used to stitch those together by hand. [`Decision`] is that
//! composition, computed from a single [`DecisionRequest`] by
//! [`Sifter::decide`](crate::service::Sifter::decide),
//! [`SifterReader::decide`](crate::concurrent::SifterReader::decide), and
//! [`VerdictTable::decide`](crate::table::VerdictTable::decide) — all three
//! run the same code path, so in-process and concurrent (and, through
//! `trackersift-server`, over-the-wire) decisions are byte-identical for
//! the same committed state.
//!
//! # The decision policy
//!
//! | hierarchy verdict | decision |
//! |---|---|
//! | tracking (any granularity) | [`Decision::Block`] |
//! | functional (any granularity) | [`Decision::Allow`] |
//! | mixed at script / method level | [`Decision::Surrogate`] with the script's plan, else rewrite, else backstop |
//! | mixed at domain / hostname level | [`Decision::Rewrite`] when the URL carries identifiers, else backstop |
//! | unknown | filter-list backstop |
//!
//! [`Decision::Rewrite`] is the enforcement arm for *hierarchy-mixed*
//! requests whose URL actually carries tracking identifiers (`utm_*`,
//! `gclid`, redirect wrappers): a configured
//! [`UrlRewriter`](rewriter::UrlRewriter) strips them and the blocker loads
//! the cleaned URL instead. Precedence is Allow < Rewrite < Surrogate <
//! Block: a rewrite only fires where block/allow/surrogate cannot settle
//! the request more decisively.
//!
//! The filter-list backstop blocks when the engine labels the request URL
//! tracking, allows when it labels it functional, and yields
//! [`Decision::Observe`] when it cannot run (no engine configured, or the
//! request carried no URL) — the "let it through, keep collecting
//! evidence" answer.

use crate::hierarchy::Granularity;
use crate::intern::{KeyResolver, ResourceKey};
use crate::label::LabeledRequest;
use crate::ratio::Classification;
use crate::service::{Verdict, VerdictRequest};
use crate::surrogate::SurrogateScript;
use crate::table::{verdict_walk, verdict_walk_keyed, ClassTable};
use filterlist::{FilterEngine, RequestLabel, ResourceType};
use rewriter::{RewrittenUrl, UrlRewriter};
use std::fmt;
use std::sync::Arc;

/// One enforcement query: the four attribution keys every verdict needs,
/// plus (optionally) the raw URL context that lets the filter-list
/// backstop run for requests the hierarchy cannot settle.
///
/// ```
/// use trackersift::DecisionRequest;
///
/// let keys_only = DecisionRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send");
/// let with_url = keys_only
///     .with_url("https://px.ads.com/pixel?uid=7", "pub.com", filterlist::ResourceType::Image);
/// assert!(keys_only.url.is_none());
/// assert_eq!(with_url.url, Some("https://px.ads.com/pixel?uid=7"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRequest<'a> {
    /// Registrable domain (eTLD+1) of the request URL.
    pub domain: &'a str,
    /// Full hostname of the request URL.
    pub hostname: &'a str,
    /// URL of the initiating script (innermost stack frame).
    pub script: &'a str,
    /// Method (function) name of the initiating frame.
    pub method: &'a str,
    /// The raw request URL, when the caller has it — enables the
    /// filter-list backstop for hierarchy-unsettled requests.
    pub url: Option<&'a str>,
    /// Hostname of the page issuing the request (party-ness for the filter
    /// match); ignored unless `url` is set.
    pub source_hostname: &'a str,
    /// Resource type of the request; ignored unless `url` is set.
    pub resource_type: ResourceType,
}

impl<'a> DecisionRequest<'a> {
    /// A keys-only query (no filter-list backstop).
    pub fn new(domain: &'a str, hostname: &'a str, script: &'a str, method: &'a str) -> Self {
        DecisionRequest {
            domain,
            hostname,
            script,
            method,
            url: None,
            source_hostname: "",
            resource_type: ResourceType::Other,
        }
    }

    /// Attach the raw URL context that lets the filter-list backstop
    /// decide requests the hierarchy cannot settle.
    pub fn with_url(
        mut self,
        url: &'a str,
        source_hostname: &'a str,
        resource_type: ResourceType,
    ) -> Self {
        self.url = Some(url);
        self.source_hostname = source_hostname;
        self.resource_type = resource_type;
        self
    }

    /// The query for a labeled request's attribution keys, URL included.
    /// The backstop's source hostname is the *page* hostname (host of
    /// `top_level_url`) — the same source the labeling stage matched
    /// `$domain=` filter options against — falling back to the site's
    /// registrable domain exactly as the labeler does for unparseable
    /// page URLs.
    pub fn from_labeled(request: &'a LabeledRequest) -> Self {
        let source = page_host(&request.top_level_url).unwrap_or(&request.site_domain);
        DecisionRequest::new(
            &request.domain,
            &request.hostname,
            &request.initiator_script,
            &request.initiator_method,
        )
        .with_url(&request.url, source, request.resource_type)
    }

    /// The hierarchy-walk view of this query.
    pub fn verdict_request(&self) -> VerdictRequest<'a> {
        VerdictRequest::new(self.domain, self.hostname, self.script, self.method)
    }
}

/// A decision query whose four attribution keys are already resolved to
/// [`ResourceKey`]s of one specific table — `None` marks a key that table
/// never interned (an unknown resource).
///
/// This is the hot-path form of [`DecisionRequest`]: a binary wire client
/// that completed the key-interning handshake sends numeric ids, and the
/// server answers without hashing a single string. Build one from numeric
/// ids via [`FrozenKeys::key_for_id`](crate::intern::FrozenKeys::key_for_id)
/// or from strings via
/// [`VerdictTable::resolve`](crate::table::VerdictTable::resolve).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyedRequest<'a> {
    /// Resolved registrable-domain key.
    pub domain: Option<ResourceKey>,
    /// Resolved hostname key.
    pub hostname: Option<ResourceKey>,
    /// Resolved initiating-script key.
    pub script: Option<ResourceKey>,
    /// Resolved method-*name* key (the composed `script :: method` key is
    /// looked up from the `(script, name)` pair during the walk).
    pub method: Option<ResourceKey>,
    /// Raw request URL for the filter-list backstop, if carried.
    pub url: Option<&'a str>,
    /// Hostname of the page issuing the request; ignored unless `url` is
    /// set.
    pub source_hostname: &'a str,
    /// Resource type of the request; ignored unless `url` is set.
    pub resource_type: ResourceType,
}

impl<'a> KeyedRequest<'a> {
    /// A keys-only query (no filter-list backstop).
    pub fn new(
        domain: Option<ResourceKey>,
        hostname: Option<ResourceKey>,
        script: Option<ResourceKey>,
        method: Option<ResourceKey>,
    ) -> Self {
        KeyedRequest {
            domain,
            hostname,
            script,
            method,
            url: None,
            source_hostname: "",
            resource_type: ResourceType::Other,
        }
    }

    /// Attach the raw URL context that lets the filter-list backstop
    /// decide requests the hierarchy cannot settle.
    pub fn with_url(
        mut self,
        url: &'a str,
        source_hostname: &'a str,
        resource_type: ResourceType,
    ) -> Self {
        self.url = Some(url);
        self.source_hostname = source_hostname;
        self.resource_type = resource_type;
        self
    }

    /// Resolve a string request against a key resolver. Keys the resolver
    /// does not know become `None` — exactly the misses the verdict walk
    /// treats as "not observed".
    pub fn resolve<K: KeyResolver + ?Sized>(keys: &K, request: &DecisionRequest<'a>) -> Self {
        KeyedRequest {
            domain: keys.key(request.domain),
            hostname: keys.key(request.hostname),
            script: keys.key(request.script),
            method: keys.key(request.method),
            url: request.url,
            source_hostname: request.source_hostname,
            resource_type: request.resource_type,
        }
    }
}

/// What decided a [`Decision::Allow`] / [`Decision::Block`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// The trained hierarchy settled the request at this granularity.
    Hierarchy(Granularity),
    /// The hierarchy could not settle it; the filter-list match decided.
    FilterList,
}

impl fmt::Display for DecisionSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionSource::Hierarchy(granularity) => {
                write!(f, "hierarchy at {granularity} level")
            }
            DecisionSource::FilterList => f.write_str("filter list"),
        }
    }
}

/// The action a blocker should take for one [`DecisionRequest`] — the one
/// blessed enforcement entry point, replacing ad-hoc composition of
/// [`Verdict::should_block`](crate::service::Verdict::should_block), the
/// filter engine, and surrogate generation.
///
/// ```
/// use trackersift::{Decision, DecisionRequest, DecisionSource, Granularity, Sifter};
///
/// let mut sifter = Sifter::builder().build();
/// for _ in 0..5 {
///     sifter.observe_parts("ads.com", "px.ads.com", "https://pub.com/a.js", "send", true);
/// }
/// sifter.commit();
///
/// let request = DecisionRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send");
/// assert_eq!(
///     sifter.decide(&request),
///     Decision::Block(DecisionSource::Hierarchy(Granularity::Domain))
/// );
/// // Nothing known and no URL to fall back on: observe.
/// assert_eq!(
///     sifter.decide(&DecisionRequest::new("zzz.com", "a.zzz.com", "s", "m")),
///     Decision::Observe
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Let the request through.
    Allow(DecisionSource),
    /// Block the request outright.
    Block(DecisionSource),
    /// The request is hierarchy-mixed and its URL carries tracking
    /// identifiers: load this rewritten URL instead of the original. The
    /// payload is shared (`Arc`) so cloning the decision is a pointer
    /// bump.
    ///
    /// ```
    /// use trackersift::{Decision, DecisionRequest, Sifter};
    /// use rewriter::RewriterBuilder;
    /// use filterlist::ResourceType;
    ///
    /// let mut sifter = Sifter::builder()
    ///     .rewriter(RewriterBuilder::new().default_rules().build())
    ///     .build();
    /// // Train hub.com to a *mixed* verdict at domain level.
    /// sifter.observe_parts("hub.com", "w.hub.com", "s.js", "m", true);
    /// sifter.observe_parts("hub.com", "w.hub.com", "s.js", "m", false);
    /// sifter.commit();
    ///
    /// let request = DecisionRequest::new("hub.com", "new.hub.com", "s2.js", "m")
    ///     .with_url("https://new.hub.com/api?id=7&gclid=abc", "pub.com", ResourceType::Xhr);
    /// match sifter.decide(&request) {
    ///     Decision::Rewrite(rewritten) => {
    ///         assert_eq!(rewritten.url(), "https://new.hub.com/api?id=7");
    ///     }
    ///     other => panic!("expected a rewrite, got {other}"),
    /// }
    /// ```
    Rewrite(Arc<RewrittenUrl>),
    /// The request is settled at a mixed script: serve this surrogate in
    /// place of the script (functional methods kept, tracking methods
    /// stubbed, mixed methods guarded). The plan is shared (`Arc`) with
    /// the sifter's cache, so serving a surrogate decision is a pointer
    /// bump, not a deep copy of the plan.
    Surrogate(Arc<SurrogateScript>),
    /// No source of truth could settle the request: let it through and
    /// keep observing.
    Observe,
}

impl Decision {
    /// `true` when the blocker should not deliver the original resource
    /// (blocked outright, replaced by a surrogate, or redirected to a
    /// rewritten URL).
    pub fn is_enforcing(&self) -> bool {
        matches!(
            self,
            Decision::Block(_) | Decision::Surrogate(_) | Decision::Rewrite(_)
        )
    }

    /// The source that settled an allow/block, if this is one.
    pub fn source(&self) -> Option<DecisionSource> {
        match self {
            Decision::Allow(source) | Decision::Block(source) => Some(*source),
            Decision::Surrogate(_) | Decision::Rewrite(_) | Decision::Observe => None,
        }
    }

    /// The surrogate payload, when the decision carries one.
    pub fn surrogate(&self) -> Option<&SurrogateScript> {
        match self {
            Decision::Surrogate(script) => Some(script.as_ref()),
            _ => None,
        }
    }

    /// The rewritten URL, when the decision carries one.
    pub fn rewrite(&self) -> Option<&RewrittenUrl> {
        match self {
            Decision::Rewrite(rewritten) => Some(rewritten.as_ref()),
            _ => None,
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Allow(source) => write!(f, "allow ({source})"),
            Decision::Block(source) => write!(f, "block ({source})"),
            Decision::Surrogate(script) => {
                write!(
                    f,
                    "surrogate for {} ({} kept / {} stubbed / {} guarded)",
                    script.script_url,
                    script.kept(),
                    script.stubbed(),
                    script.guarded()
                )
            }
            Decision::Rewrite(rewritten) => write!(f, "rewrite to {}", rewritten.url()),
            Decision::Observe => f.write_str("observe"),
        }
    }
}

/// The one implementation of the decision policy, shared by every entry
/// point: `Sifter::decide` (live interner, on-demand plan),
/// `VerdictTable::decide` (frozen keys, precomputed plans), and through the
/// latter every `SifterReader`. `plan_for` resolves a mixed script's
/// surrogate plan; returning `None` (script committed mixed but with no
/// member methods) falls back to the filter list.
pub(crate) fn decide<K, P>(
    keys: &K,
    classes: &ClassTable,
    engine: Option<&FilterEngine>,
    rewriter: Option<&UrlRewriter>,
    plan_for: P,
    request: &DecisionRequest<'_>,
) -> Decision
where
    K: KeyResolver + ?Sized,
    P: FnOnce(ResourceKey) -> Option<Arc<SurrogateScript>>,
{
    // The script key must resolve when the walk settles at a mixed script
    // — the walk only reaches script granularity through it — but a plan
    // can still be absent (no member methods), in which case the backstop
    // decides.
    match policy_of(
        verdict_walk(keys, classes, &request.verdict_request()),
        || keys.key(request.script).and_then(plan_for),
        || rewrite_of(rewriter, request.url),
        || {
            filter_backstop(
                engine,
                request.url,
                request.source_hostname,
                request.resource_type,
            )
        },
    ) {
        Resolved::Fixed(decision) => decision,
        Resolved::Rewrite(rewritten) => Decision::Rewrite(rewritten),
        Resolved::Surrogate(plan) => Decision::Surrogate(plan),
    }
}

/// The outcome of the decision policy before the surrogate payload is
/// materialised: either a fixed (non-surrogate) decision, or "serve this
/// script's surrogate" with whatever representation `plan_for` produced —
/// an `Arc<SurrogateScript>` on the decode path, a preformatted response
/// frame on the serving hot path.
pub(crate) enum Resolved<T> {
    /// A decision carrying no payload (never [`Decision::Surrogate`] or
    /// [`Decision::Rewrite`]).
    Fixed(Decision),
    /// Load this rewritten URL instead of the original.
    Rewrite(Arc<RewrittenUrl>),
    /// Serve the surrogate this plan stands for.
    Surrogate(T),
}

/// The one decision policy over a hierarchy verdict, shared by the string
/// path ([`decide`]) and the keyed path ([`decide_keyed_with`]) so they
/// cannot drift: tracking → block, functional → allow, mixed at
/// script/method with a plan → surrogate, hierarchy-mixed with a URL that
/// rewrites → rewrite, everything else → backstop.
///
/// `rewrite` is only consulted for *mixed* verdicts — an unknown resource
/// has produced no evidence of mixed behaviour, so it goes straight to the
/// backstop (which may still block it outright).
pub(crate) fn policy_of<T>(
    verdict: Verdict,
    plan: impl FnOnce() -> Option<T>,
    rewrite: impl FnOnce() -> Option<Arc<RewrittenUrl>>,
    backstop: impl FnOnce() -> Decision,
) -> Resolved<T> {
    match verdict {
        Verdict::Decided {
            classification: Classification::Tracking,
            granularity,
        } => Resolved::Fixed(Decision::Block(DecisionSource::Hierarchy(granularity))),
        Verdict::Decided {
            classification: Classification::Functional,
            granularity,
        } => Resolved::Fixed(Decision::Allow(DecisionSource::Hierarchy(granularity))),
        Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Script | Granularity::Method,
        } => match plan() {
            Some(plan) => Resolved::Surrogate(plan),
            None => match rewrite() {
                Some(rewritten) => Resolved::Rewrite(rewritten),
                None => Resolved::Fixed(backstop()),
            },
        },
        Verdict::Decided {
            classification: Classification::Mixed,
            granularity: Granularity::Domain | Granularity::Hostname,
        } => match rewrite() {
            Some(rewritten) => Resolved::Rewrite(rewritten),
            None => Resolved::Fixed(backstop()),
        },
        Verdict::Unknown => Resolved::Fixed(backstop()),
    }
}

/// The decision policy over pre-resolved keys — [`decide`] without a
/// single string hash. Generic over the plan representation so the serving
/// hot path can return preformatted response frames instead of cloning an
/// `Arc<SurrogateScript>`.
pub(crate) fn decide_keyed_with<K, T, P>(
    keys: &K,
    classes: &ClassTable,
    engine: Option<&FilterEngine>,
    rewriter: Option<&UrlRewriter>,
    plan_for: P,
    request: &KeyedRequest<'_>,
) -> Resolved<T>
where
    K: KeyResolver + ?Sized,
    P: FnOnce(ResourceKey) -> Option<T>,
{
    policy_of(
        verdict_walk_keyed(keys, classes, request),
        || request.script.and_then(plan_for),
        || rewrite_of(rewriter, request.url),
        || {
            filter_backstop(
                engine,
                request.url,
                request.source_hostname,
                request.resource_type,
            )
        },
    )
}

/// The rewrite arm's evidence test: a configured rewriter, a carried URL,
/// and the URL actually changing. `None` (the common case) costs no
/// allocation — the rewriter's token-hash prescreen rejects clean URLs
/// before parsing anything.
fn rewrite_of(rewriter: Option<&UrlRewriter>, url: Option<&str>) -> Option<Arc<RewrittenUrl>> {
    match (rewriter, url) {
        (Some(rewriter), Some(url)) => rewriter.rewrite(url).map(Arc::new),
        _ => None,
    }
}

/// Borrowed hostname of a page URL (`scheme://[user@]host[:port]/…`);
/// `None` when the URL has no authority. Mirrors the labeling stage's
/// page-host derivation (`ParsedUrl::parse(top_level_url).hostname`)
/// without allocating — the filter request lower-cases its source
/// hostname itself, so a borrowed mixed-case slice matches identically.
fn page_host(url: &str) -> Option<&str> {
    let rest = url.split_once("://")?.1;
    let authority = rest.split(['/', '?', '#']).next().unwrap_or(rest);
    let host = match authority.rfind('@') {
        Some(at) => &authority[at + 1..],
        None => authority,
    };
    let host = host.split(':').next().unwrap_or(host);
    (!host.is_empty()).then_some(host)
}

/// The filter-list backstop for hierarchy-unsettled requests: block on a
/// tracking match, allow otherwise, observe when it cannot run.
fn filter_backstop(
    engine: Option<&FilterEngine>,
    url: Option<&str>,
    source_hostname: &str,
    resource_type: ResourceType,
) -> Decision {
    match (engine, url) {
        (Some(engine), Some(url)) => match engine.label_url(url, source_hostname, resource_type) {
            RequestLabel::Tracking => Decision::Block(DecisionSource::FilterList),
            RequestLabel::Functional => Decision::Allow(DecisionSource::FilterList),
        },
        _ => Decision::Observe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Sifter;
    use crate::surrogate::MethodAction;
    use filterlist::ListKind;

    /// Figure-1-shaped training set plus a mixed script whose methods span
    /// all three classifications, so every decision arm is reachable.
    fn trained() -> Sifter {
        let mut sifter = Sifter::builder()
            .filter_lists(&[(ListKind::EasyList, "||blocked.example^\n")])
            .build();
        // Pure tracking domain.
        for _ in 0..5 {
            sifter.observe_parts(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send",
                true,
            );
        }
        // Pure functional domain.
        for _ in 0..5 {
            sifter.observe_parts(
                "cdn.com",
                "a.cdn.com",
                "https://pub.com/ui.js",
                "load",
                false,
            );
        }
        // Mixed domain -> mixed hostname -> mixed script with a tracking, a
        // functional, and a mixed method.
        for _ in 0..6 {
            sifter.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "track",
                true,
            );
            sifter.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "render",
                false,
            );
        }
        for flag in [true, false, true, false] {
            sifter.observe_parts(
                "hub.com",
                "w.hub.com",
                "https://pub.com/mixed.js",
                "dispatch",
                flag,
            );
        }
        sifter.commit();
        sifter
    }

    #[test]
    fn tracking_and_functional_verdicts_map_to_block_and_allow() {
        let sifter = trained();
        assert_eq!(
            sifter.decide(&DecisionRequest::new(
                "ads.com",
                "px.ads.com",
                "https://pub.com/a.js",
                "send"
            )),
            Decision::Block(DecisionSource::Hierarchy(Granularity::Domain))
        );
        assert_eq!(
            sifter.decide(&DecisionRequest::new(
                "cdn.com",
                "a.cdn.com",
                "https://pub.com/ui.js",
                "load"
            )),
            Decision::Allow(DecisionSource::Hierarchy(Granularity::Domain))
        );
    }

    #[test]
    fn mixed_scripts_get_a_surrogate_with_per_method_actions() {
        let sifter = trained();
        let decision = sifter.decide(&DecisionRequest::new(
            "hub.com",
            "w.hub.com",
            "https://pub.com/mixed.js",
            "dispatch",
        ));
        let plan = decision.surrogate().expect("mixed script yields surrogate");
        assert_eq!(plan.script_url, "https://pub.com/mixed.js");
        let action = |name: &str| {
            plan.methods
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, a)| a.clone())
                .unwrap_or_else(|| panic!("method {name} missing from {:?}", plan.methods))
        };
        assert_eq!(action("track"), MethodAction::Stub);
        assert_eq!(action("render"), MethodAction::Keep);
        assert!(matches!(action("dispatch"), MethodAction::Guard { .. }));
        // Methods are sorted by name — the canonical payload order.
        let names: Vec<&str> = plan.methods.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(plan.suppressed_tracking_requests >= 6);
        assert!(plan.preserved_functional_requests >= 6);
        assert!(decision.is_enforcing());
    }

    #[test]
    fn unsettled_requests_fall_back_to_the_filter_list_or_observe() {
        let sifter = trained();
        // Unknown domain, no URL: observe.
        let keys_only = DecisionRequest::new("zzz.com", "a.zzz.com", "s.js", "m");
        assert_eq!(sifter.decide(&keys_only), Decision::Observe);
        // Unknown domain, URL matching the list: block via the backstop.
        assert_eq!(
            sifter.decide(&keys_only.with_url(
                "https://px.blocked.example/p.gif",
                "pub.com",
                ResourceType::Image
            )),
            Decision::Block(DecisionSource::FilterList)
        );
        // Unknown domain, URL not matching: allow via the backstop.
        assert_eq!(
            sifter.decide(&keys_only.with_url(
                "https://static.fine.example/app.css",
                "pub.com",
                ResourceType::Stylesheet
            )),
            Decision::Allow(DecisionSource::FilterList)
        );
    }

    #[test]
    fn mixed_at_coarse_granularity_uses_the_backstop_not_a_surrogate() {
        let sifter = trained();
        // Known-mixed domain, never-seen hostname: mixed at domain level.
        let request = DecisionRequest::new("hub.com", "new.hub.com", "s.js", "m").with_url(
            "https://new.hub.com/x",
            "pub.com",
            ResourceType::Xhr,
        );
        assert_eq!(
            sifter.decide(&request),
            Decision::Allow(DecisionSource::FilterList)
        );
    }

    /// `trained()` plus a default-rules URL rewriter.
    fn trained_with_rewriter() -> Sifter {
        let snapshot = trained().snapshot();
        Sifter::builder()
            .filter_lists(&[(ListKind::EasyList, "||blocked.example^\n")])
            .rewriter(rewriter::RewriterBuilder::new().default_rules().build())
            .restore(&snapshot)
            .expect("snapshot round-trips")
    }

    #[test]
    fn mixed_requests_with_identifier_urls_are_rewritten() {
        let sifter = trained_with_rewriter();
        // Known-mixed domain, never-seen hostname: mixed at domain level.
        let keys = DecisionRequest::new("hub.com", "new.hub.com", "s.js", "m");
        let tracking_url = keys.with_url(
            "https://new.hub.com/x?id=1&utm_source=feed&gclid=z",
            "pub.com",
            ResourceType::Xhr,
        );
        match sifter.decide(&tracking_url) {
            Decision::Rewrite(rewritten) => {
                assert_eq!(rewritten.url(), "https://new.hub.com/x?id=1");
            }
            other => panic!("expected rewrite, got {other}"),
        }
        // Same hierarchy position, clean URL: falls through to the backstop.
        let clean_url = keys.with_url("https://new.hub.com/x?id=1", "pub.com", ResourceType::Xhr);
        assert_eq!(
            sifter.decide(&clean_url),
            Decision::Allow(DecisionSource::FilterList)
        );
        assert!(sifter.decide(&tracking_url).is_enforcing());
    }

    #[test]
    fn surrogates_take_precedence_over_rewrites_for_mixed_scripts() {
        let sifter = trained_with_rewriter();
        let request = DecisionRequest::new(
            "hub.com",
            "w.hub.com",
            "https://pub.com/mixed.js",
            "dispatch",
        )
        .with_url(
            "https://w.hub.com/beacon?gclid=abc",
            "pub.com",
            ResourceType::Script,
        );
        // The mixed script has a surrogate plan; the identifier-carrying
        // URL must not demote it to a rewrite.
        assert!(sifter.decide(&request).surrogate().is_some());
    }

    #[test]
    fn settled_verdicts_are_never_rewritten() {
        let sifter = trained_with_rewriter();
        // Tracking domain with an identifier URL: still a block.
        let request = DecisionRequest::new("ads.com", "px.ads.com", "https://pub.com/a.js", "send")
            .with_url(
                "https://px.ads.com/p?gclid=abc",
                "pub.com",
                ResourceType::Image,
            );
        assert_eq!(
            sifter.decide(&request),
            Decision::Block(DecisionSource::Hierarchy(Granularity::Domain))
        );
        // Unknown resource with an identifier URL: backstop, not rewrite —
        // there is no mixed evidence to justify modifying the request.
        let unknown = DecisionRequest::new("zzz.com", "a.zzz.com", "s.js", "m").with_url(
            "https://a.zzz.com/x?utm_source=feed",
            "pub.com",
            ResourceType::Xhr,
        );
        assert_eq!(
            sifter.decide(&unknown),
            Decision::Allow(DecisionSource::FilterList)
        );
    }

    #[test]
    fn decisions_without_an_engine_observe_instead_of_guessing() {
        let mut sifter = Sifter::builder().build();
        sifter.observe_parts("a.com", "h.a.com", "s.js", "m", true);
        sifter.observe_parts("a.com", "h.a.com", "s.js", "m", false);
        sifter.commit();
        // Mixed at hostname level (single hostname, mixed), no engine: even
        // with a URL there is nothing to match against.
        let request = DecisionRequest::new("a.com", "h.a.com", "other.js", "m").with_url(
            "https://h.a.com/x",
            "pub.com",
            ResourceType::Xhr,
        );
        assert_eq!(sifter.decide(&request), Decision::Observe);
    }

    #[test]
    fn decision_display_is_human_readable() {
        let sifter = trained();
        let block = sifter.decide(&DecisionRequest::new(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "send",
        ));
        assert_eq!(block.to_string(), "block (hierarchy at Domain level)");
        assert_eq!(Decision::Observe.to_string(), "observe");
        let surrogate = sifter.decide(&DecisionRequest::new(
            "hub.com",
            "w.hub.com",
            "https://pub.com/mixed.js",
            "dispatch",
        ));
        assert!(surrogate.to_string().starts_with("surrogate for"));
        let rewrite = Decision::Rewrite(Arc::new(RewrittenUrl::new("https://a.example/x?id=1")));
        assert_eq!(rewrite.to_string(), "rewrite to https://a.example/x?id=1");
    }

    #[test]
    fn from_labeled_carries_the_url_context() {
        let requests = crate::testutil::figure1_requests();
        let request = DecisionRequest::from_labeled(&requests[0]);
        assert!(request.url.is_some());
        assert_eq!(request.domain, requests[0].domain);
        // The backstop source is the *page hostname* (what `$domain=`
        // options matched at labeling time), not the registrable domain.
        assert_eq!(
            request.source_hostname,
            filterlist::ParsedUrl::parse(&requests[0].top_level_url)
                .expect("test fixture page url parses")
                .hostname
        );
    }

    #[test]
    fn page_host_extracts_the_authority_hostname() {
        assert_eq!(page_host("https://www.pub.com/a/b?c"), Some("www.pub.com"));
        assert_eq!(page_host("http://user@shop.com:8080/x"), Some("shop.com"));
        assert_eq!(page_host("https://HOST.example"), Some("HOST.example"));
        assert_eq!(page_host("not a url"), None);
        assert_eq!(page_host("https:///path-only"), None);
    }
}
