//! Request labeling (paper §3, "Labeling").
//!
//! Every *script-initiated* request captured by the crawler is matched
//! against EasyList + EasyPrivacy: a match means **tracking**, otherwise
//! **functional**. Requests that are not script-initiated (parser-initiated
//! images, stylesheets, the document itself) are excluded from the analysis,
//! exactly as the paper does. The call stack is preserved — the initiator
//! script and method at the top of the stack drive the script- and
//! method-level granularities, and the full ancestry feeds the call-stack
//! analysis of Figure 5.

use crate::memo::{CacheStats, LabelCache};
use crawler::{CrawlDatabase, RequestWillBeSent, SiteCrawl};
use filterlist::{FilterEngine, ParsedUrl, RequestLabel, ResourceType};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One frame of the initiator stack, reduced to what the analysis needs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabeledFrame {
    /// Script URL of the frame.
    pub script_url: String,
    /// Method (function) name; may be empty for anonymous frames.
    pub method: String,
}

/// A script-initiated request with its oracle label and attribution keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledRequest {
    /// Unique request id from the crawl.
    pub request_id: u64,
    /// URL of the page that issued the request.
    pub top_level_url: String,
    /// Registrable domain of the page.
    pub site_domain: String,
    /// The request URL.
    pub url: String,
    /// Registrable domain (eTLD+1) of the request URL.
    pub domain: String,
    /// Hostname of the request URL.
    pub hostname: String,
    /// Resource type.
    pub resource_type: ResourceType,
    /// URL of the script that initiated the request (innermost stack frame).
    pub initiator_script: String,
    /// Name of the method that initiated the request (innermost frame).
    pub initiator_method: String,
    /// The full stack, innermost first.
    pub stack: Vec<LabeledFrame>,
    /// Index of the first asynchronous-parent frame, if any.
    pub async_boundary: Option<usize>,
    /// The oracle label.
    pub label: RequestLabel,
}

impl LabeledRequest {
    /// `true` when the oracle labeled this request tracking.
    pub fn is_tracking(&self) -> bool {
        self.label.is_tracking()
    }
}

/// Statistics from labeling a crawl.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelStats {
    /// Requests seen in the crawl database (script-initiated or not).
    pub total_requests: usize,
    /// Requests excluded because no script initiated them.
    pub excluded_non_script: usize,
    /// Requests excluded because their URL could not be parsed.
    pub excluded_unparseable: usize,
    /// Script-initiated requests labeled tracking.
    pub tracking: usize,
    /// Script-initiated requests labeled functional.
    pub functional: usize,
}

impl LabelStats {
    /// Labeled (kept) requests.
    pub fn labeled(&self) -> usize {
        self.tracking + self.functional
    }

    /// Merge another site's statistics into this one (used when labeling
    /// sites in parallel).
    pub fn merge(&mut self, other: LabelStats) {
        self.total_requests += other.total_requests;
        self.excluded_non_script += other.excluded_non_script;
        self.excluded_unparseable += other.excluded_unparseable;
        self.tracking += other.tracking;
        self.functional += other.functional;
    }
}

/// The labeler: pairs a crawl database with a filter engine, memoizing
/// oracle evaluations across requests and sites (see [`crate::memo`]).
#[derive(Debug)]
pub struct Labeler<'a> {
    engine: &'a FilterEngine,
    cache: LabelCache,
}

impl<'a> Labeler<'a> {
    /// Create a labeler over a filter engine, with a fresh memo cache.
    pub fn new(engine: &'a FilterEngine) -> Self {
        Labeler {
            engine,
            cache: LabelCache::new(),
        }
    }

    /// Hit/miss counters of the memo cache so far. Observational (see
    /// [`CacheStats`]) — reported by benchmarks, not part of label output.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Label one captured request. Returns `None` for requests the analysis
    /// excludes (not script-initiated, or unparseable URL).
    pub fn label_request(
        &self,
        site_domain: &str,
        request: &RequestWillBeSent,
    ) -> Option<LabeledRequest> {
        let page_host = ParsedUrl::parse(&request.top_level_url)
            .map(|u| u.hostname)
            .unwrap_or_default();
        self.label_request_from(site_domain, request, &page_host)
    }

    /// Label one request whose page hostname the caller already derived
    /// (the per-site loop derives it once per distinct top-level URL).
    fn label_request_from(
        &self,
        site_domain: &str,
        request: &RequestWillBeSent,
        page_host: &str,
    ) -> Option<LabeledRequest> {
        let frame = request.call_stack.initiator_frame()?;
        let outcome =
            self.cache
                .label_url(self.engine, &request.url, page_host, request.resource_type)?;
        Some(LabeledRequest {
            request_id: request.request_id,
            top_level_url: request.top_level_url.clone(),
            site_domain: site_domain.to_string(),
            url: request.url.clone(),
            domain: outcome.domain,
            hostname: outcome.hostname,
            resource_type: request.resource_type,
            initiator_script: frame.script_url.clone(),
            initiator_method: frame.function_name.clone(),
            stack: request
                .call_stack
                .frames
                .iter()
                .map(|f| LabeledFrame {
                    script_url: f.script_url.clone(),
                    method: f.function_name.clone(),
                })
                .collect(),
            async_boundary: request.call_stack.async_boundary,
            label: outcome.label,
        })
    }

    /// Label every request of one crawled site.
    pub fn label_site(&self, site: &SiteCrawl) -> (Vec<LabeledRequest>, LabelStats) {
        let mut stats = LabelStats::default();
        let mut out = Vec::with_capacity(site.requests.len());
        // Requests of one site overwhelmingly share their top-level URL; a
        // one-entry memo avoids re-parsing it per request.
        let mut page_host_memo: Option<(String, String)> = None;
        for request in &site.requests {
            stats.total_requests += 1;
            if !request.is_script_initiated() {
                stats.excluded_non_script += 1;
                continue;
            }
            let memo_is_stale = !matches!(
                &page_host_memo,
                Some((top, _)) if *top == request.top_level_url
            );
            if memo_is_stale {
                let host = ParsedUrl::parse(&request.top_level_url)
                    .map(|u| u.hostname)
                    .unwrap_or_default();
                page_host_memo = Some((request.top_level_url.clone(), host));
            }
            let page_host = &page_host_memo.as_ref().expect("memo just filled").1;
            match self.label_request_from(&site.site_domain, request, page_host) {
                Some(labeled) => {
                    if labeled.is_tracking() {
                        stats.tracking += 1;
                    } else {
                        stats.functional += 1;
                    }
                    out.push(labeled);
                }
                None => stats.excluded_unparseable += 1,
            }
        }
        (out, stats)
    }

    /// Label every script-initiated request in a crawl database,
    /// sequentially.
    pub fn label_database(&self, db: &CrawlDatabase) -> (Vec<LabeledRequest>, LabelStats) {
        let per_site: Vec<_> = db.sites.iter().map(|site| self.label_site(site)).collect();
        Self::merge_site_results(per_site, db.script_initiated_requests())
    }

    /// Label every script-initiated request in parallel across sites on a
    /// pool of `workers` threads (0 = the ambient rayon default, 1 =
    /// sequential). Sites are labeled independently — the filter engine is
    /// shared read-only across workers (`FilterEngine: Sync`) — and results
    /// are merged in site order, so the output is identical to
    /// [`Labeler::label_database`] regardless of worker count.
    pub fn label_database_parallel(
        &self,
        db: &CrawlDatabase,
        workers: usize,
    ) -> (Vec<LabeledRequest>, LabelStats) {
        if workers == 1 || db.sites.len() <= 1 {
            return self.label_database(db);
        }
        let label_all = || {
            db.sites
                .par_iter()
                .map(|site| self.label_site(site))
                .collect::<Vec<_>>()
        };
        let per_site = crawler::with_worker_pool(workers, label_all);
        Self::merge_site_results(per_site, db.script_initiated_requests())
    }

    fn merge_site_results(
        per_site: Vec<(Vec<LabeledRequest>, LabelStats)>,
        capacity: usize,
    ) -> (Vec<LabeledRequest>, LabelStats) {
        let mut stats = LabelStats::default();
        let mut out = Vec::with_capacity(capacity);
        for (requests, site_stats) in per_site {
            out.extend(requests);
            stats.merge(site_stats);
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::{ClusterConfig, CrawlCluster};
    use websim::{filter_rules, CorpusGenerator, CorpusProfile, Purpose};

    fn setup() -> (websim::WebCorpus, CrawlDatabase, FilterEngine) {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(60), 2021);
        let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
        let engine = filter_rules::engine_for(&corpus.ecosystem);
        (corpus, db, engine)
    }

    #[test]
    fn non_script_requests_are_excluded() {
        let (_corpus, db, engine) = setup();
        let labeler = Labeler::new(&engine);
        let (requests, stats) = labeler.label_database(&db);
        assert_eq!(stats.labeled(), requests.len());
        assert!(
            stats.excluded_non_script > 0,
            "document requests must be excluded"
        );
        assert_eq!(stats.total_requests, db.total_requests());
        assert_eq!(
            stats.labeled() + stats.excluded_non_script + stats.excluded_unparseable,
            stats.total_requests
        );
    }

    #[test]
    fn labels_mostly_agree_with_ground_truth_intent() {
        // The oracle is the filter list, not the generator's intent, but the
        // two must agree strongly or the corpus would be meaningless.
        let (corpus, db, engine) = setup();
        let labeler = Labeler::new(&engine);
        let (requests, _) = labeler.label_database(&db);

        // Map url -> intent from the corpus ground truth.
        let mut intents = std::collections::HashMap::new();
        for site in &corpus.websites {
            for script in &site.scripts {
                for (_, planned) in script.planned_requests() {
                    intents.insert(planned.url.clone(), planned.intent);
                }
            }
        }
        let mut agree = 0usize;
        let mut total = 0usize;
        for request in &requests {
            if let Some(intent) = intents.get(&request.url) {
                total += 1;
                let expected_tracking = *intent == Purpose::Tracking;
                if expected_tracking == request.is_tracking() {
                    agree += 1;
                }
            }
        }
        assert!(total > 500, "expected many script requests, got {total}");
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.97, "oracle/intent agreement too low: {rate:.3}");
    }

    #[test]
    fn attribution_keys_are_populated() {
        let (_corpus, db, engine) = setup();
        let labeler = Labeler::new(&engine);
        let (requests, _) = labeler.label_database(&db);
        for r in &requests {
            assert!(!r.domain.is_empty(), "{}", r.url);
            assert!(!r.hostname.is_empty(), "{}", r.url);
            assert!(!r.initiator_script.is_empty());
            assert!(!r.stack.is_empty());
            assert_eq!(r.stack[0].script_url, r.initiator_script);
            assert_eq!(r.stack[0].method, r.initiator_method);
        }
    }

    #[test]
    fn relabeling_through_a_warm_cache_is_byte_identical() {
        let (_corpus, db, engine) = setup();
        let labeler = Labeler::new(&engine);
        let (first, first_stats) = labeler.label_database(&db);
        let warmed = labeler.cache_stats();
        assert!(warmed.misses > 0);

        // Second pass over the same database: every lookup hits the memo
        // and the output must not change in a single byte.
        let (second, second_stats) = labeler.label_database(&db);
        let after = labeler.cache_stats();
        assert_eq!(first, second);
        assert_eq!(first_stats, second_stats);
        assert_eq!(
            after.misses, warmed.misses,
            "warm relabel must not evaluate the oracle again"
        );
        assert!(after.hits >= warmed.hits + warmed.misses);

        // A parallel pass over the warm cache agrees too.
        let (parallel, parallel_stats) = labeler.label_database_parallel(&db, 4);
        assert_eq!(first, parallel);
        assert_eq!(first_stats, parallel_stats);
    }

    #[test]
    fn both_labels_are_present_in_volume() {
        let (_corpus, db, engine) = setup();
        let labeler = Labeler::new(&engine);
        let (_, stats) = labeler.label_database(&db);
        assert!(stats.tracking > 100, "{stats:?}");
        assert!(stats.functional > 100, "{stats:?}");
    }
}
