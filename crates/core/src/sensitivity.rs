//! Threshold sensitivity analysis (paper §5, Figure 4).
//!
//! The paper checks that the choice of the ±2 log-ratio threshold is stable
//! by sweeping it from 1.0 to 3.0 in steps of 0.1 and plotting the share of
//! scripts classified as mixed; the curve plateaus around 2. This module
//! reruns the full hierarchy at each threshold and records the mixed share
//! at every granularity (the paper reports "similar trends" for the other
//! levels).

use crate::hierarchy::{Granularity, HierarchicalClassifier};
use crate::label::LabeledRequest;
use crate::ratio::Thresholds;
use serde::{Deserialize, Serialize};

/// One point of the sensitivity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// The symmetric threshold this point was computed at.
    pub threshold: f64,
    /// Percentage of unique resources classified mixed, per granularity in
    /// [domain, hostname, script, method] order.
    pub mixed_share: [f64; 4],
}

impl SensitivityPoint {
    /// Mixed share at one granularity.
    pub fn share(&self, granularity: Granularity) -> f64 {
        match granularity {
            Granularity::Domain => self.mixed_share[0],
            Granularity::Hostname => self.mixed_share[1],
            Granularity::Script => self.mixed_share[2],
            Granularity::Method => self.mixed_share[3],
        }
    }
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SensitivitySweep {
    /// Points in ascending threshold order.
    pub points: Vec<SensitivityPoint>,
}

impl SensitivitySweep {
    /// Run the sweep over `requests` for thresholds `start..=end` in steps
    /// of `step` (the paper uses 1.0..=3.0 step 0.1).
    pub fn run(requests: &[LabeledRequest], start: f64, end: f64, step: f64) -> Self {
        assert!(step > 0.0, "step must be positive");
        assert!(start > 0.0 && end >= start, "invalid sweep range");
        let mut points = Vec::new();
        let mut threshold = start;
        while threshold <= end + 1e-9 {
            let result = HierarchicalClassifier::new(Thresholds::new(threshold)).classify(requests);
            let share = |g: Granularity| result.level(g).resource_counts.mixed_share();
            points.push(SensitivityPoint {
                threshold: (threshold * 10.0).round() / 10.0,
                mixed_share: [
                    share(Granularity::Domain),
                    share(Granularity::Hostname),
                    share(Granularity::Script),
                    share(Granularity::Method),
                ],
            });
            threshold += step;
        }
        SensitivitySweep { points }
    }

    /// The paper's sweep: 1.0 to 3.0 in steps of 0.1.
    pub fn paper_sweep(requests: &[LabeledRequest]) -> Self {
        Self::run(requests, 1.0, 3.0, 0.1)
    }

    /// Maximum absolute change in script-level mixed share between
    /// consecutive thresholds within `[from, to]` — the "plateau" metric:
    /// small values around the default threshold mean the choice is stable.
    pub fn max_step_change(&self, granularity: Granularity, from: f64, to: f64) -> f64 {
        let mut max_change: f64 = 0.0;
        for window in self.points.windows(2) {
            let (a, b) = (&window[0], &window[1]);
            if a.threshold >= from - 1e-9 && b.threshold <= to + 1e-9 {
                max_change = max_change.max((b.share(granularity) - a.share(granularity)).abs());
            }
        }
        max_change
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labeler;
    use crawler::{ClusterConfig, CrawlCluster};
    use websim::{filter_rules, CorpusGenerator, CorpusProfile};

    fn requests() -> Vec<LabeledRequest> {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(80), 9);
        let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
        let engine = filter_rules::engine_for(&corpus.ecosystem);
        Labeler::new(&engine).label_database(&db).0
    }

    #[test]
    fn sweep_produces_expected_grid() {
        let requests = requests();
        let sweep = SensitivitySweep::paper_sweep(&requests);
        assert_eq!(sweep.points.len(), 21);
        assert!((sweep.points[0].threshold - 1.0).abs() < 1e-9);
        assert!((sweep.points.last().unwrap().threshold - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_share_never_decreases_with_larger_threshold() {
        // Widening the mixed band can only add resources to it.
        let requests = requests();
        let sweep = SensitivitySweep::run(&requests, 1.0, 3.0, 0.5);
        for g in Granularity::ALL {
            // Note: at finer levels the *input set* changes with the
            // threshold (more mixed parents feed more requests down), so the
            // monotonicity guarantee only strictly holds at the domain level.
            if g == Granularity::Domain {
                for window in sweep.points.windows(2) {
                    assert!(
                        window[1].share(g) + 1e-9 >= window[0].share(g),
                        "{g}: {:?} -> {:?}",
                        window[0],
                        window[1]
                    );
                }
            }
        }
    }

    #[test]
    fn shares_are_percentages() {
        let requests = requests();
        let sweep = SensitivitySweep::run(&requests, 1.5, 2.5, 0.5);
        for p in &sweep.points {
            for s in p.mixed_share {
                assert!((0.0..=100.0).contains(&s), "{s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = SensitivitySweep::run(&[], 1.0, 3.0, 0.0);
    }
}
