//! Shared unit-test fixtures: hand-built labeled requests and the paper's
//! Figure 1 worked example, used by both the batch classifier tests
//! (`hierarchy`) and the serving-API tests (`service`) so the two suites
//! provably exercise the same scenario.

use crate::label::{LabeledFrame, LabeledRequest};
use filterlist::{RequestLabel, ResourceType};

/// A hand-built labeled request with explicit attribution keys.
pub(crate) fn labeled_request(
    domain: &str,
    hostname: &str,
    script: &str,
    method: &str,
    tracking: bool,
) -> LabeledRequest {
    LabeledRequest {
        request_id: 0,
        top_level_url: "https://www.pub.com/".into(),
        site_domain: "pub.com".into(),
        url: format!("https://{hostname}/x"),
        domain: domain.into(),
        hostname: hostname.into(),
        resource_type: ResourceType::Xhr,
        initiator_script: script.into(),
        initiator_method: method.into(),
        stack: vec![LabeledFrame {
            script_url: script.into(),
            method: method.into(),
        }],
        async_boundary: None,
        label: if tracking {
            RequestLabel::Tracking
        } else {
            RequestLabel::Functional
        },
    }
}

/// The paper's Figure 1 worked example: ads.com is pure tracking, news.com
/// pure functional, google.com mixed; within google.com the hostnames
/// split; within cdn.google.com the scripts split; within clone.js the
/// methods split (m1 tracking, m3 functional, m2 both — the residue).
pub(crate) fn figure1_requests() -> Vec<LabeledRequest> {
    let req = labeled_request;
    let mut v = Vec::new();
    // Pure tracking / functional domains.
    for _ in 0..5 {
        v.push(req(
            "ads.com",
            "px.ads.com",
            "https://pub.com/a.js",
            "t",
            true,
        ));
        v.push(req(
            "news.com",
            "cdn.news.com",
            "https://pub.com/n.js",
            "f",
            false,
        ));
    }
    // google.com: ad.google.com pure tracking, maps.google.com pure
    // functional, cdn.google.com mixed.
    for _ in 0..4 {
        v.push(req(
            "google.com",
            "ad.google.com",
            "https://pub.com/sdk.js",
            "send",
            true,
        ));
        v.push(req(
            "google.com",
            "maps.google.com",
            "https://pub.com/maps.js",
            "draw",
            false,
        ));
    }
    // cdn.google.com requests from three scripts: sdk.js (tracking),
    // stack.js (functional), clone.js (mixed: m1 tracking, m3 functional,
    // m2 both).
    for _ in 0..3 {
        v.push(req(
            "google.com",
            "cdn.google.com",
            "https://pub.com/sdk.js",
            "send",
            true,
        ));
        v.push(req(
            "google.com",
            "cdn.google.com",
            "https://pub.com/stack.js",
            "load",
            false,
        ));
        v.push(req(
            "google.com",
            "cdn.google.com",
            "https://pub.com/clone.js",
            "m1",
            true,
        ));
        v.push(req(
            "google.com",
            "cdn.google.com",
            "https://pub.com/clone.js",
            "m3",
            false,
        ));
    }
    v.push(req(
        "google.com",
        "cdn.google.com",
        "https://pub.com/clone.js",
        "m2",
        true,
    ));
    v.push(req(
        "google.com",
        "cdn.google.com",
        "https://pub.com/clone.js",
        "m2",
        false,
    ));
    v
}
