//! Verdict revisions: per-commit drift records over the published state.
//!
//! A one-shot study classifies once and stops; a serving deployment watches
//! the web *change under it* — trackers rotate CDNs, lists catch up, mixed
//! hosts tip over a threshold — and operators need to see exactly what each
//! commit changed. This module is that record:
//!
//! * [`RevisionChange`] — one per-key class transition at one granularity:
//!   the key entered the level ([`ChangeKind::Added`]), left it
//!   ([`ChangeKind::Removed`]), or flipped classification
//!   ([`ChangeKind::Flipped`] with old → new).
//! * [`VerdictRevision`] — every change one commit made, stamped with the
//!   published table version it produced. The concurrent writer records one
//!   revision per publish (even an empty one), so version chains stay
//!   contiguous, and keeps a bounded ring of them attached to the published
//!   [`VerdictTable`](crate::table::VerdictTable).
//! * [`compose`] / [`diff_revisions`] — the diff algebra: transitions
//!   compose by chaining old → new per `(granularity, key)` and dropping
//!   identities, so the drift between *any* two ring versions is the fold
//!   of the revisions between them. Composition is associative —
//!   `diff(a,c) == compose(diff(a,b), diff(b,c))` — which the property
//!   tests pin against an independent model.
//!
//! Changes are kept in one canonical order (granularity coarsest-first,
//! then key string) so two runs from the same seed produce byte-identical
//! revision rings and wire encodings.

use crate::hierarchy::Granularity;
use crate::ratio::Classification;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// How one key's committed classification changed between two states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// The key became a member of the level (was absent before).
    Added(Classification),
    /// The key left the level (carrying its last classification).
    Removed(Classification),
    /// The key stayed a member but flipped classification (old, new).
    Flipped(Classification, Classification),
}

impl ChangeKind {
    /// The transition from `old` to `new`, or `None` when nothing changed.
    pub fn of(old: Option<Classification>, new: Option<Classification>) -> Option<ChangeKind> {
        match (old, new) {
            (None, Some(class)) => Some(ChangeKind::Added(class)),
            (Some(class), None) => Some(ChangeKind::Removed(class)),
            (Some(a), Some(b)) if a != b => Some(ChangeKind::Flipped(a, b)),
            _ => None,
        }
    }

    /// The classification before the change (`None` for additions).
    pub fn old_class(&self) -> Option<Classification> {
        match self {
            ChangeKind::Added(_) => None,
            ChangeKind::Removed(class) => Some(*class),
            ChangeKind::Flipped(old, _) => Some(*old),
        }
    }

    /// The classification after the change (`None` for removals).
    pub fn new_class(&self) -> Option<Classification> {
        match self {
            ChangeKind::Added(class) => Some(*class),
            ChangeKind::Removed(_) => None,
            ChangeKind::Flipped(_, new) => Some(*new),
        }
    }
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangeKind::Added(class) => write!(f, "added as {class}"),
            ChangeKind::Removed(class) => write!(f, "removed (was {class})"),
            ChangeKind::Flipped(old, new) => write!(f, "flipped {old} -> {new}"),
        }
    }
}

/// One per-key class transition recorded by a commit (or produced by
/// composing several commits' transitions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevisionChange {
    /// The hierarchy level the key changed at.
    pub granularity: Granularity,
    /// The resource key string (domain, hostname, script URL, or composed
    /// `script :: method` label). Shared, not copied, with the frozen key
    /// table it was resolved from.
    pub key: Arc<str>,
    /// What happened to the key's classification.
    pub kind: ChangeKind,
}

impl RevisionChange {
    /// A change from explicit parts.
    pub fn new(granularity: Granularity, key: impl Into<Arc<str>>, kind: ChangeKind) -> Self {
        RevisionChange {
            granularity,
            key: key.into(),
            kind,
        }
    }
}

/// Order changes canonically: granularity coarsest-first, then key string.
pub(crate) fn sort_changes(changes: &mut [RevisionChange]) {
    changes.sort_by(|a, b| {
        (a.granularity.index(), a.key.as_ref()).cmp(&(b.granularity.index(), b.key.as_ref()))
    });
}

/// Every per-key class change one commit made, stamped with the published
/// table version that commit produced.
///
/// The concurrent writer records one revision per publish — including
/// commits that changed nothing — so the ring's versions are contiguous
/// and any two of them are diffable. Changes are held in canonical
/// (granularity, key) order.
///
/// ```
/// use trackersift::{ChangeKind, Classification, Granularity, RevisionChange, VerdictRevision};
///
/// let revision = VerdictRevision::new(
///     7,
///     vec![RevisionChange::new(
///         Granularity::Domain,
///         "ads.com",
///         ChangeKind::Added(Classification::Tracking),
///     )],
/// );
/// assert_eq!(revision.version(), 7);
/// assert_eq!(revision.changes().len(), 1);
/// assert_eq!(
///     revision.changes()[0].kind.new_class(),
///     Some(Classification::Tracking)
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictRevision {
    version: u64,
    changes: Vec<RevisionChange>,
    /// Script keys whose surrogate plan was rebuilt by this commit.
    /// Plans embed per-method counts, so they can change *without* any
    /// class transition; delta snapshots use this set to know which
    /// plans to re-ship. Sorted, deduplicated.
    plans_touched: Vec<Arc<str>>,
}

impl VerdictRevision {
    /// A revision from explicit parts; changes are sorted into the
    /// canonical (granularity, key) order.
    pub fn new(version: u64, changes: Vec<RevisionChange>) -> Self {
        VerdictRevision::with_plans(version, changes, Vec::new())
    }

    /// A revision that also records which scripts' surrogate plans the
    /// commit rebuilt (see [`VerdictRevision::plans_touched`]).
    pub fn with_plans(
        version: u64,
        mut changes: Vec<RevisionChange>,
        mut plans_touched: Vec<Arc<str>>,
    ) -> Self {
        sort_changes(&mut changes);
        plans_touched.sort();
        plans_touched.dedup();
        VerdictRevision {
            version,
            changes,
            plans_touched,
        }
    }

    /// The published table version this revision's commit produced.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The per-key transitions, in canonical order.
    pub fn changes(&self) -> &[RevisionChange] {
        &self.changes
    }

    /// Script keys whose surrogate plan this commit rebuilt or removed,
    /// sorted. A superset of the script-level class changes: plans embed
    /// per-method request counts, which drift without class flips.
    pub fn plans_touched(&self) -> &[Arc<str>] {
        &self.plans_touched
    }

    /// `true` when the commit changed no classifications.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// The net drift between two revisions of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevisionDiff {
    /// The baseline version (exclusive): state *after* this version.
    pub from: u64,
    /// The target version (inclusive).
    pub to: u64,
    /// Net per-key transitions from `from` to `to`, canonical order,
    /// identities dropped.
    pub changes: Vec<RevisionChange>,
}

/// Why a requested revision diff could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevisionRangeError {
    /// `from > to`: the range is backwards (a client bug — HTTP 400).
    Inverted {
        /// Requested baseline version.
        from: u64,
        /// Requested target version.
        to: u64,
    },
    /// The range is not fully covered by the bounded revision ring (the
    /// revisions fell off the ring or were never produced — HTTP 404).
    Unknown {
        /// Requested baseline version.
        from: u64,
        /// Requested target version.
        to: u64,
    },
}

impl fmt::Display for RevisionRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RevisionRangeError::Inverted { from, to } => {
                write!(f, "inverted revision range {from}..{to}")
            }
            RevisionRangeError::Unknown { from, to } => {
                write!(f, "revision range {from}..{to} is not in the revision ring")
            }
        }
    }
}

impl std::error::Error for RevisionRangeError {}

/// Net transition accumulator keyed by (granularity index, key string);
/// `BTreeMap` so collection comes out in canonical order for free.
type NetMap = BTreeMap<(usize, Arc<str>), (Option<Classification>, Option<Classification>)>;

fn fold_changes(net: &mut NetMap, changes: &[RevisionChange]) {
    for change in changes {
        let slot = (change.granularity.index(), Arc::clone(&change.key));
        match net.get_mut(&slot) {
            Some((_, new)) => *new = change.kind.new_class(),
            None => {
                net.insert(slot, (change.kind.old_class(), change.kind.new_class()));
            }
        }
    }
}

fn collect_net(net: NetMap) -> Vec<RevisionChange> {
    net.into_iter()
        .filter_map(|((granularity, key), (old, new))| {
            ChangeKind::of(old, new).map(|kind| RevisionChange {
                granularity: Granularity::ALL[granularity],
                key,
                kind,
            })
        })
        .collect()
}

/// Compose two change sets applied in sequence into their net effect:
/// per `(granularity, key)`, chain old → new and drop transitions that
/// cancel out. Composition is associative, which is what makes any two
/// ring versions diffable by folding the revisions between them.
pub fn compose(first: &[RevisionChange], second: &[RevisionChange]) -> Vec<RevisionChange> {
    let mut net = NetMap::new();
    fold_changes(&mut net, first);
    fold_changes(&mut net, second);
    collect_net(net)
}

/// The net drift from version `from` (exclusive) to version `to`
/// (inclusive), folded over a contiguous ascending revision ring.
///
/// `from == to` yields an empty diff as long as `from` is a version the
/// ring can anchor (between one-before-oldest and newest). A backwards
/// range is [`RevisionRangeError::Inverted`]; a range not fully covered by
/// the ring is [`RevisionRangeError::Unknown`].
pub fn diff_revisions(
    ring: &[Arc<VerdictRevision>],
    from: u64,
    to: u64,
) -> Result<RevisionDiff, RevisionRangeError> {
    if from > to {
        return Err(RevisionRangeError::Inverted { from, to });
    }
    let (Some(oldest), Some(newest)) = (ring.first(), ring.last()) else {
        return Err(RevisionRangeError::Unknown { from, to });
    };
    // `from` is a baseline: the state *after* version `from`. The oldest
    // baseline the ring can reconstruct is one before its oldest revision.
    let floor = oldest.version().saturating_sub(1);
    if from < floor || to > newest.version() {
        return Err(RevisionRangeError::Unknown { from, to });
    }
    let mut net = NetMap::new();
    for revision in ring {
        if revision.version() > from && revision.version() <= to {
            fold_changes(&mut net, revision.changes());
        }
    }
    Ok(RevisionDiff {
        from,
        to,
        changes: collect_net(net),
    })
}

/// The union of [`VerdictRevision::plans_touched`] over the span
/// `from` (exclusive) to `to` (inclusive), sorted and deduplicated.
/// Callers validate the span with [`diff_revisions`] first; an
/// uncovered span simply unions whatever the ring still holds.
pub fn plans_touched_in_span(ring: &[Arc<VerdictRevision>], from: u64, to: u64) -> Vec<Arc<str>> {
    let mut touched: Vec<Arc<str>> = ring
        .iter()
        .filter(|revision| revision.version() > from && revision.version() <= to)
        .flat_map(|revision| revision.plans_touched().iter().cloned())
        .collect();
    touched.sort();
    touched.dedup();
    touched
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change(granularity: Granularity, key: &str, kind: ChangeKind) -> RevisionChange {
        RevisionChange::new(granularity, key, kind)
    }

    #[test]
    fn change_kind_models_every_transition() {
        use Classification::*;
        assert_eq!(ChangeKind::of(None, None), None);
        assert_eq!(ChangeKind::of(Some(Mixed), Some(Mixed)), None);
        assert_eq!(
            ChangeKind::of(None, Some(Tracking)),
            Some(ChangeKind::Added(Tracking))
        );
        assert_eq!(
            ChangeKind::of(Some(Functional), None),
            Some(ChangeKind::Removed(Functional))
        );
        assert_eq!(
            ChangeKind::of(Some(Mixed), Some(Tracking)),
            Some(ChangeKind::Flipped(Mixed, Tracking))
        );
        let flipped = ChangeKind::Flipped(Mixed, Tracking);
        assert_eq!(flipped.old_class(), Some(Mixed));
        assert_eq!(flipped.new_class(), Some(Tracking));
    }

    #[test]
    fn revisions_sort_changes_canonically() {
        use Classification::*;
        let revision = VerdictRevision::new(
            1,
            vec![
                change(Granularity::Script, "z.js", ChangeKind::Added(Mixed)),
                change(Granularity::Domain, "b.com", ChangeKind::Added(Tracking)),
                change(Granularity::Domain, "a.com", ChangeKind::Added(Functional)),
            ],
        );
        let order: Vec<(usize, &str)> = revision
            .changes()
            .iter()
            .map(|c| (c.granularity.index(), c.key.as_ref()))
            .collect();
        assert_eq!(
            order,
            vec![(0, "a.com"), (0, "b.com"), (2, "z.js")],
            "coarsest granularity first, then key order"
        );
    }

    #[test]
    fn compose_chains_and_cancels() {
        use Classification::*;
        let first = vec![
            change(Granularity::Domain, "a.com", ChangeKind::Added(Tracking)),
            change(
                Granularity::Domain,
                "b.com",
                ChangeKind::Flipped(Mixed, Tracking),
            ),
        ];
        let second = vec![
            change(
                Granularity::Domain,
                "a.com",
                ChangeKind::Flipped(Tracking, Mixed),
            ),
            change(
                Granularity::Domain,
                "b.com",
                ChangeKind::Flipped(Tracking, Mixed),
            ),
            change(Granularity::Hostname, "h.c.com", ChangeKind::Added(Mixed)),
        ];
        let net = compose(&first, &second);
        assert_eq!(
            net,
            vec![
                change(Granularity::Domain, "a.com", ChangeKind::Added(Mixed)),
                change(Granularity::Hostname, "h.c.com", ChangeKind::Added(Mixed)),
            ],
            "a.com chains None->Tracking->Mixed, b.com cancels Mixed->Tracking->Mixed"
        );
    }

    fn ring(revisions: Vec<VerdictRevision>) -> Vec<Arc<VerdictRevision>> {
        revisions.into_iter().map(Arc::new).collect()
    }

    #[test]
    fn diff_folds_the_requested_span() {
        use Classification::*;
        let ring = ring(vec![
            VerdictRevision::new(
                3,
                vec![change(
                    Granularity::Domain,
                    "a.com",
                    ChangeKind::Added(Tracking),
                )],
            ),
            VerdictRevision::new(4, vec![]),
            VerdictRevision::new(
                5,
                vec![change(
                    Granularity::Domain,
                    "a.com",
                    ChangeKind::Flipped(Tracking, Mixed),
                )],
            ),
        ]);
        let full = diff_revisions(&ring, 2, 5).expect("full span");
        assert_eq!(
            full.changes,
            vec![change(
                Granularity::Domain,
                "a.com",
                ChangeKind::Added(Mixed)
            )]
        );
        let tail = diff_revisions(&ring, 4, 5).expect("tail span");
        assert_eq!(
            tail.changes,
            vec![change(
                Granularity::Domain,
                "a.com",
                ChangeKind::Flipped(Tracking, Mixed)
            )]
        );
        let empty = diff_revisions(&ring, 4, 4).expect("empty span");
        assert!(empty.changes.is_empty());
    }

    #[test]
    fn diff_rejects_hostile_ranges_typed() {
        let ring = ring(vec![VerdictRevision::new(3, vec![]), {
            VerdictRevision::new(4, vec![])
        }]);
        assert_eq!(
            diff_revisions(&ring, 4, 3),
            Err(RevisionRangeError::Inverted { from: 4, to: 3 })
        );
        assert_eq!(
            diff_revisions(&ring, 1, 4),
            Err(RevisionRangeError::Unknown { from: 1, to: 4 }),
            "baseline 1 fell off the ring (floor is 2)"
        );
        assert_eq!(
            diff_revisions(&ring, 3, 9),
            Err(RevisionRangeError::Unknown { from: 3, to: 9 }),
            "target 9 was never produced"
        );
        assert_eq!(
            diff_revisions(&[], 0, 0),
            Err(RevisionRangeError::Unknown { from: 0, to: 0 }),
            "an empty ring anchors nothing"
        );
        // The floor baseline itself is diffable.
        assert!(diff_revisions(&ring, 2, 4).is_ok());
        assert!(diff_revisions(&ring, 2, 2).is_ok());
    }
}
