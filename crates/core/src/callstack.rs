//! Call-stack analysis for mixed methods (paper §5, Figure 5).
//!
//! Even at the finest granularity some methods remain mixed (the paper's
//! `m2()` example): the same method initiates both tracking and functional
//! requests. The proposed remedy is to look *above* the method: snapshot the
//! stack trace of every request the mixed method initiates, merge the traces
//! into a call graph whose nodes are `(script, method)` pairs and whose
//! edges are caller→callee relationships, mark each node with the request
//! classes it participates in, and find the **divergence points** — nodes
//! that only ever participate in tracking traces. Removing such a node
//! breaks the chain needed to invoke the tracking behaviour while leaving
//! the functional path intact.

use crate::intern::{KeyInterner, ResourceKey};
use crate::label::LabeledRequest;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A node of the merged call graph: one `(script, method)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CallGraphNode {
    /// Script URL.
    pub script_url: String,
    /// Method name.
    pub method: String,
}

impl CallGraphNode {
    /// Render as `script @ method` (used in reports).
    pub fn label(&self) -> String {
        format!("{} @ {}", self.script_url, self.method)
    }
}

/// Participation of a node in tracking / functional request traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeParticipation {
    /// Number of tracking-request traces the node appears in.
    pub tracking_traces: u64,
    /// Number of functional-request traces the node appears in.
    pub functional_traces: u64,
}

impl NodeParticipation {
    /// `true` when the node only ever appears in tracking traces.
    pub fn tracking_only(&self) -> bool {
        self.tracking_traces > 0 && self.functional_traces == 0
    }

    /// `true` when the node only ever appears in functional traces.
    pub fn functional_only(&self) -> bool {
        self.functional_traces > 0 && self.tracking_traces == 0
    }

    /// `true` when the node appears in both kinds of trace.
    pub fn both(&self) -> bool {
        self.tracking_traces > 0 && self.functional_traces > 0
    }
}

/// The merged call graph for one mixed method.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallGraph {
    /// The mixed method the graph was built for.
    pub root: Option<CallGraphNode>,
    /// Participation counts per node.
    pub nodes: HashMap<CallGraphNode, NodeParticipation>,
    /// Caller → callee edges (edges point from the outer frame to the inner
    /// frame, i.e. towards the request).
    pub edges: HashSet<(CallGraphNode, CallGraphNode)>,
}

impl CallGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The divergence points: nodes that participate only in tracking
    /// traces, sorted by how many tracking traces they appear in
    /// (descending) so the most load-bearing candidate comes first.
    pub fn divergence_points(&self) -> Vec<(&CallGraphNode, &NodeParticipation)> {
        let mut out: Vec<(&CallGraphNode, &NodeParticipation)> = self
            .nodes
            .iter()
            .filter(|(_, p)| p.tracking_only())
            .collect();
        out.sort_by(|a, b| {
            b.1.tracking_traces
                .cmp(&a.1.tracking_traces)
                .then_with(|| a.0.cmp(b.0))
        });
        out
    }

    /// Nodes that participate in both kinds of trace (rendered yellow in the
    /// paper's Figure 5).
    pub fn shared_nodes(&self) -> Vec<&CallGraphNode> {
        let mut out: Vec<&CallGraphNode> = self
            .nodes
            .iter()
            .filter(|(_, p)| p.both())
            .map(|(n, _)| n)
            .collect();
        out.sort();
        out
    }
}

/// Result of analysing every mixed method in a request set.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallStackAnalysis {
    /// Per-mixed-method call graphs, keyed by `(script, method)`.
    pub graphs: Vec<(CallGraphNode, CallGraph)>,
}

impl CallStackAnalysis {
    /// Number of mixed methods analysed.
    pub fn mixed_methods(&self) -> usize {
        self.graphs.len()
    }

    /// Number of mixed methods for which at least one divergence point was
    /// found (i.e. the tracking behaviour is separable by stack analysis).
    pub fn separable_methods(&self) -> usize {
        self.graphs
            .iter()
            .filter(|(_, g)| !g.divergence_points().is_empty())
            .count()
    }

    /// Share of mixed methods that are separable, in percent.
    pub fn separable_share(&self) -> f64 {
        if self.graphs.is_empty() {
            return 0.0;
        }
        100.0 * self.separable_methods() as f64 / self.graphs.len() as f64
    }
}

/// Build the call graph for one mixed method from the requests it initiated.
///
/// Every request contributes its full stack as a path; the innermost frame
/// is the initiating method itself. Async parent frames are included — the
/// paper prepends the preceding stack for asynchronous requests precisely so
/// this analysis sees the full ancestry.
pub fn build_call_graph<'a>(
    script_url: &str,
    method: &str,
    requests: impl Iterator<Item = &'a LabeledRequest>,
) -> CallGraph {
    let mut graph = CallGraph {
        root: Some(CallGraphNode {
            script_url: script_url.to_string(),
            method: method.to_string(),
        }),
        ..CallGraph::default()
    };
    for request in requests {
        let tracking = request.is_tracking();
        // Frames innermost-first; build nodes and caller→callee edges.
        let nodes: Vec<CallGraphNode> = request
            .stack
            .iter()
            .map(|f| CallGraphNode {
                script_url: f.script_url.clone(),
                method: f.method.clone(),
            })
            .collect();
        for node in &nodes {
            let entry = graph.nodes.entry(node.clone()).or_default();
            if tracking {
                entry.tracking_traces += 1;
            } else {
                entry.functional_traces += 1;
            }
        }
        for window in nodes.windows(2) {
            // window[0] is inner (callee), window[1] is its caller.
            graph.edges.insert((window[1].clone(), window[0].clone()));
        }
    }
    graph
}

/// Analyse every mixed method: group the given requests (those initiated by
/// mixed methods, i.e. the unattributed residue of the hierarchy) by their
/// interned `(script, method)` key and build one call graph per key.
///
/// Grouping goes through a [`KeyInterner`], so each request costs two hash
/// lookups on `Copy` symbols instead of cloning its `(String, String)` pair.
pub fn analyze_mixed_methods(residue: &[&LabeledRequest]) -> CallStackAnalysis {
    let mut interner = KeyInterner::new();
    let mut by_method: HashMap<ResourceKey, Vec<&LabeledRequest>> = HashMap::new();
    for request in residue {
        let key = interner.intern_method(&request.initiator_script, &request.initiator_method);
        by_method.entry(key).or_default().push(request);
    }
    let mut graphs: Vec<(CallGraphNode, CallGraph)> = by_method
        .into_values()
        .map(|requests| {
            let first = requests[0];
            let node = CallGraphNode {
                script_url: first.initiator_script.clone(),
                method: first.initiator_method.clone(),
            };
            let graph = build_call_graph(&node.script_url, &node.method, requests.into_iter());
            (node, graph)
        })
        .collect();
    graphs.sort_by(|a, b| a.0.cmp(&b.0));
    CallStackAnalysis { graphs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabeledFrame;
    use filterlist::{RequestLabel, ResourceType};

    /// Reproduce the paper's Figure 5 example: requests `ads-2` (tracking)
    /// and `nonads-2` (functional) are both initiated by `clone.js m2`, but
    /// the tracking trace goes through `track.js t` while the functional
    /// trace goes through `get.js a` and `user.js k`.
    fn figure5_requests() -> Vec<LabeledRequest> {
        let mk = |url: &str, tracking: bool, stack: Vec<(&str, &str)>| LabeledRequest {
            request_id: 0,
            top_level_url: "https://test.com/".into(),
            site_domain: "test.com".into(),
            url: url.into(),
            domain: "google.com".into(),
            hostname: "cdn.google.com".into(),
            resource_type: ResourceType::Xhr,
            initiator_script: stack[0].0.into(),
            initiator_method: stack[0].1.into(),
            stack: stack
                .iter()
                .map(|(s, m)| LabeledFrame {
                    script_url: (*s).into(),
                    method: (*m).into(),
                })
                .collect(),
            async_boundary: None,
            label: if tracking {
                RequestLabel::Tracking
            } else {
                RequestLabel::Functional
            },
        };
        vec![
            mk(
                "https://cdn.google.com/ads-2",
                true,
                vec![
                    ("https://test.com/clone.js", "m2"),
                    ("https://ads.com/track.js", "t"),
                ],
            ),
            mk(
                "https://cdn.google.com/nonads-2",
                false,
                vec![
                    ("https://test.com/clone.js", "m2"),
                    ("https://test.com/user.js", "k"),
                    ("https://test.com/get.js", "a"),
                ],
            ),
        ]
    }

    #[test]
    fn figure5_divergence_point_is_track_js_t() {
        let requests = figure5_requests();
        let refs: Vec<&LabeledRequest> = requests.iter().collect();
        let analysis = analyze_mixed_methods(&refs);
        assert_eq!(analysis.mixed_methods(), 1);
        let (_, graph) = &analysis.graphs[0];
        // m2 participates in both traces.
        let shared = graph.shared_nodes();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].method, "m2");
        // The divergence points include track.js t (tracking-only) and not
        // user.js / get.js (functional-only).
        let divergence = graph.divergence_points();
        assert_eq!(divergence.len(), 1);
        assert_eq!(divergence[0].0.script_url, "https://ads.com/track.js");
        assert_eq!(divergence[0].0.method, "t");
        assert_eq!(analysis.separable_methods(), 1);
        assert!((analysis.separable_share() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn call_graph_edges_follow_caller_to_callee() {
        let requests = figure5_requests();
        let graph = build_call_graph("https://test.com/clone.js", "m2", requests.iter());
        // track.js t  ->  clone.js m2 (t calls... actually m2 calls are
        // inner; the edge points from the outer frame to the inner frame).
        let t = CallGraphNode {
            script_url: "https://ads.com/track.js".into(),
            method: "t".into(),
        };
        let m2 = CallGraphNode {
            script_url: "https://test.com/clone.js".into(),
            method: "m2".into(),
        };
        assert!(graph.edges.contains(&(t, m2)));
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.edge_count(), 3);
    }

    #[test]
    fn no_divergence_when_both_traces_are_identical() {
        // If tracking and functional requests share the exact same stack,
        // no node is tracking-only and stack analysis cannot separate them.
        let mut requests = figure5_requests();
        requests[0].stack = requests[1].stack.clone();
        let refs: Vec<&LabeledRequest> = requests.iter().collect();
        let analysis = analyze_mixed_methods(&refs);
        let (_, graph) = &analysis.graphs[0];
        assert!(graph.divergence_points().is_empty());
        assert_eq!(analysis.separable_methods(), 0);
    }

    #[test]
    fn empty_residue_is_handled() {
        let analysis = analyze_mixed_methods(&[]);
        assert_eq!(analysis.mixed_methods(), 0);
        assert_eq!(analysis.separable_share(), 0.0);
    }
}
