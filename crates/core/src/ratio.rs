//! The classification ratio and threshold (paper §4, Equation 1).
//!
//! For every resource (domain, hostname, script, or method) TrackerSift
//! counts the tracking and functional requests attributed to it and computes
//! the common logarithm of their ratio:
//!
//! ```text
//! ratio = log10(#tracking / #functional)
//! ```
//!
//! Resources with `ratio ≥ 2` triggered at least 100× more tracking than
//! functional requests and are classified **tracking**; `ratio ≤ -2` is
//! **functional**; anything in between is **mixed** and is pushed down to
//! the next finer granularity. The threshold is configurable because the
//! paper's Figure 4 sweeps it from 1.0 to 3.0.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification outcome for a resource at some granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Classification {
    /// Overwhelmingly tracking (`ratio ≥ threshold`).
    Tracking,
    /// Overwhelmingly functional (`ratio ≤ -threshold`).
    Functional,
    /// Serves both: cannot be safely blocked or allowed.
    Mixed,
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Classification::Tracking => f.write_str("tracking"),
            Classification::Functional => f.write_str("functional"),
            Classification::Mixed => f.write_str("mixed"),
        }
    }
}

/// Request counts accumulated for one resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    /// Number of tracking-labeled requests.
    pub tracking: u64,
    /// Number of functional-labeled requests.
    pub functional: u64,
}

impl Counts {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counts::default()
    }

    /// Record one request with the given label.
    pub fn record(&mut self, tracking: bool) {
        if tracking {
            self.tracking += 1;
        } else {
            self.functional += 1;
        }
    }

    /// Total requests observed.
    pub fn total(&self) -> u64 {
        self.tracking + self.functional
    }

    /// `true` when no request has been recorded. Empty counters classify to
    /// `None`; the incremental [`Sifter`](crate::service::Sifter) uses this
    /// as the "not a member of this level" test.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: Counts) {
        self.tracking += other.tracking;
        self.functional += other.functional;
    }

    /// The common-log ratio of Equation 1.
    ///
    /// Edge cases follow the natural limit reading the paper uses when
    /// plotting Figure 3: a resource with zero functional requests has ratio
    /// `+∞`, zero tracking requests `-∞`, and a resource with no requests at
    /// all is undefined (`None`).
    pub fn log_ratio(&self) -> Option<f64> {
        match (self.tracking, self.functional) {
            (0, 0) => None,
            (0, _) => Some(f64::NEG_INFINITY),
            (_, 0) => Some(f64::INFINITY),
            (t, f) => Some((t as f64 / f as f64).log10()),
        }
    }

    /// Classify under the given (symmetric) threshold.
    ///
    /// Returns `None` for resources that received no requests.
    pub fn classify(&self, threshold: f64) -> Option<Classification> {
        let ratio = self.log_ratio()?;
        Some(if ratio >= threshold {
            Classification::Tracking
        } else if ratio <= -threshold {
            Classification::Functional
        } else {
            Classification::Mixed
        })
    }
}

/// Classification thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// The symmetric threshold on the common-log ratio. The paper's default
    /// is 2 (i.e. 100×).
    pub log_ratio: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds { log_ratio: 2.0 }
    }
}

impl Thresholds {
    /// The paper's default threshold of (-2, 2).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A custom symmetric threshold (used by the Figure 4 sweep).
    pub fn new(log_ratio: f64) -> Self {
        assert!(log_ratio > 0.0, "threshold must be positive");
        Thresholds { log_ratio }
    }

    /// Classify a counter under this threshold.
    pub fn classify(&self, counts: &Counts) -> Option<Classification> {
        counts.classify(self.log_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(t: u64, f: u64) -> Counts {
        Counts {
            tracking: t,
            functional: f,
        }
    }

    #[test]
    fn pure_resources_classify_at_extremes() {
        let th = Thresholds::paper();
        assert_eq!(th.classify(&counts(10, 0)), Some(Classification::Tracking));
        assert_eq!(
            th.classify(&counts(0, 10)),
            Some(Classification::Functional)
        );
        assert_eq!(th.classify(&counts(0, 0)), None);
    }

    #[test]
    fn hundredfold_dominance_is_required() {
        let th = Thresholds::paper();
        // Exactly 100x -> log10(100) = 2 -> tracking (inclusive bound).
        assert_eq!(th.classify(&counts(100, 1)), Some(Classification::Tracking));
        assert_eq!(th.classify(&counts(99, 1)), Some(Classification::Mixed));
        assert_eq!(
            th.classify(&counts(1, 100)),
            Some(Classification::Functional)
        );
        assert_eq!(th.classify(&counts(1, 99)), Some(Classification::Mixed));
        assert_eq!(th.classify(&counts(5, 5)), Some(Classification::Mixed));
    }

    #[test]
    fn log_ratio_matches_equation_one() {
        assert!((counts(1000, 10).log_ratio().unwrap() - 2.0).abs() < 1e-12);
        assert!((counts(10, 1000).log_ratio().unwrap() + 2.0).abs() < 1e-12);
        assert_eq!(counts(3, 0).log_ratio(), Some(f64::INFINITY));
        assert_eq!(counts(0, 3).log_ratio(), Some(f64::NEG_INFINITY));
        assert_eq!(counts(0, 0).log_ratio(), None);
    }

    #[test]
    fn lower_threshold_shrinks_the_mixed_band() {
        let strict = Thresholds::new(1.0);
        assert_eq!(
            strict.classify(&counts(50, 1)),
            Some(Classification::Tracking)
        );
        assert_eq!(
            Thresholds::paper().classify(&counts(50, 1)),
            Some(Classification::Mixed)
        );
    }

    #[test]
    fn record_and_merge() {
        let mut c = Counts::new();
        c.record(true);
        c.record(true);
        c.record(false);
        let mut d = Counts::new();
        d.record(false);
        c.merge(d);
        assert_eq!(c, counts(2, 2));
        assert_eq!(c.total(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = Thresholds::new(0.0);
    }
}
