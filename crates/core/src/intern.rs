//! Resource-key interning for the classification hot path.
//!
//! Every stage of the hierarchy groups millions of requests by string keys —
//! domains, hostnames, script URLs, and `script :: method` pairs. Building
//! an owned `String` per request (four separate `format!("{} :: {}", …)`
//! call sites in the original pipeline) dominates the method-granularity hot
//! path. A [`KeyInterner`] replaces those allocations with cheap [`ResourceKey`]
//! symbols: each distinct string is stored once and every subsequent
//! occurrence resolves to a `Copy` integer id with a single hash lookup and
//! zero allocation.
//!
//! Method keys are composed through [`ResourceKey::method_label`] — the one
//! shared constructor of the `script :: method` format — so producers
//! (hierarchy grouping) and consumers (call-stack residue filtering,
//! surrogate lookup) can never drift apart on the key format. Interning a
//! `(script, method)` pair via [`KeyInterner::intern_method`] does not build
//! the composed string at all once the pair has been seen: the pair of
//! symbol ids is the cache key.

use filterlist::tokens::TokenHashBuilder;
use std::collections::HashMap;
use std::sync::Arc;

/// A `Copy` symbol standing for one interned resource-key string.
///
/// Keys are only meaningful relative to the [`KeyInterner`] that produced
/// them. Ids are assigned in first-seen order, so iterating an interner
/// yields a stable, deterministic ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceKey(u32);

impl ResourceKey {
    /// The separator between the script URL and the method name in a
    /// method-granularity key.
    pub const METHOD_SEPARATOR: &'static str = " :: ";

    /// The one shared constructor of the method-granularity key format.
    ///
    /// Every producer and consumer of `script :: method` keys goes through
    /// this function (directly or via [`KeyInterner::intern_method`]), so
    /// the format cannot drift between the hierarchy, the call-stack
    /// analysis, and the surrogate generator.
    pub fn method_label(script_url: &str, method: &str) -> String {
        let mut out =
            String::with_capacity(script_url.len() + Self::METHOD_SEPARATOR.len() + method.len());
        out.push_str(script_url);
        out.push_str(Self::METHOD_SEPARATOR);
        out.push_str(method);
        out
    }

    /// The position of this key in its interner's first-seen order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A key with an explicit index, for unit tests that exercise
    /// key-indexed structures without an interner.
    #[cfg(test)]
    pub(crate) fn test_key(index: u32) -> Self {
        ResourceKey(index)
    }
}

/// Read-only resolution of verdict-query strings to [`ResourceKey`]s — the
/// lookup half of an interner, without the ability to intern.
///
/// Two implementations exist: the live [`KeyInterner`] (used by the
/// single-threaded [`Sifter`](crate::service::Sifter), whose interner keeps
/// growing between commits) and the immutable [`FrozenKeys`] view carried by
/// every published [`VerdictTable`](crate::table::VerdictTable) (used by
/// concurrent readers, which must never race the writer's interner). The
/// shared verdict walk is generic over this trait, so both paths read
/// through one implementation.
pub trait KeyResolver {
    /// Look up a string's key without interning it.
    fn key(&self, key: &str) -> Option<ResourceKey>;

    /// Look up the composed method key of an already-resolved
    /// `(script, method-name)` pair without building the
    /// `script :: method` string.
    fn method_key(&self, script: ResourceKey, name: ResourceKey) -> Option<ResourceKey>;
}

/// An immutable, cheaply shareable snapshot of a [`KeyInterner`]'s lookup
/// state: string → key plus the `(script, name)` → method-key pair cache.
///
/// A [`VerdictTable`](crate::table::VerdictTable) pins one of these so a
/// concurrent reader resolves query strings against exactly the key space
/// its dense class arrays were built for — keys interned after the freeze
/// simply miss, which the verdict walk already treats as "not observed".
/// Freezing clones the two lookup maps (the `Arc<str>` key storage is
/// shared, not copied); the writer re-freezes only when the interner has
/// actually grown since the last published table.
#[derive(Debug, Clone, Default)]
pub struct FrozenKeys {
    lookup: HashMap<Arc<str>, ResourceKey, TokenHashBuilder>,
    method_pairs: HashMap<(ResourceKey, ResourceKey), ResourceKey, TokenHashBuilder>,
    /// id → string in first-seen order (shared storage with the interner),
    /// so the snapshot can be exported as a dense id table and untrusted
    /// numeric ids can be bounds-checked back into [`ResourceKey`]s.
    strings: Vec<Arc<str>>,
}

impl FrozenKeys {
    /// Number of distinct keys the snapshot resolves.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` when the snapshot resolves no keys at all.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Number of `(script, name)` pairs the snapshot resolves.
    pub fn pair_count(&self) -> usize {
        self.method_pairs.len()
    }

    /// Bounds-check an untrusted numeric id (e.g. from a binary wire
    /// request) into a [`ResourceKey`] of this snapshot. `None` for ids the
    /// snapshot never assigned — the safe "unknown key" answer, never a
    /// panic.
    pub fn key_for_id(&self, id: u32) -> Option<ResourceKey> {
        ((id as usize) < self.strings.len()).then_some(ResourceKey(id))
    }

    /// Iterate `(key, string)` pairs in dense id order — the export shape
    /// of a key-interning handshake (`GET /v1/keys`).
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKey, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (ResourceKey(i as u32), s.as_ref()))
    }

    /// The string of a dense key id, shared (refcount bump, no copy), or
    /// `None` for ids the snapshot never assigned. This is how revision
    /// diffs resolve changed class-table slots back to key strings.
    pub fn shared_string_for_id(&self, id: u32) -> Option<Arc<str>> {
        self.strings.get(id as usize).cloned()
    }
}

impl KeyResolver for FrozenKeys {
    fn key(&self, key: &str) -> Option<ResourceKey> {
        self.lookup.get(key).copied()
    }

    fn method_key(&self, script: ResourceKey, name: ResourceKey) -> Option<ResourceKey> {
        self.method_pairs.get(&(script, name)).copied()
    }
}

/// An append-only string interner for resource keys.
///
/// Both internal maps use the cheap FNV-based
/// [`TokenHashBuilder`] rather than SipHash: interning sits on the hot
/// paths of the labeling memo cache and the classification stage, where
/// hash-flooding resistance buys nothing and the default hasher's setup
/// cost is measurable.
#[derive(Debug, Clone, Default)]
pub struct KeyInterner {
    /// string → id. `Arc<str>` shares storage with `strings`.
    lookup: HashMap<Arc<str>, ResourceKey, TokenHashBuilder>,
    /// `(script id, method id)` → composed method-key id. Lets repeated
    /// method-key interning skip building the composed string entirely.
    method_pairs: HashMap<(ResourceKey, ResourceKey), ResourceKey, TokenHashBuilder>,
    /// id → string, in first-seen order.
    strings: Vec<Arc<str>>,
}

impl KeyInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `capacity` distinct keys.
    pub fn with_capacity(capacity: usize) -> Self {
        KeyInterner {
            lookup: HashMap::with_capacity_and_hasher(capacity, TokenHashBuilder),
            method_pairs: HashMap::default(),
            strings: Vec::with_capacity(capacity),
        }
    }

    /// Intern a string, returning its symbol. Allocates only the first time
    /// a given string is seen.
    pub fn intern(&mut self, key: &str) -> ResourceKey {
        if let Some(&id) = self.lookup.get(key) {
            return id;
        }
        let id = ResourceKey(
            u32::try_from(self.strings.len()).expect("more than u32::MAX interned keys"),
        );
        let stored: Arc<str> = Arc::from(key);
        self.strings.push(Arc::clone(&stored));
        self.lookup.insert(stored, id);
        id
    }

    /// Intern the method-granularity key for a `(script, method)` pair.
    ///
    /// After the first occurrence of a pair, this is two hash lookups on
    /// `Copy` keys — the composed `script :: method` string is never rebuilt.
    pub fn intern_method(&mut self, script_url: &str, method: &str) -> ResourceKey {
        let pair = (self.intern(script_url), self.intern(method));
        if let Some(&id) = self.method_pairs.get(&pair) {
            return id;
        }
        let composed = ResourceKey::method_label(script_url, method);
        let id = self.intern(&composed);
        self.method_pairs.insert(pair, id);
        id
    }

    /// Look up a string without interning it.
    pub fn get(&self, key: &str) -> Option<ResourceKey> {
        self.lookup.get(key).copied()
    }

    /// Look up the method-granularity key of a `(script, method)` pair
    /// without interning — and without building the composed
    /// `script :: method` string: three borrowed hash probes, zero
    /// allocation. This is the serving hot path of
    /// [`Sifter::verdict`](crate::service::Sifter::verdict).
    ///
    /// Returns `None` for pairs never seen by [`KeyInterner::intern_method`]
    /// (interning only the composed string does not file the pair).
    pub fn get_method(&self, script_url: &str, method: &str) -> Option<ResourceKey> {
        let pair = (self.get(script_url)?, self.get(method)?);
        self.method_pairs.get(&pair).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `key` came from a different interner and is out of range.
    pub fn resolve(&self, key: ResourceKey) -> &str {
        &self.strings[key.index()]
    }

    /// Resolve a symbol to a shared handle on its string — a refcount bump,
    /// no copy. Lets callers holding a lock around the interner defer any
    /// real string copy until after the lock is released.
    ///
    /// # Panics
    /// Panics if `key` came from a different interner and is out of range.
    pub fn resolve_shared(&self, key: ResourceKey) -> Arc<str> {
        Arc::clone(&self.strings[key.index()])
    }

    /// Snapshot the lookup state as an immutable [`FrozenKeys`] view. See
    /// the [`FrozenKeys`] docs for cost and staleness semantics.
    pub fn freeze(&self) -> FrozenKeys {
        FrozenKeys {
            lookup: self.lookup.clone(),
            method_pairs: self.method_pairs.clone(),
            strings: self.strings.clone(),
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Number of `(script, name)` method pairs filed by
    /// [`KeyInterner::intern_method`]. Together with [`KeyInterner::len`]
    /// this tells a cached [`FrozenKeys`] whether it is stale.
    pub fn pair_count(&self) -> usize {
        self.method_pairs.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(key, string)` pairs in first-seen (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKey, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (ResourceKey(i as u32), s.as_ref()))
    }
}

impl KeyResolver for KeyInterner {
    fn key(&self, key: &str) -> Option<ResourceKey> {
        self.lookup.get(key).copied()
    }

    fn method_key(&self, script: ResourceKey, name: ResourceKey) -> Option<ResourceKey> {
        self.method_pairs.get(&(script, name)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_resolves_to_the_original_string() {
        let mut interner = KeyInterner::new();
        let keys = ["google.com", "cdn.google.com", "https://x.com/a.js"];
        let ids: Vec<ResourceKey> = keys.iter().map(|k| interner.intern(k)).collect();
        for (key, id) in keys.iter().zip(&ids) {
            assert_eq!(interner.resolve(*id), *key);
        }
    }

    #[test]
    fn interning_deduplicates() {
        let mut interner = KeyInterner::new();
        let a = interner.intern("ads.com");
        let b = interner.intern("news.com");
        let a2 = interner.intern("ads.com");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolved_keys_keep_stable_first_seen_ordering() {
        let mut interner = KeyInterner::new();
        for key in ["zeta", "alpha", "mid", "alpha", "zeta"] {
            interner.intern(key);
        }
        let in_order: Vec<&str> = interner.iter().map(|(_, s)| s).collect();
        assert_eq!(in_order, vec!["zeta", "alpha", "mid"]);
        let indices: Vec<usize> = interner.iter().map(|(k, _)| k.index()).collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn method_keys_match_the_shared_constructor() {
        let mut interner = KeyInterner::new();
        let id = interner.intern_method("https://x.com/clone.js", "m2");
        assert_eq!(
            interner.resolve(id),
            ResourceKey::method_label("https://x.com/clone.js", "m2")
        );
        assert_eq!(interner.resolve(id), "https://x.com/clone.js :: m2");
    }

    #[test]
    fn method_pair_interning_is_idempotent_and_matches_string_interning() {
        let mut interner = KeyInterner::new();
        let via_pair = interner.intern_method("s.js", "run");
        let via_pair_again = interner.intern_method("s.js", "run");
        let via_string = interner.intern(&ResourceKey::method_label("s.js", "run"));
        assert_eq!(via_pair, via_pair_again);
        assert_eq!(via_pair, via_string);
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = KeyInterner::new();
        assert_eq!(interner.get("missing"), None);
        let id = interner.intern("present");
        assert_eq!(interner.get("present"), Some(id));
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn frozen_keys_resolve_exactly_the_state_at_freeze_time() {
        let mut interner = KeyInterner::new();
        let d = interner.intern("ads.com");
        let m = interner.intern_method("s.js", "run");
        let frozen = interner.freeze();
        assert_eq!(frozen.len(), interner.len());
        assert_eq!(frozen.pair_count(), interner.pair_count());
        assert!(!frozen.is_empty());

        // Everything present at freeze time resolves identically through
        // both KeyResolver implementations.
        assert_eq!(frozen.key("ads.com"), Some(d));
        assert_eq!(KeyResolver::key(&interner, "ads.com"), Some(d));
        let s = interner.get("s.js").unwrap();
        let name = interner.get("run").unwrap();
        assert_eq!(frozen.method_key(s, name), Some(m));
        assert_eq!(KeyResolver::method_key(&interner, s, name), Some(m));

        // Keys interned after the freeze miss in the frozen view but hit in
        // the live interner — the staleness the pair/len counters detect.
        let late = interner.intern("late.com");
        assert_eq!(frozen.key("late.com"), None);
        assert_eq!(KeyResolver::key(&interner, "late.com"), Some(late));
        assert_ne!(frozen.len(), interner.len());
    }

    #[test]
    fn frozen_keys_export_a_dense_bounds_checked_id_table() {
        let mut interner = KeyInterner::new();
        for key in ["ads.com", "px.ads.com", "s.js"] {
            interner.intern(key);
        }
        let frozen = interner.freeze();
        let table: Vec<(usize, &str)> = frozen.iter().map(|(k, s)| (k.index(), s)).collect();
        assert_eq!(table, vec![(0, "ads.com"), (1, "px.ads.com"), (2, "s.js")]);
        // Ids round-trip through the bounds check; out-of-range ids miss
        // instead of panicking.
        for (key, string) in frozen.iter() {
            let id = key.index() as u32;
            assert_eq!(frozen.key_for_id(id), Some(key));
            assert_eq!(frozen.key(string), Some(key));
        }
        assert_eq!(frozen.key_for_id(3), None);
        assert_eq!(frozen.key_for_id(u32::MAX), None);
    }

    #[test]
    fn get_method_resolves_pairs_without_interning() {
        let mut interner = KeyInterner::new();
        assert_eq!(interner.get_method("s.js", "run"), None);
        let id = interner.intern_method("s.js", "run");
        let len = interner.len();
        assert_eq!(interner.get_method("s.js", "run"), Some(id));
        assert_eq!(interner.get_method("s.js", "other"), None);
        assert_eq!(interner.get_method("other.js", "run"), None);
        assert_eq!(interner.len(), len, "get_method must not intern");
    }
}
