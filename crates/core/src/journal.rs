//! Write-ahead observation journal: crash durability for the serving
//! state.
//!
//! A [`Sifter`](crate::service::Sifter) behind a
//! [`SifterWriter`](crate::concurrent::SifterWriter) accumulates
//! observations in memory and folds them in at `commit()`; a process crash
//! between snapshots silently loses everything since the last export. The
//! [`Journal`] closes that gap with the classic write-ahead discipline:
//! every observation is appended (and periodically fsynced) to an
//! append-only log *before* it mutates writer state, commits append a
//! marker and force an fsync, and boot replays the log on top of the last
//! snapshot. `kill -9` at any instant loses at most the un-fsynced tail.
//!
//! # Record format
//!
//! The journal is a flat sequence of length-prefixed, checksummed frames
//! (all integers little-endian):
//!
//! | bytes | field |
//! |---|---|
//! | 4 | `len` — payload length |
//! | `len` | payload (first byte is the record kind) |
//! | 8 | FNV-1a 64 checksum of the payload ([`filterlist::tokens::fnv1a64`], the same hash the filter index uses) |
//!
//! Payloads (strings are `u32`-length-prefixed UTF-8):
//!
//! | kind | record | payload after the kind byte |
//! |---|---|---|
//! | `1` | [`JournalEntry::Parts`] | 4 strings + `u8` tracking flag |
//! | `2` | [`JournalEntry::Url`] | url, source hostname, resource-type option name, script, method |
//! | `3` | [`JournalEntry::Commit`] | `u64` published version |
//! | `4` | [`JournalEntry::Revision`] | `u64` version + per-key class changes + touched plan keys |
//!
//! # Torn-write recovery
//!
//! A crash mid-append leaves a *torn tail*: a frame with a short length
//! prefix, a truncated payload, or a checksum that does not match.
//! [`Journal::replay`] is deliberately forgiving about exactly that shape
//! of damage and strict about everything else: it decodes frames from the
//! start, **stops at the first bad checksum or short frame** and reports
//! the clean prefix — it never errors on a valid prefix, and never
//! "recovers" a record whose checksum fails. [`Journal::recover`]
//! additionally truncates the file back to the clean prefix so appends
//! resume from a consistent point. The fault-injection suite proves the
//! property by replaying journals truncated at *every* byte offset.

use crate::failpoint;
use crate::hierarchy::Granularity;
use crate::ratio::Classification;
use crate::revision::{ChangeKind, RevisionChange, VerdictRevision};
use filterlist::tokens::fnv1a64;
use filterlist::ResourceType;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Hard cap on one record's payload — a torn or corrupt length prefix
/// claiming gigabytes must read as "torn tail", not as an allocation.
const MAX_PAYLOAD_BYTES: u32 = 16 * 1024 * 1024;

const KIND_PARTS: u8 = 1;
const KIND_URL: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_REVISION: u8 = 4;

/// Wire code of an optional classification (`0` = absent / not a member).
fn class_code(class: Option<Classification>) -> u8 {
    match class {
        None => 0,
        Some(Classification::Tracking) => 1,
        Some(Classification::Functional) => 2,
        Some(Classification::Mixed) => 3,
    }
}

fn class_of_code(code: u8) -> Option<Option<Classification>> {
    match code {
        0 => Some(None),
        1 => Some(Some(Classification::Tracking)),
        2 => Some(Some(Classification::Functional)),
        3 => Some(Some(Classification::Mixed)),
        _ => None,
    }
}

/// One replayed journal record, in append order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// A pre-labeled observation
    /// ([`SifterWriter::observe_parts`](crate::concurrent::SifterWriter::observe_parts)).
    Parts {
        /// Registrable domain.
        domain: String,
        /// Full hostname.
        hostname: String,
        /// Initiating script URL.
        script: String,
        /// Initiating method name.
        method: String,
        /// The oracle label.
        tracking: bool,
    },
    /// A raw-URL observation
    /// ([`SifterWriter::observe_url`](crate::concurrent::SifterWriter::observe_url))
    /// — replayed through the same labeling path, so recovery is
    /// deterministic for a writer configured with the same engine.
    Url {
        /// The raw request URL.
        url: String,
        /// Hostname of the page issuing the request.
        source_hostname: String,
        /// Resource type of the request.
        resource_type: ResourceType,
        /// Initiating script URL.
        script: String,
        /// Initiating method name.
        method: String,
    },
    /// A commit marker: every observation before it was folded into the
    /// servable state as the given published version.
    Commit {
        /// The published table version this commit produced.
        version: u64,
    },
    /// A revision-ring entry: the per-key class changes (and touched
    /// surrogate plans) one commit produced. Written after each commit's
    /// fold, and re-seeded into a fresh generation's journal by
    /// [`SifterWriter::checkpoint`](crate::concurrent::SifterWriter::checkpoint),
    /// so a restarted primary still answers `?diff=` spans from before the
    /// crash instead of collapsing its history to one recovery revision.
    Revision {
        /// The recorded revision, exactly as the ring held it.
        revision: VerdictRevision,
    },
}

/// What a replay found: how much of the file was a clean prefix and what
/// (if anything) was torn off the tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records decoded from the clean prefix.
    pub records: u64,
    /// Commit markers among them.
    pub commits: u64,
    /// Bytes of clean prefix (the recovery truncation point).
    pub valid_bytes: u64,
    /// Bytes past the clean prefix (the torn tail; `0` for a clean log).
    pub torn_bytes: u64,
}

/// Counters describing a journal's lifetime activity, surfaced through
/// `GET /v1/stats` on a durable verdict server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since open.
    pub appended: u64,
    /// Records guaranteed on disk (covered by a completed fsync).
    pub synced: u64,
    /// `fsync` calls issued.
    pub syncs: u64,
    /// Appends or flushes that failed with an I/O error (degraded
    /// durability: serving continues, the record is not journaled).
    pub write_errors: u64,
    /// `fsync` failures (the batch stays unsynced until a later sync
    /// succeeds).
    pub sync_errors: u64,
    /// Rotations (truncations after a successful checkpoint).
    pub rotations: u64,
    /// Bytes currently in the journal file (including unflushed buffer).
    pub bytes: u64,
}

/// An append-only, checksummed write-ahead log of observations and commit
/// markers; see the [module docs](self) for the format and recovery
/// semantics.
///
/// Appends are buffered in memory and flushed to the file either when the
/// batch threshold (`sync_every` records) is reached or when a commit
/// marker forces a sync — the fsync batching that makes journaling cheap
/// on the ingest path.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    /// Appended-but-unflushed frame bytes.
    buffer: Vec<u8>,
    /// Records buffered since the last completed fsync.
    unsynced: u64,
    /// Force a sync once this many records are unsynced.
    sync_every: u64,
    /// Bytes durably in the file (flushed; not necessarily fsynced).
    file_bytes: u64,
    /// A simulated crash (failpoint byte-budget cut) wedged the file:
    /// later writes are dropped, as they would be after the real crash.
    wedged: bool,
    stats: JournalStats,
}

impl Journal {
    /// Open (creating if absent) the journal at `path` for appending,
    /// *without* replaying it — use [`Journal::recover`] on boot. Existing
    /// bytes are preserved; appends go to the end.
    pub fn open(path: impl Into<PathBuf>, sync_every: u64) -> io::Result<Journal> {
        failpoint::check_io("journal.open")?;
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        let file_bytes = file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            path,
            file,
            buffer: Vec::new(),
            unsynced: 0,
            sync_every: sync_every.max(1),
            file_bytes,
            wedged: false,
            stats: JournalStats {
                bytes: file_bytes,
                ..JournalStats::default()
            },
        })
    }

    /// Replay the journal at `path` without modifying it: decode the clean
    /// prefix, stop at the first bad checksum or short frame. A missing
    /// file is an empty journal, not an error.
    pub fn replay(path: &Path) -> io::Result<(Vec<JournalEntry>, ReplayReport)> {
        failpoint::check_io("journal.open")?;
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(error) if error.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(error) => return Err(error),
        };
        Ok(Self::replay_bytes(&bytes))
    }

    /// [`Journal::replay`] over an in-memory image (the truncation
    /// property tests drive this directly).
    pub fn replay_bytes(bytes: &[u8]) -> (Vec<JournalEntry>, ReplayReport) {
        let mut entries = Vec::new();
        let mut report = ReplayReport::default();
        let mut at = 0usize;
        while let Some(len_bytes) = bytes.get(at..at + 4) {
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            if len == 0 || len > MAX_PAYLOAD_BYTES as usize {
                break;
            }
            let Some(payload) = bytes.get(at + 4..at + 4 + len) else {
                break;
            };
            let Some(checksum_bytes) = bytes.get(at + 4 + len..at + 12 + len) else {
                break;
            };
            let checksum = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
            if fnv1a64(payload) != checksum {
                break;
            }
            // The checksum held, so the payload is exactly what was
            // appended; a payload that still fails to decode is treated as
            // end-of-clean-prefix too (replay never errors).
            let Some(entry) = decode_payload(payload) else {
                break;
            };
            if matches!(entry, JournalEntry::Commit { .. }) {
                report.commits += 1;
            }
            entries.push(entry);
            report.records += 1;
            at += 12 + len;
        }
        report.valid_bytes = at as u64;
        report.torn_bytes = bytes.len() as u64 - at as u64;
        (entries, report)
    }

    /// Open the journal at `path`, replay its clean prefix, and truncate
    /// any torn tail so appends resume from a consistent point. Returns
    /// the journal positioned at the end of the clean prefix plus the
    /// replayed entries for the caller to apply.
    pub fn recover(
        path: impl Into<PathBuf>,
        sync_every: u64,
    ) -> io::Result<(Journal, Vec<JournalEntry>, ReplayReport)> {
        let path = path.into();
        let (entries, report) = Self::replay(&path)?;
        let mut journal = Self::open(&path, sync_every)?;
        if report.torn_bytes > 0 {
            journal.file.set_len(report.valid_bytes)?;
            journal.file.seek(SeekFrom::End(0))?;
            journal.file_bytes = report.valid_bytes;
            journal.stats.bytes = report.valid_bytes;
        }
        Ok((journal, entries, report))
    }

    /// Append one record (buffered; see the batching rules in the type
    /// docs). Errors are also counted in [`JournalStats::write_errors`] so
    /// a caller that chooses to keep serving still surfaces the degraded
    /// durability.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        if let Err(error) = failpoint::check_io("journal.append") {
            self.stats.write_errors += 1;
            return Err(error);
        }
        let payload = encode_payload(entry);
        self.buffer
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buffer.extend_from_slice(&payload);
        self.buffer
            .extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        self.stats.appended += 1;
        self.stats.bytes = self.file_bytes + self.buffer.len() as u64;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush buffered frames to the file and `fsync` it: everything
    /// appended so far is durable when this returns `Ok`. Failures are
    /// counted ([`JournalStats::sync_errors`] / `write_errors`) and leave
    /// the unflushed bytes buffered for the next attempt.
    pub fn sync(&mut self) -> io::Result<()> {
        self.flush_buffer()?;
        if let Err(error) = failpoint::check_io("journal.sync") {
            self.stats.sync_errors += 1;
            return Err(error);
        }
        if let Err(error) = self.file.sync_data() {
            self.stats.sync_errors += 1;
            return Err(error);
        }
        self.stats.syncs += 1;
        self.stats.synced = self.stats.appended;
        self.unsynced = 0;
        Ok(())
    }

    /// Truncate the journal to empty — call only once a checkpoint
    /// (snapshot export) covering every journaled record is durable.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.buffer.clear();
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_data()?;
        self.file_bytes = 0;
        self.unsynced = 0;
        self.wedged = false;
        self.stats.rotations += 1;
        self.stats.bytes = 0;
        self.stats.synced = self.stats.appended;
        Ok(())
    }

    /// Bytes currently journaled (including the unflushed buffer) — the
    /// rotation-threshold input for auto-checkpointing.
    pub fn len_bytes(&self) -> u64 {
        self.stats.bytes
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> &JournalStats {
        &self.stats
    }

    fn flush_buffer(&mut self) -> io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        if self.wedged {
            // A simulated crash already cut this file; drop the bytes the
            // "dead" process would never have written.
            self.buffer.clear();
            self.stats.write_errors += 1;
            return Ok(());
        }
        if let Err(error) = failpoint::check_io("journal.write") {
            self.stats.write_errors += 1;
            return Err(error);
        }
        // A `journal.cut` failpoint budget simulates the crash tearing the
        // write at an exact byte offset: the prefix reaches the file, the
        // rest never happened.
        let allowed = failpoint::write_allowance("journal.cut", self.buffer.len());
        if allowed < self.buffer.len() {
            let _ = self.file.write_all(&self.buffer[..allowed]);
            self.file_bytes += allowed as u64;
            self.buffer.clear();
            self.wedged = true;
            self.stats.write_errors += 1;
            self.stats.bytes = self.file_bytes;
            return Ok(());
        }
        self.file.write_all(&self.buffer)?;
        self.file_bytes += self.buffer.len() as u64;
        self.buffer.clear();
        self.stats.bytes = self.file_bytes;
        Ok(())
    }
}

/// Write `bytes` to `path` atomically: temp file, `fsync`, rename. A
/// crash at any instant leaves either the old file or the new one, never
/// a half-written hybrid. (Threaded with the `snapshot.write` /
/// `snapshot.rename` failpoints.)
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    failpoint::check_io("snapshot.write")?;
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_data()?;
    drop(file);
    failpoint::check_io("snapshot.rename")?;
    std::fs::rename(&tmp, path)
}

/// What booting a durable store recovered, for observability: did a
/// snapshot load, and how much journal replayed on top of it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The checkpoint generation the store booted from.
    pub generation: u64,
    /// Whether a checkpoint snapshot was found and restored.
    pub restored_snapshot: bool,
    /// Observations carried by the restored snapshot.
    pub snapshot_observations: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Commit markers among the replayed records.
    pub replayed_commits: u64,
    /// Bytes torn off the journal tail (lost to the crash — at most the
    /// un-fsynced suffix).
    pub torn_bytes: u64,
}

/// A checkpoint-generation directory: the crash-safe pairing of one
/// snapshot file with the journal of observations made after it.
///
/// Layout under the directory:
///
/// | file | content |
/// |---|---|
/// | `CURRENT` | the live generation number `g` (written atomically) |
/// | `snapshot-<g>.json` | the checkpoint snapshot (absent for generation 0) |
/// | `journal-<g>.wal` | observations journaled since that checkpoint |
///
/// [`DurableDir::advance`] builds the next generation's pair completely
/// (snapshot written + fsynced, fresh journal created) **before**
/// atomically flipping `CURRENT` — so a crash at any point during a
/// checkpoint boots from a consistent older or newer pair, never from a
/// new snapshot with a stale journal (which would double-count every
/// replayed observation).
#[derive(Debug)]
pub struct DurableDir {
    dir: PathBuf,
    generation: u64,
}

impl DurableDir {
    /// Open (creating if absent) a durable store directory and read its
    /// live generation (`0` for a fresh directory).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DurableDir> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let generation = match std::fs::read_to_string(dir.join("CURRENT")) {
            Ok(text) => text.trim().parse::<u64>().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt CURRENT pointer {text:?}"),
                )
            })?,
            Err(error) if error.kind() == io::ErrorKind::NotFound => 0,
            Err(error) => return Err(error),
        };
        Ok(DurableDir { dir, generation })
    }

    /// The live checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Path of the live generation's snapshot (may not exist for
    /// generation 0, which has no checkpoint yet).
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(format!("snapshot-{}.json", self.generation))
    }

    /// Path of the live generation's journal.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(format!("journal-{}.wal", self.generation))
    }

    /// Publish the next checkpoint generation: write `snapshot_json`
    /// atomically, create a fresh empty journal, then flip `CURRENT`.
    /// Returns the new generation's journal. On error the live generation
    /// is unchanged (the half-built next generation is garbage a later
    /// `advance` overwrites).
    pub fn advance(&mut self, snapshot_json: &str, sync_every: u64) -> io::Result<Journal> {
        let next = self.generation + 1;
        write_atomic(
            &self.dir.join(format!("snapshot-{next}.json")),
            snapshot_json.as_bytes(),
        )?;
        let journal_path = self.dir.join(format!("journal-{next}.wal"));
        // A crashed earlier attempt at this generation may have left a
        // stale journal; the new generation starts empty.
        match std::fs::remove_file(&journal_path) {
            Ok(()) => {}
            Err(error) if error.kind() == io::ErrorKind::NotFound => {}
            Err(error) => return Err(error),
        }
        let journal = Journal::open(&journal_path, sync_every)?;
        write_atomic(&self.dir.join("CURRENT"), next.to_string().as_bytes())?;
        let previous = self.generation;
        self.generation = next;
        // The old pair is unreachable once CURRENT flipped; removal is
        // best-effort cleanup, not correctness.
        let _ = std::fs::remove_file(self.dir.join(format!("snapshot-{previous}.json")));
        let _ = std::fs::remove_file(self.dir.join(format!("journal-{previous}.wal")));
        Ok(journal)
    }
}

impl JournalStats {
    /// Fold another stats block into this one (used to keep lifetime
    /// totals across journal rotations, where each generation starts a
    /// fresh [`Journal`]).
    pub fn accumulate(&mut self, other: &JournalStats) {
        self.appended += other.appended;
        self.synced += other.synced;
        self.syncs += other.syncs;
        self.write_errors += other.write_errors;
        self.sync_errors += other.sync_errors;
        self.rotations += other.rotations;
        self.bytes = other.bytes;
    }
}

fn push_string(out: &mut Vec<u8>, text: &str) {
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
}

fn encode_payload(entry: &JournalEntry) -> Vec<u8> {
    let mut out = Vec::new();
    match entry {
        JournalEntry::Parts {
            domain,
            hostname,
            script,
            method,
            tracking,
        } => {
            out.push(KIND_PARTS);
            push_string(&mut out, domain);
            push_string(&mut out, hostname);
            push_string(&mut out, script);
            push_string(&mut out, method);
            out.push(u8::from(*tracking));
        }
        JournalEntry::Url {
            url,
            source_hostname,
            resource_type,
            script,
            method,
        } => {
            out.push(KIND_URL);
            push_string(&mut out, url);
            push_string(&mut out, source_hostname);
            push_string(&mut out, resource_type.option_name());
            push_string(&mut out, script);
            push_string(&mut out, method);
        }
        JournalEntry::Commit { version } => {
            out.push(KIND_COMMIT);
            out.extend_from_slice(&version.to_le_bytes());
        }
        JournalEntry::Revision { revision } => {
            out.push(KIND_REVISION);
            out.extend_from_slice(&revision.version().to_le_bytes());
            out.extend_from_slice(&(revision.changes().len() as u32).to_le_bytes());
            for change in revision.changes() {
                out.push(change.granularity.index() as u8);
                out.push(class_code(change.kind.old_class()));
                out.push(class_code(change.kind.new_class()));
                push_string(&mut out, &change.key);
            }
            out.extend_from_slice(&(revision.plans_touched().len() as u32).to_le_bytes());
            for script in revision.plans_touched() {
                push_string(&mut out, script);
            }
        }
    }
    out
}

/// Decode one checksum-verified payload; `None` for anything that does
/// not parse exactly (replay treats it as the end of the clean prefix).
fn decode_payload(payload: &[u8]) -> Option<JournalEntry> {
    let mut reader = crate::frames::FrameReader::new(payload);
    let kind = reader.u8().ok()?;
    let entry = match kind {
        KIND_PARTS => {
            let domain = reader.string().ok()?.to_string();
            let hostname = reader.string().ok()?.to_string();
            let script = reader.string().ok()?.to_string();
            let method = reader.string().ok()?.to_string();
            let tracking = match reader.u8().ok()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            JournalEntry::Parts {
                domain,
                hostname,
                script,
                method,
                tracking,
            }
        }
        KIND_URL => {
            let url = reader.string().ok()?.to_string();
            let source_hostname = reader.string().ok()?.to_string();
            let type_name = reader.string().ok()?;
            let resource_type = ResourceType::ALL
                .into_iter()
                .find(|kind| kind.option_name() == type_name)?;
            let script = reader.string().ok()?.to_string();
            let method = reader.string().ok()?.to_string();
            JournalEntry::Url {
                url,
                source_hostname,
                resource_type,
                script,
                method,
            }
        }
        KIND_COMMIT => JournalEntry::Commit {
            version: reader.u64().ok()?,
        },
        KIND_REVISION => {
            let version = reader.u64().ok()?;
            let change_count = reader.u32().ok()?;
            let mut changes = Vec::new();
            for _ in 0..change_count {
                let granularity = *Granularity::ALL.get(reader.u8().ok()? as usize)?;
                let old = class_of_code(reader.u8().ok()?)?;
                let new = class_of_code(reader.u8().ok()?)?;
                let kind = ChangeKind::of(old, new)?;
                let key = reader.string().ok()?.to_string();
                changes.push(RevisionChange::new(granularity, key, kind));
            }
            let plan_count = reader.u32().ok()?;
            let mut plans_touched: Vec<std::sync::Arc<str>> = Vec::new();
            for _ in 0..plan_count {
                plans_touched.push(std::sync::Arc::from(reader.string().ok()?));
            }
            JournalEntry::Revision {
                revision: VerdictRevision::with_plans(version, changes, plans_touched),
            }
        }
        _ => return None,
    };
    reader.finish().ok()?;
    Some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos();
        std::env::temp_dir().join(format!(
            "trackersift-journal-{tag}-{}-{nanos}.wal",
            std::process::id()
        ))
    }

    fn parts(n: u64) -> JournalEntry {
        JournalEntry::Parts {
            domain: format!("d{n}.com"),
            hostname: format!("h{n}.d{n}.com"),
            script: format!("https://pub.com/s{n}.js"),
            method: "send".to_string(),
            tracking: n % 2 == 0,
        }
    }

    #[test]
    fn round_trips_every_record_kind() {
        let path = temp_path("roundtrip");
        let entries = vec![
            parts(1),
            JournalEntry::Url {
                url: "https://t.example/p.gif".into(),
                source_hostname: "pub.com".into(),
                resource_type: ResourceType::Image,
                script: "https://pub.com/a.js".into(),
                method: "beacon".into(),
            },
            JournalEntry::Commit { version: 7 },
            JournalEntry::Revision {
                revision: VerdictRevision::with_plans(
                    7,
                    vec![
                        RevisionChange::new(
                            Granularity::Domain,
                            "d1.com",
                            ChangeKind::Added(Classification::Mixed),
                        ),
                        RevisionChange::new(
                            Granularity::Script,
                            "https://pub.com/s1.js",
                            ChangeKind::Flipped(Classification::Tracking, Classification::Mixed),
                        ),
                        RevisionChange::new(
                            Granularity::Method,
                            "https://pub.com/s1.js :: send",
                            ChangeKind::Removed(Classification::Functional),
                        ),
                    ],
                    vec![std::sync::Arc::from("https://pub.com/s1.js")],
                ),
            },
        ];
        {
            let mut journal = Journal::open(&path, 1000).expect("open");
            for entry in &entries {
                journal.append(entry).expect("append");
            }
            journal.sync().expect("sync");
            assert_eq!(journal.stats().appended, 4);
            assert_eq!(journal.stats().synced, 4);
        }
        let (replayed, report) = Journal::replay(&path).expect("replay");
        assert_eq!(replayed, entries);
        assert_eq!(report.records, 4);
        assert_eq!(report.commits, 1);
        assert_eq!(report.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_stops_at_a_torn_tail_and_recover_truncates_it() {
        let path = temp_path("torn");
        {
            let mut journal = Journal::open(&path, 1).expect("open");
            for n in 0..5 {
                journal.append(&parts(n)).expect("append");
            }
            journal.sync().expect("sync");
        }
        let full = std::fs::read(&path).expect("read journal");
        // Tear the last frame: flip a byte inside its checksum.
        let mut torn = full.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0xFF;
        std::fs::write(&path, &torn).expect("write torn journal");

        let (entries, report) = Journal::replay(&path).expect("replay");
        assert_eq!(entries.len(), 4, "the torn record is dropped");
        assert!(report.torn_bytes > 0);

        let (mut journal, recovered, report) = Journal::recover(&path, 1).expect("recover");
        assert_eq!(recovered.len(), 4);
        assert_eq!(report.valid_bytes, journal.len_bytes());
        // Appends after recovery extend the clean prefix.
        journal.append(&parts(9)).expect("append");
        journal.sync().expect("sync");
        drop(journal);
        let (entries, report) = Journal::replay(&path).expect("replay");
        assert_eq!(entries.len(), 5);
        assert_eq!(report.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_byte_prefix_replays_to_a_clean_record_prefix() {
        let path = temp_path("prefix");
        let mut journal = Journal::open(&path, 1000).expect("open");
        let entries: Vec<JournalEntry> = (0..4).map(parts).collect();
        for entry in &entries {
            journal.append(entry).expect("append");
        }
        journal.append(&JournalEntry::Commit { version: 1 }).ok();
        journal.sync().expect("sync");
        drop(journal);
        let bytes = std::fs::read(&path).expect("read");
        for cut in 0..=bytes.len() {
            let (replayed, report) = Journal::replay_bytes(&bytes[..cut]);
            assert!(replayed.len() <= 5);
            // The replayed records are exactly a prefix of what was
            // appended — never reordered, never corrupted.
            for (at, entry) in replayed.iter().enumerate() {
                if at < 4 {
                    assert_eq!(entry, &entries[at], "cut at {cut}");
                } else {
                    assert_eq!(entry, &JournalEntry::Commit { version: 1 });
                }
            }
            assert_eq!(report.valid_bytes + report.torn_bytes, cut as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotation_empties_the_file() {
        let path = temp_path("rotate");
        let mut journal = Journal::open(&path, 1000).expect("open");
        journal.append(&parts(1)).expect("append");
        journal.sync().expect("sync");
        assert!(journal.len_bytes() > 0);
        journal.rotate().expect("rotate");
        assert_eq!(journal.len_bytes(), 0);
        assert_eq!(journal.stats().rotations, 1);
        drop(journal);
        let (entries, report) = Journal::replay(&path).expect("replay");
        assert!(entries.is_empty());
        assert_eq!(report.valid_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn durable_dir_advances_generations_atomically() {
        let dir = temp_path("ddir").with_extension("d");
        let mut store = DurableDir::open(&dir).expect("open");
        assert_eq!(store.generation(), 0);
        assert_eq!(store.journal_path(), dir.join("journal-0.wal"));
        let mut journal = store.advance("{\"snapshot\":1}", 4).expect("advance");
        assert_eq!(store.generation(), 1);
        journal.append(&parts(1)).expect("append");
        journal.sync().expect("sync");
        drop(journal);
        // A fresh open (a reboot) sees the flipped generation and its pair.
        let reopened = DurableDir::open(&dir).expect("reopen");
        assert_eq!(reopened.generation(), 1);
        let snapshot = std::fs::read_to_string(reopened.snapshot_path()).expect("snapshot");
        assert_eq!(snapshot, "{\"snapshot\":1}");
        let (entries, report) = Journal::replay(&reopened.journal_path()).expect("replay");
        assert_eq!(entries.len(), 1);
        assert_eq!(report.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_and_oversized_length_prefixes_read_as_torn() {
        let (entries, report) = Journal::replay_bytes(&[0, 0, 0, 0, 1, 2, 3]);
        assert!(entries.is_empty());
        assert_eq!(report.torn_bytes, 7);
        let huge = (MAX_PAYLOAD_BYTES + 1).to_le_bytes();
        let (entries, _) = Journal::replay_bytes(&huge);
        assert!(entries.is_empty());
    }
}
