//! Rendering of tables, histograms and figure data.
//!
//! The bench binaries print the same rows and series the paper reports; this
//! module holds the shared formatting so the output of `table1`, `figure3`
//! etc. is consistent and easily diffed against `EXPERIMENTS.md`.

use crate::hierarchy::{Granularity, HierarchyResult, LevelResult};
use crate::metrics::{table1, table2, HeadlineSummary};
use crate::ratio::Classification;
use crate::sensitivity::SensitivitySweep;
use serde::{Deserialize, Serialize};

/// A histogram over the common-log ratio of resources at one granularity —
/// the data behind Figure 3. Resources with infinite ratios (no functional
/// or no tracking requests at all) land in the two overflow bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioHistogram {
    /// Granularity the histogram describes.
    pub granularity: Granularity,
    /// Lower edge of the first finite bin.
    pub min: f64,
    /// Upper edge of the last finite bin.
    pub max: f64,
    /// Width of each finite bin.
    pub bin_width: f64,
    /// Count of resources with ratio `-∞` or below `min`.
    pub underflow: u64,
    /// Counts of the finite bins.
    pub bins: Vec<u64>,
    /// Count of resources with ratio `+∞` or above `max`.
    pub overflow: u64,
}

impl RatioHistogram {
    /// Build the Figure 3 histogram for one level: bins of width `bin_width`
    /// covering `[min, max)`.
    pub fn from_level(level: &LevelResult, min: f64, max: f64, bin_width: f64) -> Self {
        assert!(bin_width > 0.0 && max > min, "invalid histogram geometry");
        let bin_count = ((max - min) / bin_width).ceil() as usize;
        let mut histogram = RatioHistogram {
            granularity: level.granularity,
            min,
            max,
            bin_width,
            underflow: 0,
            bins: vec![0; bin_count],
            overflow: 0,
        };
        for resource in &level.resources {
            let ratio = resource.log_ratio();
            if ratio == f64::NEG_INFINITY || ratio < min {
                histogram.underflow += 1;
            } else if ratio == f64::INFINITY || ratio >= max {
                histogram.overflow += 1;
            } else {
                let idx = ((ratio - min) / bin_width).floor() as usize;
                histogram.bins[idx.min(bin_count - 1)] += 1;
            }
        }
        histogram
    }

    /// The paper's geometry: bins of width 0.5 over [-5, 5).
    pub fn paper_bins(level: &LevelResult) -> Self {
        Self::from_level(level, -5.0, 5.0, 0.5)
    }

    /// Total resources represented.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Sum of the bins whose centre is ≤ -threshold plus the underflow: the
    /// "functional" (green) mass of the figure.
    pub fn functional_mass(&self, threshold: f64) -> u64 {
        self.mass(|centre| centre <= -threshold) + self.underflow
    }

    /// The "tracking" (red) mass of the figure.
    pub fn tracking_mass(&self, threshold: f64) -> u64 {
        self.mass(|centre| centre >= threshold) + self.overflow
    }

    /// The "mixed" (yellow) mass of the figure.
    pub fn mixed_mass(&self, threshold: f64) -> u64 {
        self.mass(|centre| centre > -threshold && centre < threshold)
    }

    fn mass(&self, pred: impl Fn(f64) -> bool) -> u64 {
        self.bins
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let centre = self.min + (*i as f64 + 0.5) * self.bin_width;
                pred(centre)
            })
            .map(|(_, c)| c)
            .sum()
    }

    /// Render as a CSV block (`bin_low,bin_high,count`), with the overflow
    /// bins first and last.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin_low,bin_high,count\n");
        out.push_str(&format!("-inf,{},{}\n", self.min, self.underflow));
        for (i, count) in self.bins.iter().enumerate() {
            let low = self.min + i as f64 * self.bin_width;
            let high = low + self.bin_width;
            out.push_str(&format!("{low},{high},{count}\n"));
        }
        out.push_str(&format!("{},+inf,{}\n", self.max, self.overflow));
        out
    }

    /// Render as an ASCII bar chart, one line per bin (useful in terminals).
    pub fn to_ascii(&self, width: usize) -> String {
        let max_count = self
            .bins
            .iter()
            .copied()
            .chain([self.underflow, self.overflow])
            .max()
            .unwrap_or(0)
            .max(1);
        let bar = |count: u64| {
            let len = (count as f64 / max_count as f64 * width as f64).round() as usize;
            "#".repeat(len)
        };
        let mut out = String::new();
        out.push_str(&format!(
            "{:>12} | {:<width$} {}\n",
            "(-inf)",
            bar(self.underflow),
            self.underflow
        ));
        for (i, count) in self.bins.iter().enumerate() {
            let low = self.min + i as f64 * self.bin_width;
            out.push_str(&format!("{low:>12.1} | {:<width$} {count}\n", bar(*count)));
        }
        out.push_str(&format!(
            "{:>12} | {:<width$} {}\n",
            "(+inf)",
            bar(self.overflow),
            self.overflow
        ));
        out
    }
}

/// Render Table 1 as aligned text.
pub fn render_table1(result: &HierarchyResult) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Classification of requests at different granularities\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "Level", "Tracking", "Functional", "Mixed", "Sep. (%)", "Cum. (%)"
    ));
    for row in table1(result) {
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>12.1} {:>12.1}\n",
            row.granularity.name(),
            row.tracking,
            row.functional,
            row.mixed,
            row.separation_factor,
            row.cumulative_separation
        ));
    }
    out
}

/// Render Table 2 as aligned text.
pub fn render_table2(result: &HierarchyResult) -> String {
    let mut out = String::new();
    out.push_str("Table 2: Classification of resources at different granularities\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}\n",
        "Level", "Tracking", "Functional", "Mixed", "Sep. (%)"
    ));
    for row in table2(result) {
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>12.1}\n",
            row.granularity.name(),
            row.tracking,
            row.functional,
            row.mixed,
            row.separation_factor
        ));
    }
    out
}

/// Render the headline summary.
pub fn render_headline(headline: &HeadlineSummary) -> String {
    format!(
        "Mixed resources: {:.0}% of domains, {:.0}% of hostnames, {:.0}% of scripts, {:.0}% of methods.\n\
         Requests attributed to tracking or functional resources: {:.1}%.\n",
        headline.mixed_domains_pct,
        headline.mixed_hostnames_pct,
        headline.mixed_scripts_pct,
        headline.mixed_methods_pct,
        headline.requests_attributed_pct
    )
}

/// Render the Figure 4 sweep as CSV (`threshold,domain,hostname,script,method`).
pub fn render_sensitivity_csv(sweep: &SensitivitySweep) -> String {
    let mut out = String::from(
        "threshold,mixed_domains_pct,mixed_hostnames_pct,mixed_scripts_pct,mixed_methods_pct\n",
    );
    for p in &sweep.points {
        out.push_str(&format!(
            "{:.1},{:.3},{:.3},{:.3},{:.3}\n",
            p.threshold, p.mixed_share[0], p.mixed_share[1], p.mixed_share[2], p.mixed_share[3]
        ));
    }
    out
}

/// Render the "notable resources" listing the paper's prose gives for a
/// level (top tracking / functional / mixed resources by request volume).
pub fn render_notable(level: &LevelResult, per_class: usize) -> String {
    let mut out = String::new();
    for class in [
        Classification::Tracking,
        Classification::Functional,
        Classification::Mixed,
    ] {
        out.push_str(&format!(
            "Top {class} {}s:\n",
            level.granularity.name().to_lowercase()
        ));
        for resource in level.top_resources(class, per_class) {
            out.push_str(&format!(
                "  {:<60} tracking={} functional={}\n",
                resource.key, resource.counts.tracking, resource.counts.functional
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchicalClassifier;
    use crate::label::{LabeledFrame, LabeledRequest};
    use crate::metrics::headline;
    use filterlist::{RequestLabel, ResourceType};

    fn req(domain: &str, tracking: bool) -> LabeledRequest {
        LabeledRequest {
            request_id: 0,
            top_level_url: "https://www.pub.com/".into(),
            site_domain: "pub.com".into(),
            url: format!("https://x.{domain}/y"),
            domain: domain.into(),
            hostname: format!("x.{domain}"),
            resource_type: ResourceType::Xhr,
            initiator_script: "https://www.pub.com/app.js".into(),
            initiator_method: "m".into(),
            stack: vec![LabeledFrame {
                script_url: "https://www.pub.com/app.js".into(),
                method: "m".into(),
            }],
            async_boundary: None,
            label: if tracking {
                RequestLabel::Tracking
            } else {
                RequestLabel::Functional
            },
        }
    }

    fn result() -> HierarchyResult {
        let mut v = Vec::new();
        for i in 0..20 {
            v.push(req(&format!("tracker{i}.com"), true));
            v.push(req(&format!("cdn{i}.com"), false));
        }
        for _ in 0..10 {
            v.push(req("mixed.com", true));
            v.push(req("mixed.com", false));
        }
        HierarchicalClassifier::default().classify(&v)
    }

    #[test]
    fn histogram_mass_matches_resource_counts() {
        let result = result();
        let level = result.level(Granularity::Domain);
        let histogram = RatioHistogram::paper_bins(level);
        assert_eq!(histogram.total(), level.resource_counts.total());
        assert_eq!(histogram.tracking_mass(2.0), level.resource_counts.tracking);
        assert_eq!(
            histogram.functional_mass(2.0),
            level.resource_counts.functional
        );
        assert_eq!(histogram.mixed_mass(2.0), level.resource_counts.mixed);
    }

    #[test]
    fn histogram_has_three_peaks_for_the_synthetic_shape() {
        let result = result();
        let histogram = RatioHistogram::paper_bins(result.level(Granularity::Domain));
        // Pure trackers in overflow, pure functional in underflow, mixed near 0.
        assert!(histogram.overflow > 0);
        assert!(histogram.underflow > 0);
        assert!(histogram.mixed_mass(2.0) > 0);
    }

    #[test]
    fn csv_and_ascii_renderings_contain_every_bin() {
        let result = result();
        let histogram = RatioHistogram::paper_bins(result.level(Granularity::Domain));
        let csv = histogram.to_csv();
        assert_eq!(csv.lines().count(), 1 + histogram.bins.len() + 2);
        let ascii = histogram.to_ascii(30);
        assert_eq!(ascii.lines().count(), histogram.bins.len() + 2);
    }

    #[test]
    fn table_renderings_have_four_rows() {
        let result = result();
        let t1 = render_table1(&result);
        let t2 = render_table2(&result);
        assert_eq!(t1.lines().count(), 6);
        assert_eq!(t2.lines().count(), 6);
        assert!(t1.contains("Domain"));
        assert!(t2.contains("Method"));
        let h = render_headline(&headline(&result));
        assert!(h.contains('%'));
    }

    #[test]
    fn notable_rendering_lists_top_mixed_domain() {
        let result = result();
        let text = render_notable(result.level(Granularity::Domain), 3);
        assert!(text.contains("mixed.com"));
    }

    #[test]
    #[should_panic(expected = "invalid histogram geometry")]
    fn invalid_geometry_rejected() {
        let result = result();
        let _ = RatioHistogram::from_level(result.level(Granularity::Domain), 5.0, -5.0, 0.5);
    }
}
