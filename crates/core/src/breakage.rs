//! Breakage analysis (paper §5, Table 3).
//!
//! The paper manually loads a sample of websites with and without blocking
//! the scripts TrackerSift classified as mixed, and grades the damage:
//! **major** when core functionality (navigation, search, images, the page
//! itself) breaks, **minor** when only secondary functionality (widgets,
//! comments, players) breaks, **none** otherwise; missing ads never count as
//! breakage. We reproduce the decision procedure mechanically: the synthetic
//! pages declare which features depend on which scripts, the crawler loads
//! each sampled page once unblocked (control) and once with its mixed
//! scripts blocked (treatment), and the grade falls out of which features
//! disappeared in treatment but not control.

use crate::hierarchy::{Granularity, HierarchyResult};
use crate::ratio::Classification;
use crawler::{LoadOptions, PageLoadSimulator};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use websim::{FeatureImportance, WebCorpus, Website};

/// Breakage grade for one website.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Breakage {
    /// Core functionality broke.
    Major,
    /// Only secondary functionality broke.
    Minor,
    /// Nothing visibly broke.
    None,
}

impl std::fmt::Display for Breakage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Breakage::Major => f.write_str("Major"),
            Breakage::Minor => f.write_str("Minor"),
            Breakage::None => f.write_str("None"),
        }
    }
}

/// One row of the breakage table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakageRow {
    /// The website.
    pub website: String,
    /// The mixed script(s) that were blocked (short display form).
    pub blocked_scripts: Vec<String>,
    /// The grade.
    pub breakage: Breakage,
    /// Which features broke (treatment-only failures).
    pub broken_features: Vec<String>,
}

/// The whole breakage study.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BreakageStudy {
    /// One row per sampled website.
    pub rows: Vec<BreakageRow>,
}

impl BreakageStudy {
    /// Number of sites with each grade: (major, minor, none).
    pub fn grade_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for row in &self.rows {
            match row.breakage {
                Breakage::Major => counts.0 += 1,
                Breakage::Minor => counts.1 += 1,
                Breakage::None => counts.2 += 1,
            }
        }
        counts
    }

    /// Share of sampled sites with any breakage, in percent.
    pub fn any_breakage_share(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let (major, minor, _) = self.grade_counts();
        100.0 * (major + minor) as f64 / self.rows.len() as f64
    }
}

/// Run the breakage analysis: sample up to `sample_size` websites that
/// contain at least one script classified mixed by `result`, block those
/// scripts, and grade the damage.
///
/// Sampling is deterministic: sites are taken in rank order among those that
/// qualify (the paper samples randomly; rank order keeps the experiment
/// reproducible without an extra seed).
pub fn analyze_breakage(
    corpus: &WebCorpus,
    result: &HierarchyResult,
    sample_size: usize,
) -> BreakageStudy {
    let mixed_scripts: HashSet<&str> = result
        .level(Granularity::Script)
        .resources
        .iter()
        .filter(|r| r.classification == Classification::Mixed)
        .map(|r| r.key.as_str())
        .collect();

    let mut rows = Vec::new();
    for site in &corpus.websites {
        if rows.len() >= sample_size {
            break;
        }
        let blocked: Vec<String> = site
            .scripts
            .iter()
            .map(|s| s.origin.url().to_string())
            .filter(|url| mixed_scripts.contains(url.as_str()))
            .collect();
        if blocked.is_empty() {
            continue;
        }
        rows.push(grade_site(site, &blocked));
    }
    BreakageStudy { rows }
}

/// Load one site in control and treatment and grade the difference.
pub fn grade_site(site: &Website, blocked_scripts: &[String]) -> BreakageRow {
    let mut sim = PageLoadSimulator::new(0);
    let control = sim.load(site);
    let treatment = sim.load_with(
        site,
        &LoadOptions::blocking_scripts(blocked_scripts.iter().cloned()),
    );

    let control_broken: HashSet<&str> = control
        .broken_features
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    let mut broke_core = false;
    let mut broke_secondary = false;
    let mut broken_features = Vec::new();
    for (name, importance) in &treatment.broken_features {
        if control_broken.contains(name.as_str()) {
            continue; // broken even without blocking: not our doing
        }
        broken_features.push(name.clone());
        match importance {
            FeatureImportance::Core => broke_core = true,
            FeatureImportance::Secondary => broke_secondary = true,
        }
    }
    let breakage = if broke_core {
        Breakage::Major
    } else if broke_secondary {
        Breakage::Minor
    } else {
        Breakage::None
    };
    BreakageRow {
        website: site.domain.clone(),
        blocked_scripts: blocked_scripts
            .iter()
            .map(|url| short_script_name(url))
            .collect(),
        breakage,
        broken_features,
    }
}

/// The short display form of a script URL (`main.js`, `app.9115af43.js`),
/// matching how the paper's Table 3 names scripts.
pub fn short_script_name(url: &str) -> String {
    let no_query = url.split(['?', '#']).next().unwrap_or(url);
    let last = no_query.rsplit('/').next().unwrap_or(no_query);
    if last.is_empty() {
        "(inline)".to_string()
    } else {
        last.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labeler;
    use crate::HierarchicalClassifier;
    use crawler::{ClusterConfig, CrawlCluster};
    use websim::{filter_rules, CorpusGenerator, CorpusProfile};

    fn study(sample: usize) -> (WebCorpus, HierarchyResult, BreakageStudy) {
        let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(120), 31);
        let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
        let engine = filter_rules::engine_for(&corpus.ecosystem);
        let (requests, _) = Labeler::new(&engine).label_database(&db);
        let result = HierarchicalClassifier::default().classify(&requests);
        let breakage = analyze_breakage(&corpus, &result, sample);
        (corpus, result, breakage)
    }

    #[test]
    fn breakage_study_samples_sites_with_mixed_scripts() {
        let (_, result, study) = study(10);
        assert!(
            !study.rows.is_empty(),
            "no sites with mixed scripts found; script-level mixed = {}",
            result.level(Granularity::Script).resource_counts.mixed
        );
        assert!(study.rows.len() <= 10);
        for row in &study.rows {
            assert!(!row.blocked_scripts.is_empty());
        }
    }

    #[test]
    fn blocking_mixed_scripts_breaks_some_sites() {
        // The paper's point: mixed scripts cannot be blocked safely. Most of
        // the sampled sites should show breakage.
        let (_, _, study) = study(10);
        assert!(
            study.any_breakage_share() >= 50.0,
            "expected breakage on most sites, got {:.0}% over {} sites",
            study.any_breakage_share(),
            study.rows.len()
        );
    }

    #[test]
    fn short_script_names() {
        assert_eq!(
            short_script_name("https://a.com/assets/app.9115af43.js?v=2"),
            "app.9115af43.js"
        );
        assert_eq!(short_script_name("https://a.com/"), "(inline)");
        assert_eq!(
            short_script_name("https://a.com/jquery.min.js"),
            "jquery.min.js"
        );
    }

    #[test]
    fn grade_counts_sum_to_rows() {
        let (_, _, study) = study(8);
        let (major, minor, none) = study.grade_counts();
        assert_eq!(major + minor + none, study.rows.len());
    }

    #[test]
    fn unaffected_sites_grade_none() {
        // Blocking a script no feature depends on yields Breakage::None.
        let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(5), 77);
        let site = &corpus.websites[0];
        let row = grade_site(site, &["https://not-on-this-page.example/x.js".to_string()]);
        assert_eq!(row.breakage, Breakage::None);
        assert!(row.broken_features.is_empty());
    }
}
