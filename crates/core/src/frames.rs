//! Canonical wire encodings of enforcement decisions — the one place the
//! JSON decision objects and the binary decision frames are produced, so
//! the serving paths that preformat responses at commit time (see
//! [`crate::table`]) and the wire layer that decodes them back
//! (`trackersift-server::wire`) cannot drift apart byte-wise.
//!
//! Two encodings live here:
//!
//! * **JSON**: [`decision_value`] / [`surrogate_value`] render a
//!   [`Decision`] to the exact [`Value`] tree the verdict server has always
//!   served (field order fixed, so equal decisions render to byte-identical
//!   JSON). The decoders ([`decision_from_value`] / [`surrogate_from_value`])
//!   are their inverses.
//! * **Binary**: a compact length-prefixed framing. Every fixed decision
//!   is one of [`FIXED_COMBOS`] fixed `(action, source)` pairs — a
//!   two-byte code — while a surrogate decision carries a length-prefixed
//!   payload ([`encode_surrogate_payload`]) holding the full plan and a
//!   rewrite decision carries a length-prefixed payload
//!   ([`encode_rewrite_payload`]) holding the rewritten URL. All integers
//!   are little-endian.
//!
//! # Binary frame layout
//!
//! Single-decision response body:
//!
//! | offset | field |
//! |---|---|
//! | 0 | protocol version (`1`) |
//! | 1 | action code (`0` observe, `1` allow, `2` block, `3` surrogate, `4` rewrite) |
//! | 2 | source code (`0` none, `1..=4` hierarchy granularity, `5` filter list) |
//! | 3 | table version, `u64` LE |
//! | 11 | payload length, `u32` LE (`0` unless action is surrogate or rewrite) |
//! | 15 | payload bytes |
//!
//! Batch response body: `proto u8`, `version u64`, `count u32`, then one
//! 6-byte record header (`action u8`, `source u8`, `payload_len u32`) plus
//! payload per decision, in request order.
//!
//! Surrogate payload: `script_url (u32 len + bytes)`, `method count u32`,
//! then per method `name (u32 len + bytes)`, `action u8` (`0` keep, `1`
//! stub, `2` guard) and for guards `caller count u32` + `u32`-prefixed
//! caller strings, then `suppressed u64`, `preserved u64`.
//!
//! Rewrite payload: the rewritten URL as one `u32`-length-prefixed UTF-8
//! string (mirroring the surrogate frame layout with a single field).
//!
//! # Revision frames
//!
//! The drift endpoints (`GET /v1/revisions` and `GET /v1/revisions?diff=`)
//! share the same canonical-encoding discipline. A binary revision body is
//! `proto u8`, kind byte ([`REVISION_KIND_LIST`] or [`REVISION_KIND_DIFF`]),
//! then for a list `table version u64` + `revision count u32` + per revision
//! `version u64`, `change count u32` and its changes; for a diff `from u64`,
//! `to u64`, `change count u32` and the net changes. One change is
//! `granularity code u8` (the [`Granularity`] index), `old class code u8`,
//! `new class code u8` (`0` absent, `1` tracking, `2` functional, `3`
//! mixed) and the `u32`-length-prefixed key string; decoders reject codes
//! that encode no transition (identical old/new, or both absent).
//!
//! # Delta-snapshot frames
//!
//! The replication endpoint (`GET /v1/snapshot?since=v`) ships
//! [`DeltaSnapshot`]s in both encodings — [`delta_snapshot_value`] /
//! [`encode_delta_snapshot`] and their decoders — reusing the change and
//! surrogate-plan codecs above, so the bytes a replica applies are decoded
//! by the exact inverses of what the primary rendered.

use crate::decision::{Decision, DecisionSource};
use crate::follower::DeltaSnapshot;
use crate::hierarchy::Granularity;
use crate::ratio::Classification;
use crate::revision::{ChangeKind, RevisionChange, RevisionDiff, VerdictRevision};
use crate::surrogate::{MethodAction, SurrogateScript};
use crawler::json::{object, JsonError, Value};
use rewriter::RewrittenUrl;
use std::sync::Arc;

/// The binary protocol version this build speaks.
pub const PROTO_VERSION: u8 = 1;

/// Byte offset of the payload in a single-decision binary response.
pub const SINGLE_HEADER_LEN: usize = 15;

/// Length of one batch record header (action, source, payload length).
pub const RECORD_HEADER_LEN: usize = 6;

/// Action code: let the request through, keep observing.
pub const ACTION_OBSERVE: u8 = 0;
/// Action code: allow.
pub const ACTION_ALLOW: u8 = 1;
/// Action code: block.
pub const ACTION_BLOCK: u8 = 2;
/// Action code: replace the script with the surrogate in the payload.
pub const ACTION_SURROGATE: u8 = 3;
/// Action code: load the rewritten URL in the payload instead of the
/// original request URL.
pub const ACTION_REWRITE: u8 = 4;

/// Source code for decisions that carry no source (observe / surrogate).
pub const SOURCE_NONE: u8 = 0;
/// Source code for the filter-list backstop.
pub const SOURCE_FILTER_LIST: u8 = 5;

/// Number of fixed (payload-free) `(action, source)` combinations:
/// observe, plus allow/block × (4 hierarchy granularities + filter list).
/// Surrogate and rewrite decisions carry payloads and are not fixed.
pub const FIXED_COMBOS: usize = 11;

fn source_code(source: DecisionSource) -> u8 {
    match source {
        // Granularity::index() is 0..=3; codes 1..=4 keep 0 for "none".
        DecisionSource::Hierarchy(granularity) => granularity.index() as u8 + 1,
        DecisionSource::FilterList => SOURCE_FILTER_LIST,
    }
}

fn source_of_code(code: u8) -> Option<DecisionSource> {
    match code {
        1..=4 => Some(DecisionSource::Hierarchy(
            Granularity::ALL[code as usize - 1],
        )),
        SOURCE_FILTER_LIST => Some(DecisionSource::FilterList),
        _ => None,
    }
}

/// The `(action, source)` code pair of a decision. Surrogates report
/// [`ACTION_SURROGATE`] and rewrites [`ACTION_REWRITE`], both with
/// [`SOURCE_NONE`].
pub fn codes_of(decision: &Decision) -> (u8, u8) {
    match decision {
        Decision::Observe => (ACTION_OBSERVE, SOURCE_NONE),
        Decision::Allow(source) => (ACTION_ALLOW, source_code(*source)),
        Decision::Block(source) => (ACTION_BLOCK, source_code(*source)),
        Decision::Surrogate(_) => (ACTION_SURROGATE, SOURCE_NONE),
        Decision::Rewrite(_) => (ACTION_REWRITE, SOURCE_NONE),
    }
}

/// The dense index of a fixed decision into the preformatted response
/// tables (`0..FIXED_COMBOS`); `None` for the payload-carrying decisions
/// (surrogate, rewrite).
pub fn fixed_index(decision: &Decision) -> Option<usize> {
    match decision {
        Decision::Observe => Some(0),
        Decision::Allow(source) => Some(source_code(*source) as usize),
        Decision::Block(source) => Some(5 + source_code(*source) as usize),
        Decision::Surrogate(_) | Decision::Rewrite(_) => None,
    }
}

/// The decision a fixed-combo index stands for — the inverse of
/// [`fixed_index`], used to build the preformatted tables through the same
/// encoders that serve ad-hoc decisions.
///
/// # Panics
/// Panics if `index >= FIXED_COMBOS`.
pub fn fixed_decision(index: usize) -> Decision {
    match index {
        0 => Decision::Observe,
        1..=5 => Decision::Allow(source_of_code(index as u8).expect("codes 1..=5 have sources")),
        6..=10 => {
            Decision::Block(source_of_code(index as u8 - 5).expect("codes 1..=5 have sources"))
        }
        _ => panic!("fixed decision index {index} out of range"),
    }
}

// ---------------------------------------------------------------------
// JSON encoding (canonical: field order fixed)
// ---------------------------------------------------------------------

fn source_fields(source: DecisionSource, fields: &mut Vec<(&'static str, Value)>) {
    match source {
        DecisionSource::Hierarchy(granularity) => {
            fields.push(("source", Value::String("hierarchy".to_string())));
            fields.push(("granularity", Value::String(granularity.name().to_string())));
        }
        DecisionSource::FilterList => {
            fields.push(("source", Value::String("filter-list".to_string())));
        }
    }
}

fn method_action_value(action: &MethodAction) -> Value {
    match action {
        MethodAction::Keep => Value::String("keep".to_string()),
        MethodAction::Stub => Value::String("stub".to_string()),
        MethodAction::Guard { blocked_callers } => object(vec![(
            "guard",
            object(vec![(
                "blocked_callers",
                Value::Array(
                    blocked_callers
                        .iter()
                        .map(|caller| Value::String(caller.clone()))
                        .collect(),
                ),
            )]),
        )]),
    }
}

/// Encode a surrogate payload as its canonical JSON object.
pub fn surrogate_value(script: &SurrogateScript) -> Value {
    object(vec![
        ("script_url", Value::String(script.script_url.clone())),
        (
            "methods",
            Value::Array(
                script
                    .methods
                    .iter()
                    .map(|(name, action)| {
                        Value::Array(vec![
                            Value::String(name.clone()),
                            method_action_value(action),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "suppressed_tracking_requests",
            Value::number_u64(script.suppressed_tracking_requests),
        ),
        (
            "preserved_functional_requests",
            Value::number_u64(script.preserved_functional_requests),
        ),
    ])
}

/// Encode a rewrite payload as its canonical JSON object
/// (`{"action":"rewrite","url":…}`).
pub fn rewrite_value(rewritten: &RewrittenUrl) -> Value {
    object(vec![
        ("action", Value::String("rewrite".to_string())),
        ("url", Value::String(rewritten.url().to_string())),
    ])
}

/// Encode a decision as its canonical JSON object. The encoding is
/// canonical (field order fixed), so equal decisions render to
/// byte-identical JSON — the property the preformatted response tables and
/// the wire byte-identity tests both rely on.
pub fn decision_value(decision: &Decision) -> Value {
    match decision {
        Decision::Allow(source) => {
            let mut fields = vec![("action", Value::String("allow".to_string()))];
            source_fields(*source, &mut fields);
            object(fields)
        }
        Decision::Block(source) => {
            let mut fields = vec![("action", Value::String("block".to_string()))];
            source_fields(*source, &mut fields);
            object(fields)
        }
        Decision::Surrogate(script) => object(vec![
            ("action", Value::String("surrogate".to_string())),
            ("surrogate", surrogate_value(script)),
        ]),
        Decision::Rewrite(rewritten) => rewrite_value(rewritten),
        Decision::Observe => object(vec![("action", Value::String("observe".to_string()))]),
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(message.into()))
}

fn source_from_value(value: &Value) -> Result<DecisionSource, JsonError> {
    match value.field("source")?.as_str()? {
        "hierarchy" => {
            let name = value.field("granularity")?.as_str()?;
            Granularity::ALL
                .into_iter()
                .find(|granularity| granularity.name() == name)
                .map(DecisionSource::Hierarchy)
                .ok_or_else(|| JsonError(format!("unknown granularity {name:?}")))
        }
        "filter-list" => Ok(DecisionSource::FilterList),
        other => err(format!("unknown decision source {other:?}")),
    }
}

fn method_action_from_value(value: &Value) -> Result<MethodAction, JsonError> {
    match value {
        Value::String(name) if name == "keep" => Ok(MethodAction::Keep),
        Value::String(name) if name == "stub" => Ok(MethodAction::Stub),
        Value::Object(_) => {
            let guard = value.field("guard")?;
            let blocked_callers = guard
                .field("blocked_callers")?
                .as_array()?
                .iter()
                .map(|caller| caller.as_str().map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(MethodAction::Guard { blocked_callers })
        }
        other => err(format!("unknown method action {other:?}")),
    }
}

/// Decode a surrogate payload from its canonical JSON object.
pub fn surrogate_from_value(value: &Value) -> Result<SurrogateScript, JsonError> {
    let methods = value
        .field("methods")?
        .as_array()?
        .iter()
        .map(|row| {
            let row = row.as_array()?;
            match row {
                [name, action] => Ok((
                    name.as_str()?.to_string(),
                    method_action_from_value(action)?,
                )),
                _ => err(format!("method row has {} fields, expected 2", row.len())),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SurrogateScript {
        script_url: value.field("script_url")?.as_str()?.to_string(),
        methods,
        suppressed_tracking_requests: value.field("suppressed_tracking_requests")?.as_u64()?,
        preserved_functional_requests: value.field("preserved_functional_requests")?.as_u64()?,
    })
}

/// Decode a decision from its canonical JSON object.
pub fn decision_from_value(value: &Value) -> Result<Decision, JsonError> {
    match value.field("action")?.as_str()? {
        "allow" => Ok(Decision::Allow(source_from_value(value)?)),
        "block" => Ok(Decision::Block(source_from_value(value)?)),
        "surrogate" => Ok(Decision::Surrogate(Arc::new(surrogate_from_value(
            value.field("surrogate")?,
        )?))),
        "rewrite" => Ok(Decision::Rewrite(Arc::new(RewrittenUrl::new(
            value.field("url")?.as_str()?,
        )))),
        "observe" => Ok(Decision::Observe),
        other => err(format!("unknown decision action {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Encode a surrogate plan as the binary payload of a surrogate decision
/// frame (see the [module docs](self) for the layout).
pub fn encode_surrogate_payload(script: &SurrogateScript) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + script.script_url.len());
    put_bytes(&mut out, script.script_url.as_bytes());
    out.extend_from_slice(&(script.methods.len() as u32).to_le_bytes());
    for (name, action) in &script.methods {
        put_bytes(&mut out, name.as_bytes());
        match action {
            MethodAction::Keep => out.push(0),
            MethodAction::Stub => out.push(1),
            MethodAction::Guard { blocked_callers } => {
                out.push(2);
                out.extend_from_slice(&(blocked_callers.len() as u32).to_le_bytes());
                for caller in blocked_callers {
                    put_bytes(&mut out, caller.as_bytes());
                }
            }
        }
    }
    out.extend_from_slice(&script.suppressed_tracking_requests.to_le_bytes());
    out.extend_from_slice(&script.preserved_functional_requests.to_le_bytes());
    out
}

/// A surrogate plan preformatted in both wire encodings, built once when
/// the plan is (re)computed at commit time and shared by `Arc` between the
/// sifter's cache and every published
/// [`VerdictTable`](crate::table::VerdictTable). Serving a surrogate
/// decision then copies these slices instead of re-encoding the plan per
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurrogateFrames {
    /// The complete JSON decision object
    /// (`{"action":"surrogate","surrogate":{…}}`), byte-identical to
    /// rendering [`decision_value`] on the same plan.
    pub json: Arc<str>,
    /// The binary surrogate payload ([`encode_surrogate_payload`]), ready
    /// to splice after a surrogate frame header.
    pub binary: Arc<[u8]>,
}

impl SurrogateFrames {
    /// Preformat both encodings of a surrogate plan.
    pub fn new(script: &SurrogateScript) -> Self {
        let json = object(vec![
            ("action", Value::String("surrogate".to_string())),
            ("surrogate", surrogate_value(script)),
        ])
        .render();
        SurrogateFrames {
            json: json.into(),
            binary: encode_surrogate_payload(script).into(),
        }
    }
}

/// Why decoding a binary frame failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary frame error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// A bounds-checked little-endian cursor over one binary frame. Every
/// read either advances or returns a typed [`FrameError`] — truncated or
/// hostile frames can never panic or over-read.
#[derive(Debug)]
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> FrameReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        FrameReader { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError(format!(
                "truncated frame: wanted {n} bytes at offset {}, {} left",
                self.at,
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32` (little-endian).
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64` (little-endian).
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<&'a str, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| FrameError("string is not valid utf-8".into()))
    }

    /// Read a `u32`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], FrameError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Assert the frame has been fully consumed.
    pub fn finish(self) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError(format!(
                "{} trailing bytes after frame",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Encode a rewritten URL as the binary payload of a rewrite decision
/// frame: one `u32`-length-prefixed UTF-8 string.
pub fn encode_rewrite_payload(rewritten: &RewrittenUrl) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + rewritten.url().len());
    put_bytes(&mut out, rewritten.url().as_bytes());
    out
}

/// Decode the binary payload of a rewrite decision frame.
pub fn decode_rewrite_payload(bytes: &[u8]) -> Result<RewrittenUrl, FrameError> {
    let mut reader = FrameReader::new(bytes);
    let url = reader.string()?.to_string();
    reader.finish()?;
    Ok(RewrittenUrl::new(url))
}

/// Decode the binary payload of a surrogate decision frame.
pub fn decode_surrogate_payload(bytes: &[u8]) -> Result<SurrogateScript, FrameError> {
    let mut reader = FrameReader::new(bytes);
    let script_url = reader.string()?.to_string();
    let method_count = reader.u32()? as usize;
    // A hostile count cannot force a huge allocation: each method needs at
    // least 5 bytes, so cap the preallocation by what the frame could hold.
    let mut methods = Vec::with_capacity(method_count.min(reader.remaining() / 5));
    for _ in 0..method_count {
        let name = reader.string()?.to_string();
        let action = match reader.u8()? {
            0 => MethodAction::Keep,
            1 => MethodAction::Stub,
            2 => {
                let caller_count = reader.u32()? as usize;
                let mut blocked_callers =
                    Vec::with_capacity(caller_count.min(reader.remaining() / 4));
                for _ in 0..caller_count {
                    blocked_callers.push(reader.string()?.to_string());
                }
                MethodAction::Guard { blocked_callers }
            }
            other => return Err(FrameError(format!("unknown method action code {other}"))),
        };
        methods.push((name, action));
    }
    let suppressed_tracking_requests = reader.u64()?;
    let preserved_functional_requests = reader.u64()?;
    reader.finish()?;
    Ok(SurrogateScript {
        script_url,
        methods,
        suppressed_tracking_requests,
        preserved_functional_requests,
    })
}

/// Build the full single-decision binary response body for a fixed
/// (payload-free) decision: 15 bytes, payload length zero.
pub fn encode_fixed_single(decision: &Decision, version: u64) -> [u8; SINGLE_HEADER_LEN] {
    let (action, source) = codes_of(decision);
    debug_assert_ne!(action, ACTION_SURROGATE, "fixed frames carry no payload");
    debug_assert_ne!(action, ACTION_REWRITE, "fixed frames carry no payload");
    let mut out = [0u8; SINGLE_HEADER_LEN];
    out[0] = PROTO_VERSION;
    out[1] = action;
    out[2] = source;
    out[3..11].copy_from_slice(&version.to_le_bytes());
    // payload length stays zero.
    out
}

/// Write the 15-byte single-decision header for a surrogate response;
/// the caller appends the (preformatted) payload bytes.
pub fn encode_surrogate_single_header(version: u64, payload_len: u32) -> [u8; SINGLE_HEADER_LEN] {
    let mut out = [0u8; SINGLE_HEADER_LEN];
    out[0] = PROTO_VERSION;
    out[1] = ACTION_SURROGATE;
    out[2] = SOURCE_NONE;
    out[3..11].copy_from_slice(&version.to_le_bytes());
    out[11..15].copy_from_slice(&payload_len.to_le_bytes());
    out
}

/// Write the 15-byte single-decision header for a rewrite response; the
/// caller appends the (preformatted) payload bytes.
pub fn encode_rewrite_single_header(version: u64, payload_len: u32) -> [u8; SINGLE_HEADER_LEN] {
    let mut out = [0u8; SINGLE_HEADER_LEN];
    out[0] = PROTO_VERSION;
    out[1] = ACTION_REWRITE;
    out[2] = SOURCE_NONE;
    out[3..11].copy_from_slice(&version.to_le_bytes());
    out[11..15].copy_from_slice(&payload_len.to_le_bytes());
    out
}

/// Build one batch record header (`action`, `source`, `payload_len`).
pub fn encode_record_header(action: u8, source: u8, payload_len: u32) -> [u8; RECORD_HEADER_LEN] {
    let mut out = [0u8; RECORD_HEADER_LEN];
    out[0] = action;
    out[1] = source;
    out[2..6].copy_from_slice(&payload_len.to_le_bytes());
    out
}

/// Decode one `(action, source, payload)` triple into a [`Decision`]; the
/// payload must be empty unless the action is surrogate or rewrite.
pub fn decode_decision(action: u8, source: u8, payload: &[u8]) -> Result<Decision, FrameError> {
    if action != ACTION_SURROGATE && action != ACTION_REWRITE && !payload.is_empty() {
        return Err(FrameError(format!(
            "action {action} carries an unexpected {}-byte payload",
            payload.len()
        )));
    }
    match action {
        ACTION_OBSERVE => Ok(Decision::Observe),
        ACTION_ALLOW => source_of_code(source)
            .map(Decision::Allow)
            .ok_or_else(|| FrameError(format!("unknown source code {source}"))),
        ACTION_BLOCK => source_of_code(source)
            .map(Decision::Block)
            .ok_or_else(|| FrameError(format!("unknown source code {source}"))),
        ACTION_SURROGATE => Ok(Decision::Surrogate(Arc::new(decode_surrogate_payload(
            payload,
        )?))),
        ACTION_REWRITE => Ok(Decision::Rewrite(Arc::new(decode_rewrite_payload(
            payload,
        )?))),
        other => Err(FrameError(format!("unknown action code {other}"))),
    }
}

// ---------------------------------------------------------------------
// Revision encoding (drift over the wire)
// ---------------------------------------------------------------------

/// Frame kind byte of a binary revision-list response body.
pub const REVISION_KIND_LIST: u8 = 0x10;
/// Frame kind byte of a binary revision-diff response body.
pub const REVISION_KIND_DIFF: u8 = 0x11;

fn classification_name(class: Classification) -> &'static str {
    match class {
        Classification::Tracking => "tracking",
        Classification::Functional => "functional",
        Classification::Mixed => "mixed",
    }
}

fn classification_of_name(name: &str) -> Result<Classification, JsonError> {
    match name {
        "tracking" => Ok(Classification::Tracking),
        "functional" => Ok(Classification::Functional),
        "mixed" => Ok(Classification::Mixed),
        other => err(format!("unknown classification {other:?}")),
    }
}

fn class_code(class: Option<Classification>) -> u8 {
    match class {
        None => 0,
        Some(Classification::Tracking) => 1,
        Some(Classification::Functional) => 2,
        Some(Classification::Mixed) => 3,
    }
}

fn class_of_code(code: u8) -> Result<Option<Classification>, FrameError> {
    match code {
        0 => Ok(None),
        1 => Ok(Some(Classification::Tracking)),
        2 => Ok(Some(Classification::Functional)),
        3 => Ok(Some(Classification::Mixed)),
        other => Err(FrameError(format!("unknown classification code {other}"))),
    }
}

/// Encode one revision change as its canonical JSON object: additions as
/// `{"granularity":…,"key":…,"added":…}`, removals with `"removed"`, and
/// classification flips with `"from"` / `"to"`.
pub fn change_value(change: &RevisionChange) -> Value {
    let mut fields = vec![
        (
            "granularity",
            Value::String(change.granularity.name().to_string()),
        ),
        ("key", Value::String(change.key.to_string())),
    ];
    match change.kind {
        ChangeKind::Added(class) => fields.push((
            "added",
            Value::String(classification_name(class).to_string()),
        )),
        ChangeKind::Removed(class) => fields.push((
            "removed",
            Value::String(classification_name(class).to_string()),
        )),
        ChangeKind::Flipped(old, new) => {
            fields.push(("from", Value::String(classification_name(old).to_string())));
            fields.push(("to", Value::String(classification_name(new).to_string())));
        }
    }
    object(fields)
}

/// Decode one revision change from its canonical JSON object.
pub fn change_from_value(value: &Value) -> Result<RevisionChange, JsonError> {
    let name = value.field("granularity")?.as_str()?;
    let granularity = Granularity::ALL
        .into_iter()
        .find(|granularity| granularity.name() == name)
        .ok_or_else(|| JsonError(format!("unknown granularity {name:?}")))?;
    let key = value.field("key")?.as_str()?.to_string();
    let kind = if let Ok(class) = value.field("added") {
        ChangeKind::Added(classification_of_name(class.as_str()?)?)
    } else if let Ok(class) = value.field("removed") {
        ChangeKind::Removed(classification_of_name(class.as_str()?)?)
    } else {
        let old = classification_of_name(value.field("from")?.as_str()?)?;
        let new = classification_of_name(value.field("to")?.as_str()?)?;
        match ChangeKind::of(Some(old), Some(new)) {
            Some(kind) => kind,
            None => return err(format!("identity flip {old} -> {new}")),
        }
    };
    Ok(RevisionChange::new(granularity, key, kind))
}

/// Encode the published revision ring as the canonical JSON body of
/// `GET /v1/revisions`: the current table version plus every ring entry
/// with its changes, field order fixed.
pub fn revision_list_value(version: u64, ring: &[Arc<VerdictRevision>]) -> Value {
    object(vec![
        ("version", Value::number_u64(version)),
        (
            "revisions",
            Value::Array(
                ring.iter()
                    .map(|revision| {
                        object(vec![
                            ("version", Value::number_u64(revision.version())),
                            (
                                "changes",
                                Value::Array(revision.changes().iter().map(change_value).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode a revision-list JSON body back into `(table version, ring)`.
pub fn revision_list_from_value(value: &Value) -> Result<(u64, Vec<VerdictRevision>), JsonError> {
    let version = value.field("version")?.as_u64()?;
    let revisions = value
        .field("revisions")?
        .as_array()?
        .iter()
        .map(|row| {
            let changes = row
                .field("changes")?
                .as_array()?
                .iter()
                .map(change_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(VerdictRevision::new(
                row.field("version")?.as_u64()?,
                changes,
            ))
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    Ok((version, revisions))
}

/// Encode a revision diff as the canonical JSON body of
/// `GET /v1/revisions?diff=a..b`.
pub fn revision_diff_value(diff: &RevisionDiff) -> Value {
    object(vec![
        ("from", Value::number_u64(diff.from)),
        ("to", Value::number_u64(diff.to)),
        (
            "changes",
            Value::Array(diff.changes.iter().map(change_value).collect()),
        ),
    ])
}

/// Decode a revision-diff JSON body.
pub fn revision_diff_from_value(value: &Value) -> Result<RevisionDiff, JsonError> {
    Ok(RevisionDiff {
        from: value.field("from")?.as_u64()?,
        to: value.field("to")?.as_u64()?,
        changes: value
            .field("changes")?
            .as_array()?
            .iter()
            .map(change_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn put_change(out: &mut Vec<u8>, change: &RevisionChange) {
    out.push(change.granularity.index() as u8);
    out.push(class_code(change.kind.old_class()));
    out.push(class_code(change.kind.new_class()));
    put_bytes(out, change.key.as_bytes());
}

fn read_change(reader: &mut FrameReader<'_>) -> Result<RevisionChange, FrameError> {
    let granularity_code = reader.u8()? as usize;
    let granularity = *Granularity::ALL
        .get(granularity_code)
        .ok_or_else(|| FrameError(format!("unknown granularity code {granularity_code}")))?;
    let old = class_of_code(reader.u8()?)?;
    let new = class_of_code(reader.u8()?)?;
    let key = reader.string()?.to_string();
    let kind = ChangeKind::of(old, new)
        .ok_or_else(|| FrameError("change encodes no transition".into()))?;
    Ok(RevisionChange::new(granularity, key, kind))
}

fn expect_revision_header(reader: &mut FrameReader<'_>, kind: u8) -> Result<(), FrameError> {
    let proto = reader.u8()?;
    if proto != PROTO_VERSION {
        return Err(FrameError(format!("unsupported protocol version {proto}")));
    }
    let got = reader.u8()?;
    if got != kind {
        return Err(FrameError(format!(
            "frame kind {got:#04x}, expected {kind:#04x}"
        )));
    }
    Ok(())
}

/// Encode the revision ring as the binary body of `GET /v1/revisions`
/// (layout in the [module docs](self)).
pub fn encode_revision_list(version: u64, ring: &[Arc<VerdictRevision>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(14 + ring.len() * 16);
    out.push(PROTO_VERSION);
    out.push(REVISION_KIND_LIST);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(ring.len() as u32).to_le_bytes());
    for revision in ring {
        out.extend_from_slice(&revision.version().to_le_bytes());
        out.extend_from_slice(&(revision.changes().len() as u32).to_le_bytes());
        for change in revision.changes() {
            put_change(&mut out, change);
        }
    }
    out
}

/// Decode a binary revision-list body back into `(table version, ring)`.
pub fn decode_revision_list(bytes: &[u8]) -> Result<(u64, Vec<VerdictRevision>), FrameError> {
    let mut reader = FrameReader::new(bytes);
    expect_revision_header(&mut reader, REVISION_KIND_LIST)?;
    let version = reader.u64()?;
    let count = reader.u32()? as usize;
    // Hostile counts cannot force huge allocations: every revision record
    // needs at least 12 bytes and every change at least 7.
    let mut revisions = Vec::with_capacity(count.min(reader.remaining() / 12));
    for _ in 0..count {
        let revision_version = reader.u64()?;
        let change_count = reader.u32()? as usize;
        let mut changes = Vec::with_capacity(change_count.min(reader.remaining() / 7));
        for _ in 0..change_count {
            changes.push(read_change(&mut reader)?);
        }
        revisions.push(VerdictRevision::new(revision_version, changes));
    }
    reader.finish()?;
    Ok((version, revisions))
}

/// Encode a revision diff as the binary body of
/// `GET /v1/revisions?diff=a..b` (layout in the [module docs](self)).
pub fn encode_revision_diff(diff: &RevisionDiff) -> Vec<u8> {
    let mut out = Vec::with_capacity(22 + diff.changes.len() * 16);
    out.push(PROTO_VERSION);
    out.push(REVISION_KIND_DIFF);
    out.extend_from_slice(&diff.from.to_le_bytes());
    out.extend_from_slice(&diff.to.to_le_bytes());
    out.extend_from_slice(&(diff.changes.len() as u32).to_le_bytes());
    for change in &diff.changes {
        put_change(&mut out, change);
    }
    out
}

/// Decode a binary revision-diff body.
pub fn decode_revision_diff(bytes: &[u8]) -> Result<RevisionDiff, FrameError> {
    let mut reader = FrameReader::new(bytes);
    expect_revision_header(&mut reader, REVISION_KIND_DIFF)?;
    let from = reader.u64()?;
    let to = reader.u64()?;
    let count = reader.u32()? as usize;
    let mut changes = Vec::with_capacity(count.min(reader.remaining() / 7));
    for _ in 0..count {
        changes.push(read_change(&mut reader)?);
    }
    reader.finish()?;
    Ok(RevisionDiff { from, to, changes })
}

// ---------------------------------------------------------------------
// Delta-snapshot encoding (replica state transfer)
// ---------------------------------------------------------------------

/// Frame kind byte of a binary delta-snapshot body (`?since=` hit).
pub const SNAPSHOT_KIND_DELTA: u8 = 0x12;
/// Frame kind byte of a binary full-snapshot body (bootstrap / `410 Gone`).
pub const SNAPSHOT_KIND_FULL: u8 = 0x13;

/// The `format` discriminator of a JSON delta-snapshot envelope.
pub const DELTA_FORMAT: &str = "trackersift.delta";

/// Encode a [`DeltaSnapshot`] as its canonical JSON envelope: a `kind`
/// discriminator (`"delta"` carries `from`, `"full"` does not), the target
/// `to` version with its `committed` / `residue` counters, the net
/// changes, and one `{script, plan}` row per touched surrogate plan
/// (`plan` is `null` when the script no longer has one).
pub fn delta_snapshot_value(snapshot: &DeltaSnapshot) -> Value {
    let mut fields = vec![("format", Value::String(DELTA_FORMAT.to_string()))];
    match snapshot.since {
        Some(from) => {
            fields.push(("kind", Value::String("delta".to_string())));
            fields.push(("from", Value::number_u64(from)));
        }
        None => fields.push(("kind", Value::String("full".to_string()))),
    }
    fields.push(("to", Value::number_u64(snapshot.to)));
    fields.push(("committed", Value::number_u64(snapshot.committed)));
    fields.push(("residue", Value::number_u64(snapshot.residue)));
    fields.push((
        "changes",
        Value::Array(snapshot.changes.iter().map(change_value).collect()),
    ));
    fields.push((
        "plans",
        Value::Array(
            snapshot
                .plans
                .iter()
                .map(|(script, plan)| {
                    object(vec![
                        ("script", Value::String(script.to_string())),
                        (
                            "plan",
                            match plan {
                                Some(plan) => surrogate_value(plan),
                                None => Value::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    object(fields)
}

/// Decode a JSON delta-snapshot envelope.
pub fn delta_snapshot_from_value(value: &Value) -> Result<DeltaSnapshot, JsonError> {
    let format = value.field("format")?.as_str()?;
    if format != DELTA_FORMAT {
        return err(format!("unknown snapshot format {format:?}"));
    }
    let since = match value.field("kind")?.as_str()? {
        "delta" => Some(value.field("from")?.as_u64()?),
        "full" => None,
        other => return err(format!("unknown snapshot kind {other:?}")),
    };
    let changes = value
        .field("changes")?
        .as_array()?
        .iter()
        .map(change_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let plans = value
        .field("plans")?
        .as_array()?
        .iter()
        .map(|row| {
            let script: Arc<str> = row.field("script")?.as_str()?.into();
            let plan = match row.field("plan")? {
                Value::Null => None,
                plan => Some(Arc::new(surrogate_from_value(plan)?)),
            };
            Ok((script, plan))
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    Ok(DeltaSnapshot {
        since,
        to: value.field("to")?.as_u64()?,
        committed: value.field("committed")?.as_u64()?,
        residue: value.field("residue")?.as_u64()?,
        changes,
        plans,
    })
}

/// Encode a [`DeltaSnapshot`] as its binary body: `proto u8`, kind byte
/// ([`SNAPSHOT_KIND_DELTA`] carries `from u64`, [`SNAPSHOT_KIND_FULL`]
/// does not), `to u64`, `committed u64`, `residue u64`, `change count u32`
/// + changes, `plan count u32` + per plan the `u32`-prefixed script key,
///   a presence byte, and (when present) the `u32`-length-prefixed
///   surrogate payload ([`encode_surrogate_payload`]).
pub fn encode_delta_snapshot(snapshot: &DeltaSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + snapshot.changes.len() * 16);
    out.push(PROTO_VERSION);
    match snapshot.since {
        Some(from) => {
            out.push(SNAPSHOT_KIND_DELTA);
            out.extend_from_slice(&from.to_le_bytes());
        }
        None => out.push(SNAPSHOT_KIND_FULL),
    }
    out.extend_from_slice(&snapshot.to.to_le_bytes());
    out.extend_from_slice(&snapshot.committed.to_le_bytes());
    out.extend_from_slice(&snapshot.residue.to_le_bytes());
    out.extend_from_slice(&(snapshot.changes.len() as u32).to_le_bytes());
    for change in &snapshot.changes {
        put_change(&mut out, change);
    }
    out.extend_from_slice(&(snapshot.plans.len() as u32).to_le_bytes());
    for (script, plan) in &snapshot.plans {
        put_bytes(&mut out, script.as_bytes());
        match plan {
            Some(plan) => {
                out.push(1);
                put_bytes(&mut out, &encode_surrogate_payload(plan));
            }
            None => out.push(0),
        }
    }
    out
}

/// Decode a binary delta-snapshot body.
pub fn decode_delta_snapshot(bytes: &[u8]) -> Result<DeltaSnapshot, FrameError> {
    let mut reader = FrameReader::new(bytes);
    let proto = reader.u8()?;
    if proto != PROTO_VERSION {
        return Err(FrameError(format!("unsupported protocol version {proto}")));
    }
    let since = match reader.u8()? {
        SNAPSHOT_KIND_DELTA => Some(reader.u64()?),
        SNAPSHOT_KIND_FULL => None,
        other => return Err(FrameError(format!("unknown snapshot kind {other:#04x}"))),
    };
    let to = reader.u64()?;
    let committed = reader.u64()?;
    let residue = reader.u64()?;
    let change_count = reader.u32()? as usize;
    let mut changes = Vec::with_capacity(change_count.min(reader.remaining() / 7));
    for _ in 0..change_count {
        changes.push(read_change(&mut reader)?);
    }
    let plan_count = reader.u32()? as usize;
    let mut plans = Vec::with_capacity(plan_count.min(reader.remaining() / 9));
    for _ in 0..plan_count {
        let script: Arc<str> = reader.string()?.into();
        let plan = match reader.u8()? {
            0 => None,
            1 => Some(Arc::new(decode_surrogate_payload(reader.bytes()?)?)),
            other => return Err(FrameError(format!("unknown plan presence byte {other}"))),
        };
        plans.push((script, plan));
    }
    reader.finish()?;
    Ok(DeltaSnapshot {
        since,
        to,
        committed,
        residue,
        changes,
        plans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_surrogate() -> SurrogateScript {
        SurrogateScript {
            script_url: "https://pub.com/mixed.js".into(),
            methods: vec![
                ("render".into(), MethodAction::Keep),
                ("track".into(), MethodAction::Stub),
                (
                    "xhr".into(),
                    MethodAction::Guard {
                        blocked_callers: vec!["pixel.js @ firePixel".into()],
                    },
                ),
            ],
            suppressed_tracking_requests: 12,
            preserved_functional_requests: 9,
        }
    }

    fn sample_rewrite() -> RewrittenUrl {
        RewrittenUrl::new("https://news.example/story?p=1")
    }

    fn all_decisions() -> Vec<Decision> {
        let mut decisions: Vec<Decision> = (0..FIXED_COMBOS).map(fixed_decision).collect();
        decisions.push(Decision::Surrogate(Arc::new(sample_surrogate())));
        decisions.push(Decision::Rewrite(Arc::new(sample_rewrite())));
        decisions
    }

    #[test]
    fn fixed_indices_are_a_dense_bijection() {
        for index in 0..FIXED_COMBOS {
            assert_eq!(fixed_index(&fixed_decision(index)), Some(index));
        }
        assert_eq!(
            fixed_index(&Decision::Surrogate(Arc::new(sample_surrogate()))),
            None
        );
        assert_eq!(
            fixed_index(&Decision::Rewrite(Arc::new(sample_rewrite()))),
            None
        );
    }

    #[test]
    fn json_encodings_round_trip_canonically() {
        for decision in all_decisions() {
            let text = decision_value(&decision).render();
            let back = decision_from_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, decision);
            assert_eq!(decision_value(&back).render(), text);
        }
    }

    #[test]
    fn surrogate_payloads_round_trip_binary() {
        let script = sample_surrogate();
        let payload = encode_surrogate_payload(&script);
        assert_eq!(decode_surrogate_payload(&payload).unwrap(), script);
        // Every truncation fails cleanly, never panics.
        for cut in 0..payload.len() {
            assert!(decode_surrogate_payload(&payload[..cut]).is_err());
        }
        // Trailing garbage is rejected.
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_surrogate_payload(&padded).is_err());
    }

    #[test]
    fn binary_decisions_round_trip_through_codes() {
        for decision in all_decisions() {
            let (action, source) = codes_of(&decision);
            let payload = match &decision {
                Decision::Surrogate(script) => encode_surrogate_payload(script),
                Decision::Rewrite(rewritten) => encode_rewrite_payload(rewritten),
                _ => Vec::new(),
            };
            let back = decode_decision(action, source, &payload).unwrap();
            assert_eq!(back, decision);
        }
    }

    #[test]
    fn hostile_codes_are_rejected() {
        assert!(decode_decision(9, 0, &[]).is_err());
        assert!(decode_decision(ACTION_ALLOW, 0, &[]).is_err());
        assert!(decode_decision(ACTION_ALLOW, 6, &[]).is_err());
        assert!(decode_decision(ACTION_ALLOW, 1, &[1, 2, 3]).is_err());
        assert!(decode_decision(ACTION_SURROGATE, 0, &[1]).is_err());
        // Rewrite frames must carry a complete, exactly-sized payload.
        assert!(decode_decision(ACTION_REWRITE, 0, &[]).is_err());
        assert!(decode_decision(ACTION_REWRITE, 0, &[255, 255, 255, 255]).is_err());
        let mut padded = encode_rewrite_payload(&sample_rewrite());
        padded.push(0);
        assert!(decode_decision(ACTION_REWRITE, 0, &padded).is_err());
    }

    #[test]
    fn rewrite_payloads_round_trip_binary() {
        let rewritten = sample_rewrite();
        let payload = encode_rewrite_payload(&rewritten);
        assert_eq!(decode_rewrite_payload(&payload).unwrap(), rewritten);
        for cut in 0..payload.len() {
            assert!(decode_rewrite_payload(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn surrogate_frames_match_the_per_request_encoders() {
        let script = sample_surrogate();
        let frames = SurrogateFrames::new(&script);
        assert_eq!(
            frames.json.as_ref(),
            decision_value(&Decision::Surrogate(Arc::new(script.clone()))).render()
        );
        assert_eq!(frames.binary.as_ref(), encode_surrogate_payload(&script));
    }

    #[test]
    fn fixed_single_frames_have_the_documented_layout() {
        let frame = encode_fixed_single(&fixed_decision(6), 0x0102_0304);
        assert_eq!(frame[0], PROTO_VERSION);
        assert_eq!(frame[1], ACTION_BLOCK);
        assert_eq!(frame[2], 1); // hierarchy at domain level
        assert_eq!(
            u64::from_le_bytes(frame[3..11].try_into().unwrap()),
            0x0102_0304
        );
        assert_eq!(u32::from_le_bytes(frame[11..15].try_into().unwrap()), 0);
        let header = encode_surrogate_single_header(7, 42);
        assert_eq!(header[1], ACTION_SURROGATE);
        assert_eq!(u32::from_le_bytes(header[11..15].try_into().unwrap()), 42);
        let header = encode_rewrite_single_header(7, 42);
        assert_eq!(header[0], PROTO_VERSION);
        assert_eq!(header[1], ACTION_REWRITE);
        assert_eq!(header[2], SOURCE_NONE);
        assert_eq!(u64::from_le_bytes(header[3..11].try_into().unwrap()), 7);
        assert_eq!(u32::from_le_bytes(header[11..15].try_into().unwrap()), 42);
        let record = encode_record_header(ACTION_ALLOW, SOURCE_FILTER_LIST, 3);
        assert_eq!(record, [ACTION_ALLOW, SOURCE_FILTER_LIST, 3, 0, 0, 0]);
    }

    fn sample_ring() -> Vec<Arc<VerdictRevision>> {
        use Classification::*;
        vec![
            Arc::new(VerdictRevision::new(
                3,
                vec![
                    RevisionChange::new(
                        Granularity::Domain,
                        "ads.com",
                        ChangeKind::Added(Tracking),
                    ),
                    RevisionChange::new(
                        Granularity::Script,
                        "https://cdn.pub.com/app.js",
                        ChangeKind::Flipped(Mixed, Functional),
                    ),
                ],
            )),
            Arc::new(VerdictRevision::new(4, vec![])),
            Arc::new(VerdictRevision::new(
                5,
                vec![RevisionChange::new(
                    Granularity::Hostname,
                    "pixel.ads.com",
                    ChangeKind::Removed(Mixed),
                )],
            )),
        ]
    }

    #[test]
    fn revision_json_round_trips_canonically() {
        let ring = sample_ring();
        let text = revision_list_value(5, &ring).render();
        let (version, back) =
            revision_list_from_value(&Value::parse(&text).unwrap()).expect("list parses");
        assert_eq!(version, 5);
        assert_eq!(back, ring.iter().map(|r| (**r).clone()).collect::<Vec<_>>());
        assert_eq!(revision_list_value(5, &sample_ring()).render(), text);

        let diff = crate::revision::diff_revisions(&ring, 2, 5).unwrap();
        let text = revision_diff_value(&diff).render();
        let back = revision_diff_from_value(&Value::parse(&text).unwrap()).expect("diff parses");
        assert_eq!(back, diff);
        assert_eq!(revision_diff_value(&back).render(), text);
    }

    #[test]
    fn hostile_revision_json_is_rejected() {
        for hostile in [
            r#"{"granularity":"Domain","key":"a.com","added":"sneaky"}"#,
            r#"{"granularity":"Planet","key":"a.com","added":"mixed"}"#,
            r#"{"granularity":"Domain","key":"a.com","from":"mixed","to":"mixed"}"#,
            r#"{"granularity":"Domain","key":"a.com"}"#,
        ] {
            let value = Value::parse(hostile).unwrap();
            assert!(change_from_value(&value).is_err(), "accepted {hostile}");
        }
    }

    #[test]
    fn revision_frames_round_trip_binary() {
        let ring = sample_ring();
        let payload = encode_revision_list(5, &ring);
        let (version, back) = decode_revision_list(&payload).expect("list decodes");
        assert_eq!(version, 5);
        assert_eq!(back, ring.iter().map(|r| (**r).clone()).collect::<Vec<_>>());
        for cut in 0..payload.len() {
            assert!(decode_revision_list(&payload[..cut]).is_err());
        }
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_revision_list(&padded).is_err());

        let diff = crate::revision::diff_revisions(&ring, 2, 5).unwrap();
        let payload = encode_revision_diff(&diff);
        assert_eq!(decode_revision_diff(&payload).unwrap(), diff);
        for cut in 0..payload.len() {
            assert!(decode_revision_diff(&payload[..cut]).is_err());
        }
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_revision_diff(&padded).is_err());
    }

    fn sample_snapshots() -> Vec<DeltaSnapshot> {
        use Classification::*;
        let changes = vec![
            RevisionChange::new(Granularity::Domain, "ads.com", ChangeKind::Added(Tracking)),
            RevisionChange::new(
                Granularity::Method,
                "https://pub.com/mixed.js :: track",
                ChangeKind::Flipped(Mixed, Tracking),
            ),
        ];
        vec![
            DeltaSnapshot {
                since: Some(3),
                to: 5,
                committed: 120,
                residue: 7,
                changes: changes.clone(),
                plans: vec![
                    (
                        "https://pub.com/mixed.js".into(),
                        Some(Arc::new(sample_surrogate())),
                    ),
                    ("https://pub.com/stale.js".into(), None),
                ],
            },
            DeltaSnapshot {
                since: None,
                to: 5,
                committed: 120,
                residue: 7,
                changes,
                plans: vec![(
                    "https://pub.com/mixed.js".into(),
                    Some(Arc::new(sample_surrogate())),
                )],
            },
        ]
    }

    #[test]
    fn delta_snapshots_round_trip_both_encodings() {
        for snapshot in sample_snapshots() {
            let text = delta_snapshot_value(&snapshot).render();
            let back = delta_snapshot_from_value(&Value::parse(&text).unwrap()).expect("json");
            assert_eq!(back, snapshot);
            assert_eq!(delta_snapshot_value(&back).render(), text);

            let payload = encode_delta_snapshot(&snapshot);
            assert_eq!(decode_delta_snapshot(&payload).unwrap(), snapshot);
            for cut in 0..payload.len() {
                assert!(decode_delta_snapshot(&payload[..cut]).is_err());
            }
            let mut padded = payload.clone();
            padded.push(0);
            assert!(decode_delta_snapshot(&padded).is_err());
        }
    }

    #[test]
    fn hostile_delta_snapshots_are_rejected() {
        let snapshot = &sample_snapshots()[0];
        let mut bad = encode_delta_snapshot(snapshot);
        bad[0] = 9; // protocol version
        assert!(decode_delta_snapshot(&bad).is_err());
        let mut bad = encode_delta_snapshot(snapshot);
        bad[1] = 0x7f; // kind byte
        assert!(decode_delta_snapshot(&bad).is_err());
        // A revision-diff body is not a snapshot body.
        let ring = sample_ring();
        let diff = encode_revision_diff(&crate::revision::diff_revisions(&ring, 2, 5).unwrap());
        assert!(decode_delta_snapshot(&diff).is_err());
        for hostile in [
            r#"{"format":"other","kind":"full","to":1,"committed":0,"residue":0,"changes":[],"plans":[]}"#,
            r#"{"format":"trackersift.delta","kind":"half","to":1,"committed":0,"residue":0,"changes":[],"plans":[]}"#,
            r#"{"format":"trackersift.delta","kind":"delta","to":1,"committed":0,"residue":0,"changes":[],"plans":[]}"#,
        ] {
            let value = Value::parse(hostile).unwrap();
            assert!(
                delta_snapshot_from_value(&value).is_err(),
                "accepted {hostile}"
            );
        }
    }

    #[test]
    fn hostile_revision_frames_are_rejected() {
        let ring = sample_ring();
        let list = encode_revision_list(5, &ring);
        let diff = encode_revision_diff(&crate::revision::diff_revisions(&ring, 2, 5).unwrap());

        // Wrong protocol version.
        let mut bad = list.clone();
        bad[0] = 9;
        assert!(decode_revision_list(&bad).is_err());
        // Swapped kind bytes: a list body is not a diff body and vice versa.
        assert!(decode_revision_diff(&list).is_err());
        assert!(decode_revision_list(&diff).is_err());

        // One hand-built diff frame per hostile change shape.
        let hostile_changes: [[u8; 3]; 4] = [
            [7, 0, 1], // granularity code out of range
            [0, 4, 1], // old class code out of range
            [0, 1, 1], // identity transition
            [0, 0, 0], // absent -> absent encodes no transition
        ];
        for change in hostile_changes {
            let mut frame = vec![PROTO_VERSION, REVISION_KIND_DIFF];
            frame.extend_from_slice(&2u64.to_le_bytes());
            frame.extend_from_slice(&5u64.to_le_bytes());
            frame.extend_from_slice(&1u32.to_le_bytes());
            frame.extend_from_slice(&change);
            put_bytes(&mut frame, b"a.com");
            assert!(decode_revision_diff(&frame).is_err(), "accepted {change:?}");
        }
    }
}
