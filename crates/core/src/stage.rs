//! The staged execution engine behind [`crate::pipeline::Study`].
//!
//! The study pipeline is a linear chain of typed stages —
//!
//! ```text
//! generate ──▶ crawl ──▶ label ──▶ classify ──▶ (analyses)
//! ```
//!
//! — each consuming the previous stage's output. A [`Stage`] is a named unit
//! of work with typed input and output; a [`StageRunner`] executes stages and
//! records per-stage wall-clock timings, which [`Study`](crate::pipeline::Study)
//! exposes as [`StageTimings`] so every run reports where its time went.
//! Later scaling work (sharding, async ingest, incremental reclassification)
//! slots in as new `Stage` implementations without touching the driver.

use std::time::{Duration, Instant};

/// A named pipeline stage with typed input and output.
///
/// The input type is generic over a lifetime so stages can borrow from the
/// accumulating study state (e.g. the crawl stage borrows the corpus).
pub trait Stage {
    /// Stage name as it appears in timing reports.
    const NAME: &'static str;

    /// What the stage consumes.
    type Input<'a>;

    /// What the stage produces.
    type Output;

    /// Execute the stage.
    fn run(&self, input: Self::Input<'_>) -> Self::Output;
}

/// Wall-clock timing of one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// The stage's [`Stage::NAME`].
    pub name: &'static str,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// Ordered per-stage timings of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimings {
    timings: Vec<StageTiming>,
}

impl StageTimings {
    /// All recorded timings, in execution order.
    pub fn all(&self) -> &[StageTiming] {
        &self.timings
    }

    /// The full timing record of a stage by name, if it ran. Non-panicking
    /// lookup — prefer this over indexing into [`StageTimings::all`], which
    /// bakes in assumptions about which stages ran and in what order.
    pub fn timing(&self, name: &str) -> Option<StageTiming> {
        self.timings.iter().find(|t| t.name == name).copied()
    }

    /// The duration of a stage by name, if it ran.
    pub fn duration(&self, name: &str) -> Option<Duration> {
        self.timing(name).map(|t| t.duration)
    }

    /// Total wall-clock time across all recorded stages.
    pub fn total(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }

    /// Throughput of a stage in units per second: `units` (sites, requests,
    /// …) divided by the stage's wall-clock duration. `None` when the stage
    /// did not run or its recorded duration is zero.
    pub fn rate(&self, name: &str, units: u64) -> Option<f64> {
        let secs = self.duration(name)?.as_secs_f64();
        if secs > 0.0 {
            Some(units as f64 / secs)
        } else {
            None
        }
    }

    /// A one-line human-readable summary, e.g.
    /// `generate 12.3ms | crawl 48.1ms | label 21.9ms | classify 9.0ms`.
    pub fn summary(&self) -> String {
        self.timings
            .iter()
            .map(|t| format!("{} {:.1?}", t.name, t.duration))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Executes stages, recording a [`StageTiming`] per run.
#[derive(Debug, Default)]
pub struct StageRunner {
    timings: Vec<StageTiming>,
}

impl StageRunner {
    /// A fresh runner with no recorded timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run one stage, recording its wall-clock duration.
    pub fn run<S: Stage>(&mut self, stage: &S, input: S::Input<'_>) -> S::Output {
        let start = Instant::now();
        let output = stage.run(input);
        self.timings.push(StageTiming {
            name: S::NAME,
            duration: start.elapsed(),
        });
        output
    }

    /// Finish, yielding the ordered timings.
    pub fn finish(self) -> StageTimings {
        StageTimings {
            timings: self.timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Double;

    impl Stage for Double {
        const NAME: &'static str = "double";
        type Input<'a> = &'a [u64];
        type Output = Vec<u64>;

        fn run(&self, input: &[u64]) -> Vec<u64> {
            input.iter().map(|x| x * 2).collect()
        }
    }

    struct Sum;

    impl Stage for Sum {
        const NAME: &'static str = "sum";
        type Input<'a> = Vec<u64>;
        type Output = u64;

        fn run(&self, input: Vec<u64>) -> u64 {
            input.into_iter().sum()
        }
    }

    #[test]
    fn stages_chain_and_record_timings() {
        let mut runner = StageRunner::new();
        let doubled = runner.run(&Double, &[1, 2, 3]);
        let total = runner.run(&Sum, doubled);
        assert_eq!(total, 12);
        let timings = runner.finish();
        let names: Vec<&str> = timings.all().iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["double", "sum"]);
        assert!(timings.duration("double").is_some());
        assert!(timings.duration("missing").is_none());
        assert_eq!(timings.timing("sum").unwrap().name, "sum");
        assert!(timings.timing("missing").is_none());
        assert!(timings.total() >= timings.duration("sum").unwrap());
        assert!(timings.summary().contains("double"));
        let rate = timings.rate("double", 3_000).expect("stage ran");
        assert!(rate > 0.0);
        assert!(timings.rate("missing", 10).is_none());
    }
}
