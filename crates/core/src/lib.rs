//! # trackersift — untangling mixed tracking and functional web resources
//!
//! A from-scratch Rust reproduction of *TrackerSift: Untangling Mixed
//! Tracking and Functional Web Resources* (ACM IMC 2021). TrackerSift
//! progressively classifies web resources at four granularities — domain,
//! hostname, script, method — as **tracking**, **functional**, or **mixed**,
//! using filter lists (EasyList + EasyPrivacy) as the labeling oracle and a
//! log-ratio threshold (Equation 1) as the classifier. Resources that remain
//! mixed at one granularity are pushed down to the next finer one; the
//! residue that is still mixed at method level is attacked with call-stack
//! divergence analysis, and mixed scripts can be shimmed with automatically
//! generated surrogate scripts.
//!
//! The crate is organised around the paper's sections:
//!
//! | paper | module |
//! |---|---|
//! | §3 Labeling | [`label`] |
//! | §4 Eq. 1 + threshold | [`ratio`] |
//! | §2/§4 hierarchical classification (Tables 1–2, Fig. 3) | [`hierarchy`], [`metrics`], [`report`] |
//! | §5 threshold sensitivity (Fig. 4) | [`sensitivity`] |
//! | §5 breakage analysis (Table 3) | [`breakage`] |
//! | §5 call-stack analysis (Fig. 5) | [`callstack`] |
//! | §5 surrogate scripts | [`surrogate`] |
//! | staged execution engine | [`stage`], [`pipeline`] |
//! | resource-key interning | [`intern`] |
//! | serving API (verdicts + incremental ingestion) | [`service`] |
//! | enforcement decisions (allow / block / surrogate / observe) | [`decision`] |
//! | flattened verdict tables (shared read representation) | [`table`] |
//! | concurrent serving (lock-free readers + atomic publish) | [`concurrent`] |
//! | per-commit verdict revisions + drift diffs | [`revision`] |
//! | trained-state persistence (versioned) | [`snapshot`] |
//! | crash durability (write-ahead journal + checkpoints) | [`journal`] |
//! | deterministic fault injection (feature-gated) | [`failpoint`] |
//!
//! ## Execution model
//!
//! [`Study::run`] executes the pipeline as a chain of named, individually
//! timed stages — `generate → crawl → label → classify` (see [`stage`]) —
//! with the downstream analyses bundled behind [`Study::analyses`]. The
//! crawl and labeling stages run on a worker pool sized by the study's
//! [`ClusterConfig`](crawler::ClusterConfig) `workers` knob, and are
//! deterministic: a parallel run produces byte-identical results to a
//! sequential one. All per-request grouping goes through the
//! [`intern::KeyInterner`], so attribution keys (including the composed
//! `script :: method` keys) are allocated at most once per distinct key.
//!
//! ## Quick example
//!
//! ```
//! use trackersift::{Granularity, Study, StudyConfig};
//!
//! let study = Study::run(StudyConfig::small().with_sites(50));
//! let domains = study.hierarchy.level(Granularity::Domain);
//! println!(
//!     "{} domains observed, {} mixed; {:.1}% of requests attributed overall",
//!     domains.resource_counts.total(),
//!     domains.resource_counts.mixed,
//!     study.hierarchy.overall_attribution(),
//! );
//! println!("stage timings: {}", study.timings.summary());
//! ```
//!
//! ## Serving
//!
//! A study is also a producer of long-lived verdict servers:
//! [`Study::sifter`] trains a [`service::Sifter`] that answers
//! `tracking / functional / mixed` per request by walking the hierarchy
//! coarsest-to-finest — allocation-free for already-interned keys — and
//! ingests new observations incrementally ([`service::Sifter::observe`] +
//! [`service::Sifter::commit`], provably equivalent to reclassifying from
//! scratch). Trained state persists across restarts through the versioned
//! [`snapshot::SifterSnapshot`]. For serving from many threads while
//! ingestion continues, [`service::Sifter::into_concurrent`] splits the
//! sifter into a [`concurrent::SifterWriter`] and lock-free
//! [`concurrent::SifterReader`] handles with atomically published verdict
//! tables.
//!
//! ```
//! use trackersift::{Study, StudyConfig, VerdictRequest};
//!
//! let study = Study::run(StudyConfig::small().with_sites(50));
//! let sifter = study.sifter();
//! let verdict = sifter.verdict(&VerdictRequest::from_labeled(&study.requests[0]));
//! println!("{verdict}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod breakage;
pub mod callstack;
pub mod concurrent;
pub mod decision;
pub mod failpoint;
pub mod follower;
pub mod frames;
pub mod hierarchy;
pub mod intern;
pub mod journal;
pub mod label;
pub mod memo;
pub mod metrics;
pub mod pipeline;
pub mod ratio;
pub mod report;
pub mod revision;
pub mod sensitivity;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod stage;
pub mod surrogate;
pub mod table;

#[cfg(test)]
mod testutil;

pub use breakage::{analyze_breakage, Breakage, BreakageRow, BreakageStudy};
pub use callstack::{analyze_mixed_methods, CallGraph, CallGraphNode, CallStackAnalysis};
pub use concurrent::{PinnedTable, SifterReader, SifterWriter, TablePublisher};
pub use decision::{Decision, DecisionRequest, DecisionSource, KeyedRequest};
pub use follower::{ApplyError, DeltaSnapshot, FollowerState};
pub use frames::{FrameError, FrameReader, SurrogateFrames};
pub use hierarchy::{
    ClassCounts, Granularity, HierarchicalClassifier, HierarchyResult, LevelResult, ResourceEntry,
};
pub use intern::{FrozenKeys, KeyInterner, KeyResolver, ResourceKey};
pub use journal::{DurableDir, Journal, JournalEntry, JournalStats, RecoveryReport, ReplayReport};
pub use label::{LabelStats, LabeledFrame, LabeledRequest, Labeler};
pub use memo::{CacheStats, LabelCache};
pub use metrics::{headline, table1, table2, HeadlineSummary, Table1Row, Table2Row};
pub use pipeline::{
    AnalysesStage, ClassifyStage, CrawlStage, GenerateStage, LabelStage, Study, StudyAnalyses,
    StudyConfig,
};
pub use ratio::{Classification, Counts, Thresholds};
pub use report::RatioHistogram;
pub use revision::{
    compose, diff_revisions, plans_touched_in_span, ChangeKind, RevisionChange, RevisionDiff,
    RevisionRangeError, VerdictRevision,
};
pub use rewriter::{RewriterBuilder, RewrittenUrl, UrlRewriter};
pub use sensitivity::{SensitivityPoint, SensitivitySweep};
pub use service::{
    CommitStats, IngestStats, ObserveOutcome, ServiceStats, Sifter, SifterBuilder, Verdict,
    VerdictRequest,
};
pub use shard::{shard_index, ShardedReader, ShardedWriter};
pub use snapshot::{SifterSnapshot, SnapshotError};
pub use stage::{Stage, StageRunner, StageTiming, StageTimings};
pub use surrogate::{generate_surrogates, MethodAction, SurrogateScript};
pub use table::{ClassTable, PrebuiltDecision, PrebuiltResponses, VerdictTable};
