//! End-to-end study pipeline.
//!
//! [`Study::run`] wires the whole reproduction together as a chain of named,
//! individually-timed [`Stage`]s, the way the paper's methodology section
//! describes it:
//!
//! ```text
//! generate ──▶ crawl ──▶ label ──▶ classify ──▶ (analyses on demand)
//! ```
//!
//! * [`GenerateStage`] builds the synthetic corpus (stand-in for "crawl list");
//! * [`CrawlStage`] loads every site on a worker pool sized by
//!   [`ClusterConfig::workers`], capturing each script-initiated request with
//!   its call stack;
//! * [`LabelStage`] compiles the filter oracle (EasyList + EasyPrivacy +
//!   ecosystem rules) and labels the crawl on the same worker pool;
//! * [`ClassifyStage`] runs the hierarchical classifier over the labels.
//!
//! Per-stage wall-clock timings are exposed on [`Study::timings`]; the
//! downstream analyses (sensitivity sweep, call-stack analysis, surrogates,
//! breakage) stay on-demand methods, bundled by [`Study::analyses`]. The
//! bench binaries and the examples are thin wrappers over this type.

use crate::breakage::{analyze_breakage, BreakageStudy};
use crate::callstack::{analyze_mixed_methods, CallStackAnalysis};
use crate::hierarchy::{Granularity, HierarchicalClassifier, HierarchyResult, LevelResult};
use crate::intern::KeyInterner;
use crate::label::{LabelStats, LabeledRequest, Labeler};
use crate::memo::CacheStats;
use crate::ratio::{Classification, Thresholds};
use crate::sensitivity::SensitivitySweep;
use crate::service::Sifter;
use crate::stage::{Stage, StageRunner, StageTiming, StageTimings};
use crate::surrogate::{generate_surrogates, SurrogateScript};
use crawler::{ClusterConfig, CrawlCluster, CrawlDatabase, CrawlSummary};
use filterlist::FilterEngine;
use websim::{filter_rules, CorpusGenerator, CorpusProfile, WebCorpus};

/// Configuration of a study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Corpus profile (number of sites, ecosystem shape, mixing rates).
    pub profile: CorpusProfile,
    /// Corpus seed.
    pub seed: u64,
    /// Crawl cluster configuration; its `workers` knob also governs the
    /// parallel labeling stage.
    pub cluster: ClusterConfig,
    /// Classification thresholds.
    pub thresholds: Thresholds,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            profile: CorpusProfile::paper(),
            seed: 2021,
            cluster: ClusterConfig::default(),
            thresholds: Thresholds::paper(),
        }
    }
}

impl StudyConfig {
    /// A small configuration for tests and the quickstart example.
    pub fn small() -> Self {
        StudyConfig {
            profile: CorpusProfile::small(),
            ..Default::default()
        }
    }

    /// Override the number of sites.
    pub fn with_sites(mut self, sites: usize) -> Self {
        self.profile.sites = sites;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the worker-thread count used by the crawl and labeling
    /// stages (a `--threads`-style knob).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.cluster = self.cluster.with_threads(threads);
        self
    }
}

/// Stage 1: generate the corpus (the "100K websites").
#[derive(Debug, Clone)]
pub struct GenerateStage {
    /// Corpus profile.
    pub profile: CorpusProfile,
    /// Corpus seed.
    pub seed: u64,
}

impl Stage for GenerateStage {
    const NAME: &'static str = "generate";
    type Input<'a> = ();
    type Output = WebCorpus;

    fn run(&self, _input: ()) -> WebCorpus {
        CorpusGenerator::generate(&self.profile, self.seed)
    }
}

/// Stage 2: crawl every site, capturing requests and call stacks.
#[derive(Debug, Clone)]
pub struct CrawlStage {
    /// Cluster (worker pool) configuration.
    pub cluster: ClusterConfig,
}

impl Stage for CrawlStage {
    const NAME: &'static str = "crawl";
    type Input<'a> = &'a WebCorpus;
    type Output = (CrawlDatabase, CrawlSummary);

    fn run(&self, corpus: &WebCorpus) -> (CrawlDatabase, CrawlSummary) {
        CrawlCluster::new(self.cluster.clone()).crawl_with_summary(corpus)
    }
}

/// Stage 3: compile the filter oracle and label the crawl.
#[derive(Debug, Clone)]
pub struct LabelStage {
    /// Worker threads for per-site parallel labeling (1 = sequential).
    pub workers: usize,
}

impl Stage for LabelStage {
    const NAME: &'static str = "label";
    type Input<'a> = (&'a WebCorpus, &'a CrawlDatabase);
    type Output = (FilterEngine, Vec<LabeledRequest>, LabelStats, CacheStats);

    fn run(&self, (corpus, database): Self::Input<'_>) -> Self::Output {
        let engine = filter_rules::engine_for(&corpus.ecosystem);
        let labeler = Labeler::new(&engine);
        let (requests, stats) = labeler.label_database_parallel(database, self.workers);
        let cache_stats = labeler.cache_stats();
        (engine, requests, stats, cache_stats)
    }
}

/// Stage 4: hierarchical classification of the labeled requests.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyStage {
    /// The classifier (thresholds) to apply.
    pub classifier: HierarchicalClassifier,
}

impl Stage for ClassifyStage {
    const NAME: &'static str = "classify";
    type Input<'a> = &'a [LabeledRequest];
    type Output = HierarchyResult;

    fn run(&self, requests: &[LabeledRequest]) -> HierarchyResult {
        self.classifier.classify(requests)
    }
}

/// The bundled downstream analyses (stage 5, on demand).
#[derive(Debug)]
pub struct StudyAnalyses {
    /// The Figure 4 threshold-sensitivity sweep.
    pub sensitivity: SensitivitySweep,
    /// The Figure 5 call-stack analysis of the mixed-method residue.
    pub callstack: CallStackAnalysis,
    /// Surrogate scripts for every mixed script.
    pub surrogates: Vec<SurrogateScript>,
    /// Wall-clock timing of the analyses stage.
    pub timing: StageTiming,
}

/// Stage 5: the downstream analyses, bundled.
#[derive(Debug, Clone, Copy)]
pub struct AnalysesStage;

impl Stage for AnalysesStage {
    const NAME: &'static str = "analyses";
    type Input<'a> = &'a Study;
    type Output = (SensitivitySweep, CallStackAnalysis, Vec<SurrogateScript>);

    fn run(&self, study: &Study) -> Self::Output {
        (
            study.sensitivity_sweep(),
            study.callstack_analysis(),
            study.surrogates(),
        )
    }
}

/// A fully materialised study: corpus, crawl, labels and classification.
#[derive(Debug)]
pub struct Study {
    /// The configuration the study was run with.
    pub config: StudyConfig,
    /// The generated corpus (the "100K websites").
    pub corpus: WebCorpus,
    /// The filter engine (curated EasyList/EasyPrivacy + ecosystem rules).
    pub engine: FilterEngine,
    /// The crawl database.
    pub database: CrawlDatabase,
    /// Crawl summary statistics.
    pub crawl_summary: CrawlSummary,
    /// The labeled script-initiated requests.
    pub requests: Vec<LabeledRequest>,
    /// Labeling statistics.
    pub label_stats: LabelStats,
    /// Memo-cache hit/miss counters of the labeling stage (observational;
    /// see [`CacheStats`]).
    pub label_cache_stats: CacheStats,
    /// The hierarchical classification result.
    pub hierarchy: HierarchyResult,
    /// Per-stage wall-clock timings of the run.
    pub timings: StageTimings,
}

impl Study {
    /// Run the full pipeline for a configuration as named, timed stages.
    pub fn run(config: StudyConfig) -> Self {
        let mut runner = StageRunner::new();

        let corpus = runner.run(
            &GenerateStage {
                profile: config.profile.clone(),
                seed: config.seed,
            },
            (),
        );
        let (database, crawl_summary) = runner.run(
            &CrawlStage {
                cluster: config.cluster.clone(),
            },
            &corpus,
        );
        let (engine, requests, label_stats, label_cache_stats) = runner.run(
            &LabelStage {
                workers: config.cluster.workers,
            },
            (&corpus, &database),
        );
        let classifier = HierarchicalClassifier::new(config.thresholds);
        let hierarchy = runner.run(&ClassifyStage { classifier }, &requests);

        Study {
            config,
            corpus,
            engine,
            database,
            crawl_summary,
            requests,
            label_stats,
            label_cache_stats,
            hierarchy,
            timings: runner.finish(),
        }
    }

    /// The classifier in force — a cheap `Copy`, derived from the config so
    /// there is exactly one source of truth for the thresholds.
    pub fn classifier(&self) -> HierarchicalClassifier {
        HierarchicalClassifier::new(self.config.thresholds)
    }

    /// Re-run only the classification with different thresholds (cheap: the
    /// classifier is `Copy`, only the threshold field changes).
    pub fn reclassify(&self, thresholds: Thresholds) -> HierarchyResult {
        HierarchicalClassifier::new(thresholds).classify(&self.requests)
    }

    /// The Figure 4 sensitivity sweep.
    pub fn sensitivity_sweep(&self) -> SensitivitySweep {
        SensitivitySweep::paper_sweep(&self.requests)
    }

    /// The Figure 5 call-stack analysis over the mixed-method residue.
    ///
    /// Membership in the residue is tested through interned
    /// `script :: method` symbols — no string key is built per request.
    pub fn callstack_analysis(&self) -> CallStackAnalysis {
        let mut interner = KeyInterner::new();
        let mixed_method_keys: std::collections::HashSet<_> = self
            .hierarchy
            .level(Granularity::Method)
            .resources
            .iter()
            .filter(|r| r.classification == Classification::Mixed)
            .map(|r| interner.intern(&r.key))
            .collect();
        let mut residue: Vec<&LabeledRequest> = Vec::new();
        for request in &self.requests {
            let key = interner.intern_method(&request.initiator_script, &request.initiator_method);
            if mixed_method_keys.contains(&key) {
                residue.push(request);
            }
        }
        analyze_mixed_methods(&residue)
    }

    /// Surrogate scripts for every mixed script.
    pub fn surrogates(&self) -> Vec<SurrogateScript> {
        generate_surrogates(&self.hierarchy, &self.requests)
    }

    /// Run every downstream analysis as one timed [`AnalysesStage`].
    pub fn analyses(&self) -> StudyAnalyses {
        let mut runner = StageRunner::new();
        let (sensitivity, callstack, surrogates) = runner.run(&AnalysesStage, self);
        // Look the timing up by stage name instead of positionally — the
        // runner records one entry per executed stage and indexing `[0]`
        // would silently (or loudly) break the moment another stage joins
        // this runner. The lookup cannot miss (the stage just ran on this
        // runner); assert that in debug builds but stay non-panicking in
        // release, falling back to a zero duration.
        let timing = runner.finish().timing(AnalysesStage::NAME);
        debug_assert!(timing.is_some(), "analyses stage just ran on this runner");
        let timing = timing.unwrap_or(StageTiming {
            name: AnalysesStage::NAME,
            duration: std::time::Duration::ZERO,
        });
        StudyAnalyses {
            sensitivity,
            callstack,
            surrogates,
            timing,
        }
    }

    /// Produce a serving [`Sifter`] trained on this study's labeled
    /// requests — the bridge from the batch pipeline to the long-lived
    /// query API. The study is the *producer*; the sifter (its
    /// [`Sifter::hierarchy`] export, [`Sifter::verdict`] walk, and
    /// [`Sifter::snapshot`] persistence) is how downstream consumers read
    /// the trained state. The study's compiled filter engine rides along,
    /// so [`Sifter::observe_url`] and the filter-list backstop of
    /// [`Sifter::decide`] work out of the box.
    pub fn sifter(&self) -> Sifter {
        let mut sifter = Sifter::builder()
            .thresholds(self.config.thresholds)
            .engine(self.engine.clone())
            .build();
        sifter.observe_all(&self.requests);
        sifter.commit();
        sifter
    }

    /// The Table 3 breakage study over `sample_size` sites with mixed
    /// scripts.
    pub fn breakage_study(&self, sample_size: usize) -> BreakageStudy {
        analyze_breakage(&self.corpus, &self.hierarchy, sample_size)
    }

    /// Flat (non-hierarchical) classification at a single granularity over
    /// *all* script-initiated requests — the ablation baseline showing why
    /// the progressive hierarchy matters. Reuses the study's classifier.
    pub fn flat_classification(&self, granularity: Granularity) -> LevelResult {
        let all: Vec<&LabeledRequest> = self.requests.iter().collect();
        self.classifier().classify_flat(granularity, &all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Study {
        Study::run(StudyConfig::small().with_sites(100))
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let study = study();
        assert_eq!(study.corpus.websites.len(), 100);
        assert_eq!(study.crawl_summary.sites, 100);
        assert!(study.label_stats.labeled() > 1_000);
        assert_eq!(study.hierarchy.total_requests, study.requests.len() as u64);
        // Every script-initiated request went through the label memo cache.
        assert_eq!(
            study.label_cache_stats.lookups(),
            (study.label_stats.labeled() + study.label_stats.excluded_unparseable) as u64
        );
        // All four downstream analyses run.
        assert_eq!(study.sensitivity_sweep().points.len(), 21);
        let breakage = study.breakage_study(5);
        assert!(breakage.rows.len() <= 5);
        let _ = study.callstack_analysis();
        let _ = study.surrogates();
    }

    #[test]
    fn stages_are_named_and_timed() {
        let study = study();
        let names: Vec<&str> = study.timings.all().iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["generate", "crawl", "label", "classify"]);
        for timing in study.timings.all() {
            assert!(
                timing.duration.as_nanos() > 0,
                "{} has no timing",
                timing.name
            );
        }
        assert!(study.timings.total() >= study.timings.duration("crawl").unwrap());
        let analyses = study.analyses();
        assert_eq!(analyses.timing.name, "analyses");
        assert_eq!(analyses.sensitivity.points.len(), 21);
    }

    #[test]
    fn hierarchy_attributes_more_requests_than_domain_level_alone() {
        let study = study();
        let domain_only = study
            .hierarchy
            .level(Granularity::Domain)
            .request_separation_factor();
        let overall = study.hierarchy.overall_attribution();
        assert!(
            overall > domain_only,
            "hierarchy ({overall:.1}%) should beat domain-only ({domain_only:.1}%)"
        );
        assert!(overall > 80.0, "overall attribution {overall:.1}% too low");
    }

    #[test]
    fn flat_classification_matches_domain_level_at_domain_granularity() {
        let study = study();
        let flat = study.flat_classification(Granularity::Domain);
        let hier = study.hierarchy.level(Granularity::Domain);
        assert_eq!(flat.resource_counts, hier.resource_counts);
        assert_eq!(flat.request_counts, hier.request_counts);
    }

    #[test]
    fn flat_method_classification_sees_all_requests() {
        let study = study();
        let flat = study.flat_classification(Granularity::Method);
        assert_eq!(flat.input_requests, study.requests.len() as u64);
        // The hierarchy's method level only sees the mixed-script residue.
        assert!(flat.input_requests >= study.hierarchy.level(Granularity::Method).input_requests);
    }

    #[test]
    fn study_produces_an_equivalent_sifter() {
        let study = study();
        let sifter = study.sifter();
        // The sifter's committed export is exactly the study's hierarchy.
        assert_eq!(sifter.hierarchy(), study.hierarchy);
        assert_eq!(sifter.observed(), study.requests.len() as u64);
        assert_eq!(
            sifter.unattributed_requests(),
            study.hierarchy.unattributed_requests
        );
        // And it serves a verdict for every labeled request it was
        // trained on.
        for request in &study.requests {
            let verdict = sifter.verdict(&crate::service::VerdictRequest::from_labeled(request));
            assert!(verdict.classification().is_some(), "{}", request.url);
        }
    }

    #[test]
    fn reclassify_with_paper_thresholds_is_byte_identical() {
        let study = study();
        let again = study.reclassify(Thresholds::paper());
        assert_eq!(again, study.hierarchy);
        // Byte-level regression guard: the reclassified hierarchy renders to
        // exactly the same bytes as the original, so resource ordering and
        // key formatting cannot silently drift.
        assert_eq!(
            format!("{again:?}").into_bytes(),
            format!("{:?}", study.hierarchy).into_bytes()
        );
    }
}
