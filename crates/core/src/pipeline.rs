//! End-to-end study pipeline.
//!
//! [`Study`] wires the whole reproduction together the way the paper's
//! methodology section describes it: generate (stand-in for "crawl") the
//! websites, capture every script-initiated request with its call stack,
//! label the requests with EasyList + EasyPrivacy, run the hierarchical
//! classifier, and derive the downstream analyses (sensitivity sweep,
//! call-stack analysis of the residue, surrogate generation, breakage
//! study). The bench binaries and the examples are thin wrappers over this
//! type.

use crate::breakage::{analyze_breakage, BreakageStudy};
use crate::callstack::{analyze_mixed_methods, CallStackAnalysis};
use crate::hierarchy::{Granularity, HierarchicalClassifier, HierarchyResult};
use crate::label::{LabelStats, LabeledRequest, Labeler};
use crate::ratio::{Classification, Thresholds};
use crate::sensitivity::SensitivitySweep;
use crate::surrogate::{generate_surrogates, SurrogateScript};
use crawler::{ClusterConfig, CrawlCluster, CrawlDatabase, CrawlSummary};
use filterlist::FilterEngine;
use websim::{filter_rules, CorpusGenerator, CorpusProfile, WebCorpus};

/// Configuration of a study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Corpus profile (number of sites, ecosystem shape, mixing rates).
    pub profile: CorpusProfile,
    /// Corpus seed.
    pub seed: u64,
    /// Crawl cluster configuration.
    pub cluster: ClusterConfig,
    /// Classification thresholds.
    pub thresholds: Thresholds,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            profile: CorpusProfile::paper(),
            seed: 2021,
            cluster: ClusterConfig::default(),
            thresholds: Thresholds::paper(),
        }
    }
}

impl StudyConfig {
    /// A small configuration for tests and the quickstart example.
    pub fn small() -> Self {
        StudyConfig {
            profile: CorpusProfile::small(),
            ..Default::default()
        }
    }

    /// Override the number of sites.
    pub fn with_sites(mut self, sites: usize) -> Self {
        self.profile.sites = sites;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fully materialised study: corpus, crawl, labels and classification.
#[derive(Debug)]
pub struct Study {
    /// The configuration the study was run with.
    pub config: StudyConfig,
    /// The generated corpus (the "100K websites").
    pub corpus: WebCorpus,
    /// The filter engine (curated EasyList/EasyPrivacy + ecosystem rules).
    pub engine: FilterEngine,
    /// The crawl database.
    pub database: CrawlDatabase,
    /// Crawl summary statistics.
    pub crawl_summary: CrawlSummary,
    /// The labeled script-initiated requests.
    pub requests: Vec<LabeledRequest>,
    /// Labeling statistics.
    pub label_stats: LabelStats,
    /// The hierarchical classification result.
    pub hierarchy: HierarchyResult,
}

impl Study {
    /// Run the full pipeline for a configuration.
    pub fn run(config: StudyConfig) -> Self {
        let corpus = CorpusGenerator::generate(&config.profile, config.seed);
        let engine = filter_rules::engine_for(&corpus.ecosystem);
        let cluster = CrawlCluster::new(config.cluster.clone());
        let (database, crawl_summary) = cluster.crawl_with_summary(&corpus);
        let (requests, label_stats) = Labeler::new(&engine).label_database(&database);
        let hierarchy = HierarchicalClassifier::new(config.thresholds).classify(&requests);
        Study {
            config,
            corpus,
            engine,
            database,
            crawl_summary,
            requests,
            label_stats,
            hierarchy,
        }
    }

    /// Re-run only the classification with different thresholds (cheap).
    pub fn reclassify(&self, thresholds: Thresholds) -> HierarchyResult {
        HierarchicalClassifier::new(thresholds).classify(&self.requests)
    }

    /// The Figure 4 sensitivity sweep.
    pub fn sensitivity_sweep(&self) -> SensitivitySweep {
        SensitivitySweep::paper_sweep(&self.requests)
    }

    /// The Figure 5 call-stack analysis over the mixed-method residue.
    pub fn callstack_analysis(&self) -> CallStackAnalysis {
        let mixed_method_keys: std::collections::HashSet<&str> = self
            .hierarchy
            .level(Granularity::Method)
            .resources
            .iter()
            .filter(|r| r.classification == Classification::Mixed)
            .map(|r| r.key.as_str())
            .collect();
        let residue: Vec<&LabeledRequest> = self
            .requests
            .iter()
            .filter(|r| {
                let key = format!("{} :: {}", r.initiator_script, r.initiator_method);
                mixed_method_keys.contains(key.as_str())
            })
            .collect();
        analyze_mixed_methods(&residue)
    }

    /// Surrogate scripts for every mixed script.
    pub fn surrogates(&self) -> Vec<SurrogateScript> {
        generate_surrogates(&self.hierarchy, &self.requests)
    }

    /// The Table 3 breakage study over `sample_size` sites with mixed
    /// scripts.
    pub fn breakage_study(&self, sample_size: usize) -> BreakageStudy {
        analyze_breakage(&self.corpus, &self.hierarchy, sample_size)
    }

    /// Flat (non-hierarchical) classification at a single granularity over
    /// *all* script-initiated requests — the ablation baseline showing why
    /// the progressive hierarchy matters.
    pub fn flat_classification(&self, granularity: Granularity) -> crate::hierarchy::LevelResult {
        let classifier = HierarchicalClassifier::new(self.config.thresholds);
        // Reuse the hierarchy machinery by running a one-level pipeline.
        let all: Vec<&LabeledRequest> = self.requests.iter().collect();
        let key = |r: &LabeledRequest| match granularity {
            Granularity::Domain => r.domain.clone(),
            Granularity::Hostname => r.hostname.clone(),
            Granularity::Script => r.initiator_script.clone(),
            Granularity::Method => format!("{} :: {}", r.initiator_script, r.initiator_method),
        };
        classifier.classify_flat(granularity, &all, key)
    }
}

impl HierarchicalClassifier {
    /// Classify a single granularity over an arbitrary request set (used by
    /// the flat-vs-hierarchical ablation).
    pub fn classify_flat<'a>(
        &self,
        granularity: Granularity,
        input: &[&'a LabeledRequest],
        key: impl Fn(&LabeledRequest) -> String,
    ) -> crate::hierarchy::LevelResult {
        // Delegate to the private per-level routine via a tiny shim: rebuild
        // the grouping logic here to keep the hierarchy internals private.
        use crate::hierarchy::{ClassCounts, LevelResult, ResourceEntry};
        use crate::ratio::Counts;
        use std::collections::HashMap;

        let mut groups: HashMap<String, Counts> = HashMap::new();
        for request in input {
            groups.entry(key(request)).or_default().record(request.is_tracking());
        }
        let mut resources: Vec<ResourceEntry> = groups
            .into_iter()
            .map(|(key, counts)| ResourceEntry {
                classification: self.thresholds.classify(&counts).expect("non-empty"),
                key,
                counts,
            })
            .collect();
        resources.sort_by(|a, b| {
            b.counts
                .total()
                .cmp(&a.counts.total())
                .then_with(|| a.key.cmp(&b.key))
        });
        let mut resource_counts = ClassCounts::default();
        let mut request_counts = ClassCounts::default();
        for r in &resources {
            resource_counts.add(r.classification, 1);
            request_counts.add(r.classification, r.counts.total());
        }
        LevelResult {
            granularity,
            resources,
            resource_counts,
            request_counts,
            input_requests: input.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Study {
        Study::run(StudyConfig::small().with_sites(100))
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let study = study();
        assert_eq!(study.corpus.websites.len(), 100);
        assert_eq!(study.crawl_summary.sites, 100);
        assert!(study.label_stats.labeled() > 1_000);
        assert_eq!(study.hierarchy.total_requests, study.requests.len() as u64);
        // All four downstream analyses run.
        assert_eq!(study.sensitivity_sweep().points.len(), 21);
        let breakage = study.breakage_study(5);
        assert!(breakage.rows.len() <= 5);
        let _ = study.callstack_analysis();
        let _ = study.surrogates();
    }

    #[test]
    fn hierarchy_attributes_more_requests_than_domain_level_alone() {
        let study = study();
        let domain_only = study.hierarchy.level(Granularity::Domain).request_separation_factor();
        let overall = study.hierarchy.overall_attribution();
        assert!(
            overall > domain_only,
            "hierarchy ({overall:.1}%) should beat domain-only ({domain_only:.1}%)"
        );
        assert!(overall > 80.0, "overall attribution {overall:.1}% too low");
    }

    #[test]
    fn flat_classification_matches_domain_level_at_domain_granularity() {
        let study = study();
        let flat = study.flat_classification(Granularity::Domain);
        let hier = study.hierarchy.level(Granularity::Domain);
        assert_eq!(flat.resource_counts, hier.resource_counts);
        assert_eq!(flat.request_counts, hier.request_counts);
    }

    #[test]
    fn flat_method_classification_sees_all_requests() {
        let study = study();
        let flat = study.flat_classification(Granularity::Method);
        assert_eq!(flat.input_requests, study.requests.len() as u64);
        // The hierarchy's method level only sees the mixed-script residue.
        assert!(flat.input_requests >= study.hierarchy.level(Granularity::Method).input_requests);
    }

    #[test]
    fn reclassify_with_same_threshold_is_identical() {
        let study = study();
        let again = study.reclassify(Thresholds::paper());
        assert_eq!(again, study.hierarchy);
    }
}
