//! Memoized request labeling.
//!
//! At crawl scale the same (url, page hostname, resource type) triple is
//! evaluated against the filter oracle over and over: popular trackers
//! appear on thousands of sites, and a single page fires the same beacon
//! URL repeatedly. The oracle is a pure function of that triple, so the
//! labeling stage can memoize it: [`LabelCache`] stores one
//! [`filterlist::RequestLabel`] (plus the derived hostname and registrable
//! domain) per distinct triple and every later occurrence skips URL
//! parsing, tokenization and the engine scan entirely.
//!
//! The cache is *sharded*: triples are distributed over independently
//! locked shards by a hash of the URL, so rayon workers labeling different
//! sites rarely contend. Each shard keys its map through the existing
//! [`KeyInterner`] — the URL and source-hostname strings are interned once
//! and the map key is a pair of `Copy` [`ResourceKey`] symbols, not owned
//! strings. The [`filterlist::FilterEngine`] itself stays free of interior
//! mutability (its `Send + Sync` compile-time assertion is untouched);
//! memoization is layered on top, and because the cached value equals what
//! a fresh evaluation would produce, parallel and sequential labeling
//! remain byte-identical.

use crate::intern::{KeyInterner, ResourceKey};
use filterlist::tokens::{fnv1a64, TokenHashBuilder};
use filterlist::ResourceType;
use filterlist::{registrable_domain, FilterEngine, FilterRequest, ParsedUrl, RequestLabel};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of shards. Power of two, comfortably above typical worker
/// counts so concurrent workers rarely queue on the same lock.
const DEFAULT_SHARDS: usize = 128;

/// Hit/miss counters of a [`LabelCache`].
///
/// Totals are exact, but the hit/miss split is observational: under
/// parallel labeling two workers can race to first-evaluate the same triple
/// (both count a miss), so the split may vary across runs even though the
/// produced labels never do. It is therefore reported by benchmarks but
/// deliberately kept out of [`crate::label::LabelStats`] equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate the oracle.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// The memoized outcome of labeling one (url, source hostname, type) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CachedLabel {
    label: RequestLabel,
    /// Interned request-URL hostname (in the owning shard's interner).
    hostname: ResourceKey,
    /// Interned registrable domain of the hostname.
    domain: ResourceKey,
}

/// The labeling result handed back to the labeler on both hit and miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelOutcome {
    /// The oracle label.
    pub label: RequestLabel,
    /// Hostname of the request URL.
    pub hostname: String,
    /// Registrable domain (eTLD+1) of the hostname.
    pub domain: String,
}

#[derive(Debug, Default)]
struct Shard {
    interner: KeyInterner,
    /// (url, source hostname, resource type) → memoized outcome.
    /// `None` records a URL the parser rejected, so unparseable URLs are
    /// also answered from the cache. The key is three small `Copy` ids, so
    /// the cheap token-hash `BuildHasher` replaces SipHash here too.
    map: HashMap<(ResourceKey, ResourceKey, ResourceType), Option<CachedLabel>, TokenHashBuilder>,
}

/// A sharded memoization cache for oracle evaluations.
#[derive(Debug)]
pub struct LabelCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for LabelCache {
    fn default() -> Self {
        Self::new()
    }
}

impl LabelCache {
    /// A cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (rounded up to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        LabelCache {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, url: &str) -> &Mutex<Shard> {
        let hash = fnv1a64(url.as_bytes());
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Label a URL through the cache. Returns `None` when the URL cannot be
    /// parsed (the labeling stage excludes such requests), caching that
    /// verdict too.
    pub fn label_url(
        &self,
        engine: &FilterEngine,
        url: &str,
        source_hostname: &str,
        resource_type: ResourceType,
    ) -> Option<LabelOutcome> {
        let shard_lock = self.shard(url);
        // Read pass: intern the triple (get-or-insert, so the key survives
        // to the insert pass without re-hashing the URL) and probe the map.
        // On a hit only Arc refcounts are bumped under the lock; the String
        // copies for the outcome happen after it is released, so the
        // hottest (most-shared) URLs don't serialise workers on the shard.
        let key = {
            let mut shard = shard_lock.lock().expect("label cache shard poisoned");
            let key = (
                shard.interner.intern(url),
                shard.interner.intern(source_hostname),
                resource_type,
            );
            if let Some(&cached) = shard.map.get(&key) {
                let shared = cached.map(|c| {
                    (
                        c.label,
                        shard.interner.resolve_shared(c.hostname),
                        shard.interner.resolve_shared(c.domain),
                    )
                });
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return shared.map(|(label, hostname, domain)| LabelOutcome {
                    label,
                    hostname: hostname.to_string(),
                    domain: domain.to_string(),
                });
            }
            key
        };

        // Miss: evaluate outside the lock so one shard never serialises two
        // engine scans. Two workers racing on the same triple both compute
        // it — wasteful but rare, and harmless because the oracle is pure.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = ParsedUrl::parse(url).map(|parsed| {
            let request = FilterRequest::from_parsed(parsed, source_hostname, resource_type);
            let label = engine.label(&request);
            let hostname = request.into_url().hostname;
            let domain = registrable_domain(&hostname);
            LabelOutcome {
                label,
                hostname,
                domain,
            }
        });

        let mut shard = shard_lock.lock().expect("label cache shard poisoned");
        let cached = outcome.as_ref().map(|o| CachedLabel {
            label: o.label,
            hostname: shard.interner.intern(&o.hostname),
            domain: shard.interner.intern(&o.domain),
        });
        shard.map.insert(key, cached);
        outcome
    }
}

// Shared read-only across rayon workers during parallel labeling.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LabelCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use filterlist::{FilterEngine, ListKind};

    fn engine() -> FilterEngine {
        FilterEngine::from_lists(&[(
            ListKind::EasyList,
            "||tracker.io^$third-party\n@@||tracker.io/allow/\n",
        )])
    }

    #[test]
    fn hit_returns_the_same_outcome_as_the_miss() {
        let engine = engine();
        let cache = LabelCache::with_shards(4);
        let miss = cache
            .label_url(
                &engine,
                "https://px.tracker.io/t.js",
                "shop.com",
                ResourceType::Script,
            )
            .unwrap();
        let hit = cache
            .label_url(
                &engine,
                "https://px.tracker.io/t.js",
                "shop.com",
                ResourceType::Script,
            )
            .unwrap();
        assert_eq!(miss, hit);
        assert_eq!(miss.label, RequestLabel::Tracking);
        assert_eq!(miss.hostname, "px.tracker.io");
        assert_eq!(miss.domain, "tracker.io");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_triples_are_cached_separately() {
        let engine = engine();
        let cache = LabelCache::new();
        let third = cache
            .label_url(
                &engine,
                "https://px.tracker.io/t.js",
                "shop.com",
                ResourceType::Script,
            )
            .unwrap();
        // Same URL, first-party source: the $third-party option flips it.
        let first = cache
            .label_url(
                &engine,
                "https://px.tracker.io/t.js",
                "tracker.io",
                ResourceType::Script,
            )
            .unwrap();
        assert_eq!(third.label, RequestLabel::Tracking);
        assert_eq!(first.label, RequestLabel::Functional);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn unparseable_urls_are_cached_as_excluded() {
        let engine = engine();
        let cache = LabelCache::new();
        assert!(cache
            .label_url(&engine, "notaurl", "shop.com", ResourceType::Script)
            .is_none());
        assert!(cache
            .label_url(&engine, "notaurl", "shop.com", ResourceType::Script)
            .is_none());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn single_shard_cache_still_works() {
        let engine = engine();
        let cache = LabelCache::with_shards(1);
        for url in [
            "https://a.io/xxx.js",
            "https://b.io/yyy.js",
            "https://a.io/xxx.js",
        ] {
            cache.label_url(&engine, url, "shop.com", ResourceType::Script);
        }
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
    }
}
