//! Versioned persistence of trained [`Sifter`](crate::service::Sifter)
//! state.
//!
//! A [`SifterSnapshot`] captures everything a serving process needs to
//! answer verdicts after a restart without re-crawling or re-labeling: the
//! interner's string table (so resource ids — and therefore verdicts and
//! [`hierarchy`](crate::service::Sifter::hierarchy) exports — are bitwise
//! stable across the round-trip), the hostname → domain and method →
//! (script, name) attributions, and the finest-granularity count cells
//! (per `(method, hostname)` pair). Every coarser count is a sum of those
//! cells, so nothing else needs to be stored; restore replays the cells
//! through the sifter's normal accumulation path and commits once. That
//! commit also (re)builds the flattened [`crate::table`] representation, so
//! a restored sifter — and any [`SifterReader`](crate::concurrent::SifterReader)
//! split off it via [`Sifter::into_concurrent`](crate::service::Sifter::into_concurrent)
//! — serves through exactly the same verdict tables as the process that
//! exported the snapshot.
//!
//! # Format and versioning
//!
//! Snapshots serialise through the dependency-free [`crawler::json`] codec
//! as a single JSON object:
//!
//! ```json
//! {
//!   "format": "trackersift.sifter",
//!   "version": 1,
//!   "threshold": 2,
//!   "observed": 123456,
//!   "keys": ["google.com", "cdn.google.com", ...],
//!   "hostnames": [[1, 0], ...],
//!   "methods": [[9, 4, 7], ...],
//!   "cells": [[9, 1, 40, 2], ...]
//! }
//! ```
//!
//! * `format` is a fixed marker ([`SifterSnapshot::FORMAT`]); anything else
//!   is rejected with [`SnapshotError::UnknownFormat`].
//! * `version` is the format's schema version
//!   ([`SifterSnapshot::FORMAT_VERSION`], currently 1). Readers reject
//!   snapshots with a different version with
//!   [`SnapshotError::UnsupportedVersion`] instead of guessing — bump the
//!   constant (and write a migration) whenever the schema changes shape.
//! * `keys` is the interner string table in id order; `hostnames`,
//!   `methods` and `cells` reference it by index
//!   (`[hostname, domain]`, `[method, script, method-name]` and
//!   `[method, hostname, tracking, functional]` respectively).
//!
//! The writer is deterministic (rows sorted by id), so equal sifter states
//! render to byte-identical snapshots — the round-trip property the
//! service tests pin down.

use crawler::json::{object, FromJson, JsonError, ToJson, Value};
use std::fmt;

/// Errors from decoding or restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The document is not a sifter snapshot at all.
    UnknownFormat(String),
    /// The snapshot was written by a different schema version.
    UnsupportedVersion {
        /// Version found in the document.
        found: u64,
        /// The version this build reads.
        supported: u32,
    },
    /// The document parsed but its contents are inconsistent.
    Corrupt(String),
    /// The document is not valid JSON (or a field has the wrong type).
    Json(JsonError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnknownFormat(found) => {
                write!(f, "not a sifter snapshot (format marker {found:?})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} is not supported (this build reads version {supported})"
            ),
            SnapshotError::Corrupt(message) => write!(f, "corrupt snapshot: {message}"),
            SnapshotError::Json(error) => write!(f, "snapshot decode failed: {error}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<JsonError> for SnapshotError {
    fn from(error: JsonError) -> Self {
        SnapshotError::Json(error)
    }
}

/// Exported trained state of a [`Sifter`](crate::service::Sifter); see the
/// [module docs](self) for the format.
#[derive(Debug, Clone, PartialEq)]
pub struct SifterSnapshot {
    /// The symmetric log-ratio threshold in force.
    pub(crate) threshold: f64,
    /// Total observations the state accumulates.
    pub(crate) observed: u64,
    /// Interner string table, in id order.
    pub(crate) keys: Vec<String>,
    /// `(hostname id, domain id)` rows, sorted.
    pub(crate) hostnames: Vec<(u32, u32)>,
    /// `(method id, script id, method-name id)` rows, sorted.
    pub(crate) methods: Vec<(u32, u32, u32)>,
    /// `(method id, hostname id, tracking, functional)` rows, sorted.
    pub(crate) cells: Vec<(u32, u32, u64, u64)>,
}

impl SifterSnapshot {
    /// The fixed format marker.
    pub const FORMAT: &'static str = "trackersift.sifter";

    /// The schema version this build writes and reads.
    pub const FORMAT_VERSION: u32 = 1;

    /// The classification threshold stored in the snapshot.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Total observations the snapshot carries.
    pub fn observations(&self) -> u64 {
        self.observed
    }

    /// Number of interned key strings.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of `(method, hostname)` count cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Render to the canonical (deterministic) JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json_value().render()
    }

    /// Parse from JSON text, validating format marker, version, and
    /// structural consistency (see [`SifterSnapshot::validate`]).
    pub fn parse(text: &str) -> Result<Self, SnapshotError> {
        let value = Value::parse(text)?;
        // Validate the envelope first so format/version mismatches surface
        // as their precise variants rather than generic JSON errors.
        if let Some(error) = envelope_error(&value) {
            return Err(error);
        }
        let snapshot = Self::from_json_value(&value)?;
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Structural validation beyond JSON well-formedness: every row must
    /// reference an in-range key id, every count cell must carry at least
    /// one request (a zero cell is unrepresentable through `observe` and is
    /// the signature of a truncated export), and the cells must sum to the
    /// claimed observation total without overflowing. Importing such a
    /// document used to fail only at restore time (or, for the zero-cell
    /// case, silently skew later reclassification); [`SifterSnapshot::parse`]
    /// now rejects it up front with a typed [`SnapshotError::Corrupt`].
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let keys = self.keys.len();
        let check = |id: u32, what: &str| -> Result<(), SnapshotError> {
            if (id as usize) < keys {
                Ok(())
            } else {
                Err(SnapshotError::Corrupt(format!(
                    "{what} id {id} out of range ({keys} keys)"
                )))
            }
        };
        for &(h, d) in &self.hostnames {
            check(h, "hostname")?;
            check(d, "domain")?;
        }
        for &(m, s, n) in &self.methods {
            check(m, "method")?;
            check(s, "script")?;
            check(n, "method-name")?;
        }
        let mut total = 0u64;
        for &(m, h, tracking, functional) in &self.cells {
            check(m, "cell method")?;
            check(h, "cell hostname")?;
            let cell = tracking.checked_add(functional).ok_or_else(|| {
                SnapshotError::Corrupt(format!(
                    "count cell for method id {m} on hostname id {h} overflows u64"
                ))
            })?;
            if cell == 0 {
                return Err(SnapshotError::Corrupt(format!(
                    "count cell for method id {m} on hostname id {h} is empty \
                     (truncated export?)"
                )));
            }
            total = total.checked_add(cell).ok_or_else(|| {
                SnapshotError::Corrupt("count cells sum overflows u64".to_string())
            })?;
        }
        if total != self.observed {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot claims {} observations but its cells sum to {total}",
                self.observed
            )));
        }
        Ok(())
    }
}

/// The single source of truth for format-marker / version acceptance: a
/// `Some` means the envelope itself is wrong. Missing or mistyped envelope
/// fields return `None` and fall through to the field-by-field decode,
/// which reports them as JSON errors.
fn envelope_error(value: &Value) -> Option<SnapshotError> {
    let format = value.get("format")?.as_str().ok()?;
    if format != SifterSnapshot::FORMAT {
        return Some(SnapshotError::UnknownFormat(format.to_string()));
    }
    let version = value.get("version")?.as_u64().ok()?;
    if version != u64::from(SifterSnapshot::FORMAT_VERSION) {
        return Some(SnapshotError::UnsupportedVersion {
            found: version,
            supported: SifterSnapshot::FORMAT_VERSION,
        });
    }
    None
}

impl ToJson for SifterSnapshot {
    fn to_json_value(&self) -> Value {
        object(vec![
            ("format", Value::String(Self::FORMAT.to_string())),
            (
                "version",
                Value::number_u64(u64::from(Self::FORMAT_VERSION)),
            ),
            ("threshold", Value::Number(self.threshold)),
            ("observed", Value::number_u64(self.observed)),
            (
                "keys",
                Value::Array(self.keys.iter().map(|k| Value::String(k.clone())).collect()),
            ),
            (
                "hostnames",
                Value::Array(
                    self.hostnames
                        .iter()
                        .map(|&(h, d)| {
                            Value::Array(vec![
                                Value::number_u64(u64::from(h)),
                                Value::number_u64(u64::from(d)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "methods",
                Value::Array(
                    self.methods
                        .iter()
                        .map(|&(m, s, n)| {
                            Value::Array(vec![
                                Value::number_u64(u64::from(m)),
                                Value::number_u64(u64::from(s)),
                                Value::number_u64(u64::from(n)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cells",
                Value::Array(
                    self.cells
                        .iter()
                        .map(|&(m, h, t, f)| {
                            Value::Array(vec![
                                Value::number_u64(u64::from(m)),
                                Value::number_u64(u64::from(h)),
                                Value::number_u64(t),
                                Value::number_u64(f),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for SifterSnapshot {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        // Delegate acceptance to the shared envelope check (one source of
        // truth with `SifterSnapshot::parse`); the two field reads below
        // only enforce presence and type.
        if let Some(error) = envelope_error(value) {
            return Err(JsonError(error.to_string()));
        }
        let _ = value.field("format")?.as_str()?;
        let _ = value.field("version")?.as_u64()?;
        let threshold = match value.field("threshold")? {
            Value::Number(n) => *n,
            other => return Err(JsonError(format!("expected number, got {other:?}"))),
        };
        let observed = value.field("observed")?.as_u64()?;
        let keys = value
            .field("keys")?
            .as_array()?
            .iter()
            .map(|k| k.as_str().map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        let hostnames = value
            .field("hostnames")?
            .as_array()?
            .iter()
            .map(|row| {
                let row = row.as_array()?;
                match row {
                    [h, d] => Ok((h.as_u32()?, d.as_u32()?)),
                    _ => Err(JsonError(format!(
                        "hostname row has {} fields, expected 2",
                        row.len()
                    ))),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let methods = value
            .field("methods")?
            .as_array()?
            .iter()
            .map(|row| {
                let row = row.as_array()?;
                match row {
                    [m, s, n] => Ok((m.as_u32()?, s.as_u32()?, n.as_u32()?)),
                    _ => Err(JsonError(format!(
                        "method row has {} fields, expected 3",
                        row.len()
                    ))),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let cells = value
            .field("cells")?
            .as_array()?
            .iter()
            .map(|row| {
                let row = row.as_array()?;
                match row {
                    [m, h, t, f] => Ok((m.as_u32()?, h.as_u32()?, t.as_u64()?, f.as_u64()?)),
                    _ => Err(JsonError(format!(
                        "cell row has {} fields, expected 4",
                        row.len()
                    ))),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SifterSnapshot {
            threshold,
            observed,
            keys,
            hostnames,
            methods,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SifterSnapshot {
        SifterSnapshot {
            threshold: 2.0,
            observed: 7,
            keys: vec![
                "ads.com".into(),
                "px.ads.com".into(),
                "https://p.com/a.js".into(),
                "send".into(),
                "https://p.com/a.js :: send".into(),
            ],
            hostnames: vec![(1, 0)],
            methods: vec![(4, 2, 3)],
            cells: vec![(4, 1, 7, 0)],
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let snapshot = sample();
        let text = snapshot.to_json_string();
        // Assert on the typed result — a parse failure here must show the
        // precise `SnapshotError`, not an opaque unwrap panic.
        let back = SifterSnapshot::parse(&text);
        assert_eq!(back, Ok(snapshot));
        assert_eq!(back.map(|parsed| parsed.to_json_string()), Ok(text.clone()));
        assert!(text.contains("\"format\":\"trackersift.sifter\""));
        assert!(text.contains("\"version\":1"));
    }

    #[test]
    fn out_of_range_key_ids_are_rejected_at_parse_time() {
        // A hostname row referencing key id 99 with only 5 keys: typed
        // corruption, not a silent import that detonates at restore.
        let text = sample().to_json_string().replace("[[1,0]]", "[[99,0]]");
        assert!(matches!(
            SifterSnapshot::parse(&text),
            Err(SnapshotError::Corrupt(message)) if message.contains("out of range")
        ));
        // Same for the method and cell tables.
        let text = sample().to_json_string().replace("[[4,2,3]]", "[[4,77,3]]");
        assert!(matches!(
            SifterSnapshot::parse(&text),
            Err(SnapshotError::Corrupt(message)) if message.contains("out of range")
        ));
        let text = sample()
            .to_json_string()
            .replace("[[4,1,7,0]]", "[[4,88,7,0]]");
        assert!(matches!(
            SifterSnapshot::parse(&text),
            Err(SnapshotError::Corrupt(message)) if message.contains("out of range")
        ));
    }

    #[test]
    fn truncated_count_cells_are_rejected_at_parse_time() {
        // A zero-count cell is unrepresentable through `observe`: the
        // signature of a truncated export.
        let text = sample()
            .to_json_string()
            .replace("[[4,1,7,0]]", "[[4,1,0,0]]")
            .replace("\"observed\":7", "\"observed\":0");
        assert!(matches!(
            SifterSnapshot::parse(&text),
            Err(SnapshotError::Corrupt(message)) if message.contains("empty")
        ));
    }

    #[test]
    fn observation_totals_must_match_the_cells() {
        let text = sample()
            .to_json_string()
            .replace("\"observed\":7", "\"observed\":9");
        assert!(matches!(
            SifterSnapshot::parse(&text),
            Err(SnapshotError::Corrupt(message)) if message.contains("cells sum")
        ));
    }

    #[test]
    fn unknown_format_is_rejected() {
        let text = sample()
            .to_json_string()
            .replace("trackersift.sifter", "something.else");
        assert!(matches!(
            SifterSnapshot::parse(&text),
            Err(SnapshotError::UnknownFormat(found)) if found == "something.else"
        ));
    }

    #[test]
    fn future_versions_are_rejected_not_guessed() {
        let text = sample()
            .to_json_string()
            .replace("\"version\":1", "\"version\":2");
        assert_eq!(
            SifterSnapshot::parse(&text),
            Err(SnapshotError::UnsupportedVersion {
                found: 2,
                supported: 1
            })
        );
    }

    #[test]
    fn malformed_documents_report_json_errors() {
        assert!(matches!(
            SifterSnapshot::parse("{"),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            SifterSnapshot::parse("{\"format\":\"trackersift.sifter\",\"version\":1}"),
            Err(SnapshotError::Json(_))
        ));
        let bad_row = sample().to_json_string().replace("[[1,0]]", "[[1]]");
        assert!(matches!(
            SifterSnapshot::parse(&bad_row),
            Err(SnapshotError::Json(_))
        ));
    }

    #[test]
    fn errors_render_helpfully() {
        let error = SnapshotError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(error.to_string().contains("version 9"));
        assert!(SnapshotError::Corrupt("x".into()).to_string().contains("x"));
    }
}
