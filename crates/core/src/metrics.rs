//! Summary metrics derived from a [`HierarchyResult`]: the rows of the
//! paper's Table 1 and Table 2 and the headline percentages from the
//! abstract (17% mixed domains, 48% mixed hostnames, 6% mixed scripts, 9%
//! mixed methods, 98% of requests attributed).

use crate::hierarchy::{Granularity, HierarchyResult};
use serde::{Deserialize, Serialize};

/// One row of Table 1 (requests per class at a granularity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Granularity of the row.
    pub granularity: Granularity,
    /// Requests attributed to tracking resources.
    pub tracking: u64,
    /// Requests attributed to functional resources.
    pub functional: u64,
    /// Requests attributed to mixed resources (passed to the next level).
    pub mixed: u64,
    /// Separation factor over this level's input requests, percent.
    pub separation_factor: f64,
    /// Cumulative separation over all script-initiated requests, percent.
    pub cumulative_separation: f64,
}

/// One row of Table 2 (unique resources per class at a granularity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Granularity of the row.
    pub granularity: Granularity,
    /// Resources classified tracking.
    pub tracking: u64,
    /// Resources classified functional.
    pub functional: u64,
    /// Resources classified mixed.
    pub mixed: u64,
    /// Separation factor over unique resources, percent.
    pub separation_factor: f64,
}

/// The headline numbers the abstract reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineSummary {
    /// Percent of domains classified mixed.
    pub mixed_domains_pct: f64,
    /// Percent of hostnames (within mixed domains) classified mixed.
    pub mixed_hostnames_pct: f64,
    /// Percent of scripts (within mixed hostnames) classified mixed.
    pub mixed_scripts_pct: f64,
    /// Percent of methods (within mixed scripts) classified mixed.
    pub mixed_methods_pct: f64,
    /// Percent of script-initiated requests attributed to tracking or
    /// functional resources by the end of the hierarchy.
    pub requests_attributed_pct: f64,
}

/// Build the Table 1 rows from a hierarchy result.
pub fn table1(result: &HierarchyResult) -> Vec<Table1Row> {
    let cumulative = result.cumulative_separation();
    result
        .levels
        .iter()
        .zip(cumulative)
        .map(|(level, (_, cum))| Table1Row {
            granularity: level.granularity,
            tracking: level.request_counts.tracking,
            functional: level.request_counts.functional,
            mixed: level.request_counts.mixed,
            separation_factor: level.request_separation_factor(),
            cumulative_separation: cum,
        })
        .collect()
}

/// Build the Table 2 rows from a hierarchy result.
pub fn table2(result: &HierarchyResult) -> Vec<Table2Row> {
    result
        .levels
        .iter()
        .map(|level| Table2Row {
            granularity: level.granularity,
            tracking: level.resource_counts.tracking,
            functional: level.resource_counts.functional,
            mixed: level.resource_counts.mixed,
            separation_factor: level.resource_separation_factor(),
        })
        .collect()
}

/// Build the headline summary from a hierarchy result.
pub fn headline(result: &HierarchyResult) -> HeadlineSummary {
    let mixed_pct = |g: Granularity| result.level(g).resource_counts.mixed_share();
    HeadlineSummary {
        mixed_domains_pct: mixed_pct(Granularity::Domain),
        mixed_hostnames_pct: mixed_pct(Granularity::Hostname),
        mixed_scripts_pct: mixed_pct(Granularity::Script),
        mixed_methods_pct: mixed_pct(Granularity::Method),
        requests_attributed_pct: result.overall_attribution(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchicalClassifier;
    use crate::label::{LabeledFrame, LabeledRequest};
    use filterlist::{RequestLabel, ResourceType};

    fn req(
        domain: &str,
        hostname: &str,
        script: &str,
        method: &str,
        tracking: bool,
    ) -> LabeledRequest {
        LabeledRequest {
            request_id: 0,
            top_level_url: "https://www.pub.com/".into(),
            site_domain: "pub.com".into(),
            url: format!("https://{hostname}/x"),
            domain: domain.into(),
            hostname: hostname.into(),
            resource_type: ResourceType::Xhr,
            initiator_script: script.into(),
            initiator_method: method.into(),
            stack: vec![LabeledFrame {
                script_url: script.into(),
                method: method.into(),
            }],
            async_boundary: None,
            label: if tracking {
                RequestLabel::Tracking
            } else {
                RequestLabel::Functional
            },
        }
    }

    fn sample() -> Vec<LabeledRequest> {
        let mut v = Vec::new();
        for _ in 0..10 {
            v.push(req("ads.com", "px.ads.com", "s1", "t", true));
            v.push(req("cdn.com", "img.cdn.com", "s2", "f", false));
        }
        for _ in 0..5 {
            v.push(req("hub.com", "www.hub.com", "s3", "a", true));
            v.push(req("hub.com", "www.hub.com", "s4", "b", false));
        }
        v
    }

    #[test]
    fn table1_rows_cover_all_levels_and_sum_correctly() {
        let result = HierarchicalClassifier::default().classify(&sample());
        let rows = table1(&result);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].granularity, Granularity::Domain);
        // Domain row: 10 tracking (ads.com) + 10 functional (cdn.com) + 10 mixed (hub.com).
        assert_eq!(rows[0].tracking, 10);
        assert_eq!(rows[0].functional, 10);
        assert_eq!(rows[0].mixed, 10);
        assert!((rows[0].separation_factor - 66.666).abs() < 0.1);
        // Cumulative separation is non-decreasing and ends at the overall figure.
        for w in rows.windows(2) {
            assert!(w[1].cumulative_separation >= w[0].cumulative_separation);
        }
        assert!((rows[3].cumulative_separation - result.overall_attribution()).abs() < 1e-9);
    }

    #[test]
    fn table2_rows_match_resource_counts() {
        let result = HierarchicalClassifier::default().classify(&sample());
        let rows = table2(&result);
        assert_eq!(rows[0].tracking, 1);
        assert_eq!(rows[0].functional, 1);
        assert_eq!(rows[0].mixed, 1);
        // Hostname level only sees hub.com's single hostname, which is mixed.
        assert_eq!(rows[1].mixed, 1);
        assert_eq!(rows[1].tracking + rows[1].functional, 0);
        // Script level separates s3 (tracking) and s4 (functional).
        assert_eq!(rows[2].tracking, 1);
        assert_eq!(rows[2].functional, 1);
        assert_eq!(rows[2].mixed, 0);
    }

    #[test]
    fn headline_matches_levels() {
        let result = HierarchicalClassifier::default().classify(&sample());
        let h = headline(&result);
        assert!((h.mixed_domains_pct - 100.0 / 3.0).abs() < 0.1);
        assert!((h.mixed_hostnames_pct - 100.0).abs() < 1e-9);
        assert!((h.mixed_scripts_pct - 0.0).abs() < 1e-9);
        assert!((h.requests_attributed_pct - 100.0).abs() < 1e-9);
    }
}
