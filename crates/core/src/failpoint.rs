//! Deterministic fault injection for the durability and serving layers.
//!
//! A crash-only server earns its guarantees by being *tested against*
//! faults, not by hoping they never happen. This module is the seam the
//! fault-injection harness (`tests/fault_injection.rs`) uses to inject
//! failures at precise points: short reads/writes, `EINTR`/`WouldBlock`
//! storms, fsync failures, worker panics, and write cut-offs that simulate
//! a crash at an exact journal byte offset.
//!
//! # Zero cost when disabled
//!
//! The whole module is gated on the `failpoints` cargo feature. Without
//! the feature every function below is an `#[inline(always)]` no-op stub
//! — `check_io` returns `Ok(())`, [`clamp`] returns its input, and the
//! compiler removes the calls entirely. Production builds pay nothing.
//!
//! With `--features failpoints`, a process-global registry maps failpoint
//! names to armed [`Action`]s. Tests arm a point, drive the system, and
//! assert on the observed degradation:
//!
//! ```
//! use trackersift::failpoint;
//!
//! // Arm: the next 3 hits of "journal.sync" fail like a dying disk.
//! failpoint::set(
//!     "journal.sync",
//!     failpoint::Action::io_error(std::io::ErrorKind::Other, Some(3)),
//! );
//! # failpoint::clear_all();
//! ```
//!
//! Failpoint names used across the workspace:
//!
//! | name | site | effect when armed |
//! |---|---|---|
//! | `journal.append` | before buffering a record | append fails, counted |
//! | `journal.write` | flushing buffered bytes to the file | write fails |
//! | `journal.cut` | byte budget for flushed bytes | simulated crash: bytes past the budget are dropped (torn tail) |
//! | `journal.sync` | `fsync` of the journal file | sync fails, counted |
//! | `journal.open` | opening/recovering a journal | open fails |
//! | `snapshot.write` | writing a checkpoint temp file | write fails |
//! | `snapshot.rename` | publishing a checkpoint via rename | rename fails |
//! | `poller.wait` | the worker event loop's `poll(2)` | wait fails (worker naps + rebuilds) |
//! | `worker.request` | per parsed request, before routing | injected worker panic |

#[cfg(feature = "failpoints")]
pub use enabled::*;

#[cfg(not(feature = "failpoints"))]
pub use disabled::*;

/// What an armed failpoint does at its site. Constructed through the
/// helper constructors; the variants are the harness's fault vocabulary.
#[derive(Debug, Clone)]
pub enum Action {
    /// Fail with an `io::Error` of the given kind. `times` bounds how many
    /// hits fail (`None` = every hit) — `Some(50)` with
    /// [`std::io::ErrorKind::Interrupted`] is an `EINTR` storm that ends.
    IoError {
        /// The error kind each armed hit produces.
        kind: std::io::ErrorKind,
        /// Remaining armed hits; `None` fails forever.
        times: Option<u32>,
    },
    /// Clamp an I/O length to at most `max` bytes (short read/write).
    ShortIo {
        /// Maximum bytes the clamped operation may transfer.
        max: usize,
        /// Remaining armed hits; `None` clamps forever.
        times: Option<u32>,
    },
    /// Panic at the site (worker self-healing tests).
    Panic {
        /// Remaining armed hits; `None` panics forever.
        times: Option<u32>,
    },
    /// Allow only `budget` more bytes through, then silently drop the rest
    /// — the observable effect of `kill -9` at that byte offset.
    CutAfter {
        /// Bytes still allowed through.
        budget: u64,
    },
}

impl Action {
    /// An [`Action::IoError`] with the given kind and hit count.
    pub fn io_error(kind: std::io::ErrorKind, times: Option<u32>) -> Action {
        Action::IoError { kind, times }
    }

    /// An [`Action::ShortIo`] clamping transfers to `max` bytes.
    pub fn short_io(max: usize, times: Option<u32>) -> Action {
        Action::ShortIo { max, times }
    }

    /// An [`Action::Panic`] firing `times` times.
    pub fn panic(times: Option<u32>) -> Action {
        Action::Panic { times }
    }

    /// An [`Action::CutAfter`] with the given byte budget.
    pub fn cut_after(budget: u64) -> Action {
        Action::CutAfter { budget }
    }
}

#[cfg(feature = "failpoints")]
mod enabled {
    use super::Action;
    use std::collections::HashMap;
    use std::io;
    use std::sync::{Mutex, OnceLock};

    fn registry() -> &'static Mutex<HashMap<String, Action>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Action>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arm `name` with `action` (replacing any previous arming).
    pub fn set(name: &str, action: Action) {
        registry()
            .lock()
            .expect("failpoint registry")
            .insert(name.to_string(), action);
    }

    /// Disarm `name` (a no-op if it was not armed).
    pub fn clear(name: &str) {
        registry().lock().expect("failpoint registry").remove(name);
    }

    /// Disarm every failpoint — call between tests sharing a process.
    pub fn clear_all() {
        registry().lock().expect("failpoint registry").clear();
    }

    /// Decrement a hit counter in place; returns whether this hit fires
    /// and removes the entry once its count is exhausted.
    fn consume(times: &mut Option<u32>) -> (bool, bool) {
        match times {
            None => (true, false),
            Some(0) => (false, true),
            Some(n) => {
                *n -= 1;
                let exhausted = *n == 0;
                (true, exhausted)
            }
        }
    }

    /// Fail point for fallible I/O sites: `Err` when `name` is armed with
    /// [`Action::IoError`] and the hit fires.
    pub fn check_io(name: &str) -> io::Result<()> {
        let mut registry = registry().lock().expect("failpoint registry");
        let Some(Action::IoError { kind, times }) = registry.get_mut(name) else {
            return Ok(());
        };
        let kind = *kind;
        let (fires, exhausted) = consume(times);
        if exhausted {
            registry.remove(name);
        }
        if fires {
            Err(io::Error::new(kind, format!("failpoint {name}")))
        } else {
            Ok(())
        }
    }

    /// Clamp an I/O length at a short-read/short-write site.
    pub fn clamp(name: &str, len: usize) -> usize {
        let mut registry = registry().lock().expect("failpoint registry");
        let Some(Action::ShortIo { max, times }) = registry.get_mut(name) else {
            return len;
        };
        let max = *max;
        let (fires, exhausted) = consume(times);
        if exhausted {
            registry.remove(name);
        }
        if fires {
            len.min(max)
        } else {
            len
        }
    }

    /// Panic at the site when `name` is armed with [`Action::Panic`].
    pub fn maybe_panic(name: &str) {
        let fires = {
            let mut registry = registry().lock().expect("failpoint registry");
            let Some(Action::Panic { times }) = registry.get_mut(name) else {
                return;
            };
            let (fires, exhausted) = consume(times);
            if exhausted {
                registry.remove(name);
            }
            fires
        };
        if fires {
            panic!("injected panic at failpoint {name}");
        }
    }

    /// How many of `want` bytes the site may transfer under an armed
    /// [`Action::CutAfter`] budget; bytes past the budget are the caller's
    /// simulated crash tail (drop them, do not error).
    pub fn write_allowance(name: &str, want: usize) -> usize {
        let mut registry = registry().lock().expect("failpoint registry");
        let Some(Action::CutAfter { budget }) = registry.get_mut(name) else {
            return want;
        };
        let allowed = (*budget).min(want as u64) as usize;
        *budget -= allowed as u64;
        allowed
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn io_error_counts_down_and_disarms() {
            set(
                "t.io",
                Action::io_error(io::ErrorKind::Interrupted, Some(2)),
            );
            assert!(check_io("t.io").is_err());
            assert!(check_io("t.io").is_err());
            assert!(check_io("t.io").is_ok(), "exhausted after 2 hits");
            clear_all();
        }

        #[test]
        fn cut_after_meters_a_byte_budget() {
            set("t.cut", Action::cut_after(10));
            assert_eq!(write_allowance("t.cut", 6), 6);
            assert_eq!(write_allowance("t.cut", 6), 4, "budget exhausted mid-write");
            assert_eq!(
                write_allowance("t.cut", 6),
                0,
                "everything after is dropped"
            );
            clear_all();
        }

        #[test]
        fn clamp_shortens_transfers() {
            set("t.short", Action::short_io(3, Some(1)));
            assert_eq!(clamp("t.short", 100), 3);
            assert_eq!(clamp("t.short", 100), 100);
            clear_all();
        }
    }
}

#[cfg(not(feature = "failpoints"))]
mod disabled {
    use super::Action;
    use std::io;

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn set(_name: &str, _action: Action) {}

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn clear(_name: &str) {}

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn clear_all() {}

    /// Always `Ok` without the `failpoints` feature.
    #[inline(always)]
    pub fn check_io(_name: &str) -> io::Result<()> {
        Ok(())
    }

    /// Identity without the `failpoints` feature.
    #[inline(always)]
    pub fn clamp(_name: &str, len: usize) -> usize {
        len
    }

    /// No-op without the `failpoints` feature.
    #[inline(always)]
    pub fn maybe_panic(_name: &str) {}

    /// Identity without the `failpoints` feature.
    #[inline(always)]
    pub fn write_allowance(_name: &str, want: usize) -> usize {
        want
    }
}
