//! Embedded curated snapshots of EasyList and EasyPrivacy.
//!
//! The paper labels requests with the full community-maintained lists
//! (tens of thousands of rules, updated continuously). Shipping a live
//! snapshot is neither possible offline nor necessary: what the pipeline
//! needs is a deterministic oracle with the same *structure* — domain
//! anchored rules for known ad/analytics services, path rules that hit
//! tracking endpoints on otherwise functional hosts, and exception rules.
//! These snapshots are hand-curated to cover the real-world services named
//! in the paper plus the generic endpoint shapes the synthetic corpus emits.

/// Curated EasyList snapshot (advertising rules).
pub const EASYLIST_CURATED: &str = include_str!("../data/easylist_curated.txt");

/// Curated EasyPrivacy snapshot (tracking rules).
pub const EASYPRIVACY_CURATED: &str = include_str!("../data/easyprivacy_curated.txt");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_list;
    use crate::rule::ListKind;

    #[test]
    fn easylist_snapshot_parses_cleanly() {
        let parsed = parse_list(EASYLIST_CURATED, ListKind::EasyList);
        assert!(parsed.stats.network_rules > 80, "{:?}", parsed.stats);
        assert!(parsed.stats.exceptions >= 5);
        assert_eq!(parsed.stats.dropped, 0, "curated list should parse fully");
    }

    #[test]
    fn easyprivacy_snapshot_parses_cleanly() {
        let parsed = parse_list(EASYPRIVACY_CURATED, ListKind::EasyPrivacy);
        assert!(parsed.stats.network_rules > 120, "{:?}", parsed.stats);
        assert!(parsed.stats.exceptions >= 4);
        assert_eq!(parsed.stats.dropped, 0, "curated list should parse fully");
    }

    #[test]
    fn snapshots_do_not_overlap_textually() {
        // Sanity: the two lists target different behaviours and should not
        // duplicate each other's rules wholesale.
        let el: std::collections::HashSet<&str> = EASYLIST_CURATED
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('!') && !l.starts_with('['))
            .collect();
        let overlap = EASYPRIVACY_CURATED
            .lines()
            .filter(|l| el.contains(l))
            .count();
        assert_eq!(overlap, 0);
    }
}
