//! Parsing and evaluation of the `$option` suffix of network filter rules.
//!
//! A rule such as `||example.com^$script,third-party,domain=~news.com`
//! only applies when every option constraint holds for the request under
//! consideration. We support the option subset that EasyList and
//! EasyPrivacy actually rely on for network rules; cosmetic-only or
//! deprecated options cause the rule to be ignored (same behaviour as
//! mainstream blockers when they meet options they do not understand).

use crate::domain::hostname_within;
use crate::request::{FilterRequest, ResourceType};
use serde::{Deserialize, Serialize};

/// Tri-state constraint on request party-ness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PartyConstraint {
    /// Rule applies regardless of party.
    #[default]
    Any,
    /// Rule applies only to third-party requests (`$third-party`).
    ThirdOnly,
    /// Rule applies only to first-party requests (`$~third-party`).
    FirstOnly,
}

/// A single entry of the `$domain=` option: either an allowed initiator
/// domain or (when prefixed with `~`) an excluded one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainEntry {
    /// The domain text, lower-cased, without the `~` prefix.
    pub domain: String,
    /// `true` when the entry was negated with `~`.
    pub negated: bool,
}

/// Parsed rule options.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RuleOptions {
    /// Resource types the rule is restricted to (`$script,image`). Empty
    /// means "any type".
    pub include_types: Vec<ResourceType>,
    /// Resource types the rule explicitly excludes (`$~script`).
    pub exclude_types: Vec<ResourceType>,
    /// First/third-party constraint.
    pub party: PartyConstraint,
    /// `$domain=` constraints on the *initiator* (page) hostname.
    pub domains: Vec<DomainEntry>,
    /// `$match-case`: pattern matching becomes case sensitive.
    pub match_case: bool,
    /// `$popup` and other options that only make sense for document-level
    /// blocking; rules carrying them are kept but never match network
    /// requests of other types.
    pub popup: bool,
    /// `$removeparam=` entries: query parameters a rewriter should strip
    /// from matching URLs instead of blocking the request. A trailing `*`
    /// marks a prefix rule (`utm_*`). Rules carrying this option are
    /// *modifiers*, not blockers — the engine files them separately (see
    /// [`crate::engine::FilterEngine::removeparam_rules`]) and they never
    /// label a request as tracking.
    pub removeparam: Vec<String>,
    /// Number of unknown / unsupported options encountered while parsing.
    /// A rule with unsupported options is dropped by the parser, mirroring
    /// how blockers skip rules they cannot honour safely.
    pub unsupported: usize,
}

impl RuleOptions {
    /// Parse the comma-separated option list that follows `$` in a rule.
    pub fn parse(options: &str) -> Self {
        let mut out = RuleOptions::default();
        for raw in options.split(',') {
            let opt = raw.trim();
            if opt.is_empty() {
                continue;
            }
            let (negated, name) = match opt.strip_prefix('~') {
                Some(rest) => (true, rest),
                None => (false, opt),
            };
            let lower = name.to_ascii_lowercase();
            match lower.as_str() {
                "script" | "image" | "stylesheet" | "xmlhttprequest" | "subdocument" | "font"
                | "media" | "websocket" | "ping" | "document" | "other" | "object"
                | "object-subrequest" | "background" => {
                    let ty = match lower.as_str() {
                        "script" => ResourceType::Script,
                        "image" | "background" => ResourceType::Image,
                        "stylesheet" => ResourceType::Stylesheet,
                        "xmlhttprequest" => ResourceType::Xhr,
                        "subdocument" => ResourceType::Subdocument,
                        "font" => ResourceType::Font,
                        "media" => ResourceType::Media,
                        "websocket" => ResourceType::Websocket,
                        "ping" => ResourceType::Ping,
                        "document" => ResourceType::Document,
                        _ => ResourceType::Other,
                    };
                    if negated {
                        out.exclude_types.push(ty);
                    } else {
                        out.include_types.push(ty);
                    }
                }
                "third-party" | "3p" => {
                    out.party = if negated {
                        PartyConstraint::FirstOnly
                    } else {
                        PartyConstraint::ThirdOnly
                    };
                }
                "first-party" | "1p" => {
                    out.party = if negated {
                        PartyConstraint::ThirdOnly
                    } else {
                        PartyConstraint::FirstOnly
                    };
                }
                "match-case" => out.match_case = true,
                "popup" => out.popup = true,
                _ if lower.starts_with("domain=") => {
                    let list = &name[name.find('=').map(|i| i + 1).unwrap_or(0)..];
                    for entry in list.split('|') {
                        let entry = entry.trim();
                        if entry.is_empty() {
                            continue;
                        }
                        let (negated, domain) = match entry.strip_prefix('~') {
                            Some(rest) => (true, rest),
                            None => (false, entry),
                        };
                        out.domains.push(DomainEntry {
                            domain: domain.to_ascii_lowercase(),
                            negated,
                        });
                    }
                }
                _ if lower.starts_with("removeparam=") => {
                    let value = &name[name.find('=').map(|i| i + 1).unwrap_or(0)..];
                    let value = value.trim();
                    if value.is_empty() || negated {
                        // Bare `$removeparam` (strip the whole query) and
                        // negated entries use regex-era syntax we do not
                        // implement; dropping the rule is safer than
                        // stripping the wrong parameters.
                        out.unsupported += 1;
                    } else {
                        out.removeparam.push(value.to_ascii_lowercase());
                    }
                }
                // Options we recognise but deliberately treat as "no-op for
                // network classification" — they alter *how* a blocker acts,
                // not *whether* the request is an ad/tracker.
                "important" | "badfilter" | "generichide" | "genericblock" => {}
                _ => out.unsupported += 1,
            }
        }
        out
    }

    /// `true` when this rule can never be evaluated faithfully (it carried
    /// options the engine does not implement).
    pub fn has_unsupported(&self) -> bool {
        self.unsupported > 0
    }

    /// Evaluate every option constraint against a request.
    pub fn matches(&self, request: &FilterRequest) -> bool {
        // Resource type constraints.
        if !self.include_types.is_empty() && !self.include_types.contains(&request.resource_type) {
            return false;
        }
        if self.exclude_types.contains(&request.resource_type) {
            return false;
        }
        // Popup-only rules never match ordinary sub-resource requests.
        if self.popup && request.resource_type != ResourceType::Document {
            return false;
        }
        // Party constraint.
        match self.party {
            PartyConstraint::Any => {}
            PartyConstraint::ThirdOnly => {
                if !request.is_third_party() {
                    return false;
                }
            }
            PartyConstraint::FirstOnly => {
                if request.is_third_party() {
                    return false;
                }
            }
        }
        // $domain= constraint applies to the initiator page hostname.
        if !self.domains.is_empty() {
            let source = &request.source_hostname;
            let mut any_positive = false;
            let mut positive_hit = false;
            for entry in &self.domains {
                let within = hostname_within(source, &entry.domain);
                if entry.negated {
                    if within {
                        return false;
                    }
                } else {
                    any_positive = true;
                    if within {
                        positive_hit = true;
                    }
                }
            }
            if any_positive && !positive_hit {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(url: &str, source: &str, ty: ResourceType) -> FilterRequest {
        FilterRequest::new(url, source, ty).unwrap()
    }

    #[test]
    fn parses_type_options() {
        let o = RuleOptions::parse("script,image");
        assert_eq!(
            o.include_types,
            vec![ResourceType::Script, ResourceType::Image]
        );
        assert!(o.exclude_types.is_empty());
    }

    #[test]
    fn parses_negated_type() {
        let o = RuleOptions::parse("~script");
        assert_eq!(o.exclude_types, vec![ResourceType::Script]);
    }

    #[test]
    fn parses_party() {
        assert_eq!(
            RuleOptions::parse("third-party").party,
            PartyConstraint::ThirdOnly
        );
        assert_eq!(
            RuleOptions::parse("~third-party").party,
            PartyConstraint::FirstOnly
        );
        assert_eq!(
            RuleOptions::parse("first-party").party,
            PartyConstraint::FirstOnly
        );
    }

    #[test]
    fn parses_domain_list() {
        let o = RuleOptions::parse("domain=example.com|~shop.example.com|news.org");
        assert_eq!(o.domains.len(), 3);
        assert!(!o.domains[0].negated);
        assert!(o.domains[1].negated);
        assert_eq!(o.domains[2].domain, "news.org");
    }

    #[test]
    fn parses_removeparam_entries() {
        let o = RuleOptions::parse("removeparam=utm_source");
        assert_eq!(o.removeparam, vec!["utm_source".to_string()]);
        assert!(!o.has_unsupported());
        let multi = RuleOptions::parse("removeparam=gclid,removeparam=FBCLID,removeparam=utm_*");
        assert_eq!(multi.removeparam, vec!["gclid", "fbclid", "utm_*"]);
    }

    #[test]
    fn bare_or_negated_removeparam_is_unsupported() {
        assert!(RuleOptions::parse("removeparam").has_unsupported());
        assert!(RuleOptions::parse("removeparam=").has_unsupported());
        assert!(RuleOptions::parse("~removeparam=utm_source").has_unsupported());
    }

    #[test]
    fn unknown_option_counted() {
        let o = RuleOptions::parse("script,redirect=noopjs");
        assert!(o.has_unsupported());
    }

    #[test]
    fn type_constraint_enforced() {
        let o = RuleOptions::parse("script");
        assert!(o.matches(&req("https://t.co/x.js", "a.com", ResourceType::Script)));
        assert!(!o.matches(&req("https://t.co/x.gif", "a.com", ResourceType::Image)));
    }

    #[test]
    fn party_constraint_enforced() {
        let o = RuleOptions::parse("third-party");
        assert!(o.matches(&req(
            "https://tracker.net/p",
            "site.com",
            ResourceType::Image
        )));
        assert!(!o.matches(&req(
            "https://cdn.site.com/p",
            "www.site.com",
            ResourceType::Image
        )));
    }

    #[test]
    fn domain_constraint_enforced() {
        let o = RuleOptions::parse("domain=news.com|~sports.news.com");
        assert!(o.matches(&req(
            "https://x.net/a.js",
            "www.news.com",
            ResourceType::Script
        )));
        assert!(!o.matches(&req(
            "https://x.net/a.js",
            "live.sports.news.com",
            ResourceType::Script
        )));
        assert!(!o.matches(&req(
            "https://x.net/a.js",
            "other.org",
            ResourceType::Script
        )));
    }

    #[test]
    fn negated_only_domain_list_allows_everything_else() {
        let o = RuleOptions::parse("domain=~blog.example.com");
        assert!(o.matches(&req(
            "https://x.net/a.js",
            "other.org",
            ResourceType::Script
        )));
        assert!(!o.matches(&req(
            "https://x.net/a.js",
            "blog.example.com",
            ResourceType::Script
        )));
    }

    #[test]
    fn popup_rules_do_not_match_subresources() {
        let o = RuleOptions::parse("popup");
        assert!(!o.matches(&req("https://x.net/a.js", "a.com", ResourceType::Script)));
        assert!(o.matches(&req("https://x.net/", "a.com", ResourceType::Document)));
    }
}
