//! Token-hash-indexed rule storage.
//!
//! Checking every request URL against tens of thousands of rules linearly is
//! far too slow for a 100K-site crawl (the paper's pipeline labels ~2.4M
//! requests). Production blockers therefore index rules by a token that any
//! matching URL must contain. We reproduce that design with hashed tokens so
//! the query path allocates nothing:
//!
//! * every rule contributes the FNV-1a hashes of its *bounded* alphanumeric
//!   runs of length ≥ 3 ([`crate::pattern::Pattern::index_token_hashes`] —
//!   the same [`crate::tokens`] tokenizer the query side uses, so the two
//!   can never drift);
//! * the rule is filed under its *rarest* token hash (fewest other rules),
//!   which keeps bucket sizes small;
//! * rules with no usable token fall back to an "always check" list;
//! * at query time the URL's pre-computed token-hash set
//!   ([`FilterRequest::token_hashes`]) selects the candidate buckets — no
//!   `String` is built, no candidate list is materialised.
//!
//! Because a rule's index token is by construction a maximal alphanumeric
//! run of every URL the rule can match, the index never causes false
//! negatives — a property the test-suite checks by comparing against a
//! linear scan (`index_agrees_with_linear_scan`) and with property tests.
//! Hash collisions only merge buckets: extra candidates are rejected by the
//! full pattern match, so they cannot cause false positives either (see
//! `forced_hash_collision_changes_nothing`).

use crate::request::FilterRequest;
use crate::rule::FilterRule;
use crate::tokens::TokenHashBuilder;
use std::collections::HashMap;

/// Bucket storage keyed by token hash, probed with the cheap
/// [`TokenHashBuilder`] instead of SipHash.
type TokenHashMap<V> = HashMap<u64, V, TokenHashBuilder>;

/// Size of the bucket-presence pre-filter in bits (512 bytes: one step
/// above the bucket count of a full EasyList+EasyPrivacy engine, cheap
/// enough to stay L1-resident).
const PRESENCE_BITS: usize = 4096;

/// A fixed-size one-bit-per-hash presence filter over the bucket keys:
/// most URL tokens hit no bucket at all, and testing one hot bit is much
/// cheaper than a full hash-map probe.
#[derive(Debug, Clone)]
struct PresenceFilter {
    words: Box<[u64]>,
}

impl Default for PresenceFilter {
    fn default() -> Self {
        PresenceFilter {
            words: vec![0u64; PRESENCE_BITS / 64].into_boxed_slice(),
        }
    }
}

impl PresenceFilter {
    #[inline]
    fn slot(hash: u64) -> (usize, u64) {
        // Same Fibonacci spread as the map hasher, using the top bits.
        let spread = hash.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let bit = (spread >> (64 - 12)) as usize; // PRESENCE_BITS = 2^12
        (bit / 64, 1u64 << (bit % 64))
    }

    #[inline]
    fn insert(&mut self, hash: u64) {
        let (word, mask) = Self::slot(hash);
        self.words[word] |= mask;
    }

    #[inline]
    fn may_contain(&self, hash: u64) -> bool {
        let (word, mask) = Self::slot(hash);
        self.words[word] & mask != 0
    }
}

/// A token-hash-indexed collection of filter rules.
#[derive(Debug, Clone, Default)]
pub struct RuleIndex {
    /// All rules, in insertion order.
    rules: Vec<FilterRule>,
    /// token hash → indices into `rules`. Each rule appears in at most one
    /// bucket (its rarest token at filing time).
    buckets: TokenHashMap<Vec<u32>>,
    /// Rules that could not be indexed and must always be checked.
    unindexed: Vec<u32>,
    /// token hash → number of rules carrying that token, maintained across
    /// [`RuleIndex::extend`] so later insertions still file under their
    /// rarest token without a full rebuild.
    freq: TokenHashMap<u32>,
    /// One-bit-per-bucket-key pre-filter consulted before `buckets`.
    presence: PresenceFilter,
}

impl RuleIndex {
    /// Build an index over a set of rules.
    pub fn build(rules: Vec<FilterRule>) -> Self {
        let mut index = RuleIndex::default();
        index.extend(rules);
        index
    }

    /// Append rules to the index incrementally: token frequencies are
    /// updated and only the new rules are filed — existing rules, buckets
    /// and the unindexed list are untouched.
    pub fn extend(&mut self, extra: Vec<FilterRule>) {
        let start = self.rules.len();
        let per_rule: Vec<Vec<u64>> = extra.iter().map(|r| r.index_token_hashes()).collect();
        for hashes in &per_rule {
            for &hash in hashes {
                *self.freq.entry(hash).or_insert(0) += 1;
            }
        }
        self.rules.extend(extra);
        for (offset, hashes) in per_rule.into_iter().enumerate() {
            let idx = u32::try_from(start + offset).expect("more than u32::MAX rules");
            // File under the rarest token (first wins on ties, so filing is
            // deterministic for a given insertion order).
            match hashes
                .iter()
                .min_by_key(|hash| self.freq.get(hash).copied().unwrap_or(u32::MAX))
            {
                Some(&best) => {
                    self.presence.insert(best);
                    self.buckets.entry(best).or_default().push(idx);
                }
                None => self.unindexed.push(idx),
            }
        }
    }

    /// Number of rules stored.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the index holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules that could not be indexed by token.
    pub fn unindexed_len(&self) -> usize {
        self.unindexed.len()
    }

    /// Iterate over all rules (insertion order).
    pub fn rules(&self) -> impl Iterator<Item = &FilterRule> {
        self.rules.iter()
    }

    /// Find the first rule (lowest insertion index) matching the request,
    /// scanning only candidate buckets. Allocation-free: the request's
    /// pre-computed token-hash set drives bucket selection directly, and the
    /// running minimum replaces the old sort-and-dedup candidate list while
    /// returning the same rule a linear scan would.
    pub fn first_match(&self, request: &FilterRequest) -> Option<&FilterRule> {
        let mut best = u32::MAX;
        let mut found = false;
        for &idx in &self.unindexed {
            if (!found || idx < best) && self.rules[idx as usize].matches(request) {
                best = idx;
                found = true;
            }
        }
        for &hash in request.token_hashes() {
            if !self.presence.may_contain(hash) {
                continue;
            }
            if let Some(bucket) = self.buckets.get(&hash) {
                for &idx in bucket {
                    if (!found || idx < best) && self.rules[idx as usize].matches(request) {
                        best = idx;
                        found = true;
                    }
                }
            }
        }
        found.then(|| &self.rules[best as usize])
    }

    /// Collect every rule matching the request (used by diagnostics and the
    /// report module, not by the hot path).
    pub fn all_matches(&self, request: &FilterRequest) -> Vec<&FilterRule> {
        let mut candidates: Vec<u32> = self.unindexed.clone();
        for &hash in request.token_hashes() {
            if !self.presence.may_contain(hash) {
                continue;
            }
            if let Some(bucket) = self.buckets.get(&hash) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .map(|idx| &self.rules[idx as usize])
            .filter(|r| r.matches(request))
            .collect()
    }

    /// Linear scan over every rule — the reference implementation the index
    /// is validated against and the baseline for the ablation benchmark.
    pub fn first_match_linear(&self, request: &FilterRequest) -> Option<&FilterRule> {
        self.rules.iter().find(|r| r.matches(request))
    }

    /// Simulate a hash collision between two bucket keys: after this call,
    /// both keys map to the union of their buckets, exactly as if every
    /// token involved hashed to one shared value. Test-only.
    #[cfg(test)]
    fn force_collision(&mut self, a: u64, b: u64) {
        let mut merged = self.buckets.remove(&a).unwrap_or_default();
        merged.extend(self.buckets.remove(&b).unwrap_or_default());
        merged.sort_unstable();
        self.buckets.insert(a, merged.clone());
        self.buckets.insert(b, merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use crate::request::ResourceType;
    use crate::rule::ListKind;
    use crate::tokens::fnv1a64;

    fn rules(texts: &[&str]) -> Vec<FilterRule> {
        texts
            .iter()
            .enumerate()
            .filter_map(|(i, t)| parse_rule(t, ListKind::EasyList, i + 1))
            .collect()
    }

    fn req(url: &str) -> FilterRequest {
        FilterRequest::new(url, "publisher.com", ResourceType::Script).unwrap()
    }

    #[test]
    fn index_finds_matching_rule() {
        let idx = RuleIndex::build(rules(&[
            "||google-analytics.com^",
            "||doubleclick.net^",
            "/pixel?",
        ]));
        assert!(idx
            .first_match(&req("https://www.google-analytics.com/analytics.js"))
            .is_some());
        assert!(idx
            .first_match(&req("https://static.doubleclick.net/instream/ad_status.js"))
            .is_some());
        assert!(idx
            .first_match(&req("https://cdn.shop.com/app.js"))
            .is_none());
    }

    #[test]
    fn index_agrees_with_linear_scan() {
        let idx = RuleIndex::build(rules(&[
            "||ads.example^",
            "||track.example^$third-party",
            "/collect?",
            "-analytics.",
            "banner300x250",
        ]));
        let urls = [
            "https://ads.example/a.js",
            "https://track.example/t.js",
            "https://api.shop.com/collect?id=1",
            "https://cdn.metrics-analytics.io/m.js",
            "https://img.shop.com/banner300x250.png",
            "https://img.shop.com/logo.png",
            // Pattern runs continuing inside a longer URL run: these used to
            // be false negatives of the string-token index.
            "https://img.shop.com/xbanner300x250y.png",
            "https://api.shop.com/precollect?id=1",
        ];
        for u in urls {
            let r = req(u);
            assert_eq!(
                idx.first_match(&r).map(|x| x.text.clone()),
                idx.first_match_linear(&r).map(|x| x.text.clone()),
                "index and linear scan disagree for {u}"
            );
        }
    }

    #[test]
    fn unbounded_pattern_tokens_cannot_cause_false_negatives() {
        // `/ads` matches `/adserver/…`, but `ads` is not a token of that
        // URL. The boundary-aware tokenizer files the rule as unindexed, so
        // the indexed scan still finds it (regression: the old string-token
        // index missed this).
        let idx = RuleIndex::build(rules(&["/ads"]));
        assert_eq!(idx.unindexed_len(), 1);
        let r = req("https://x.com/adserver/x.js");
        assert!(idx.first_match(&r).is_some());
        assert_eq!(
            idx.first_match(&r).map(|x| x.text.clone()),
            idx.first_match_linear(&r).map(|x| x.text.clone()),
        );
    }

    #[test]
    fn first_match_returns_lowest_index_rule_like_linear_scan() {
        // Both rules match; the two are filed in different buckets, and the
        // URL visits the later bucket first in hash order. The running
        // minimum must still return the first-inserted rule.
        let idx = RuleIndex::build(rules(&["/zzztoken/", "/aaatoken/"]));
        let r = req("https://x.com/zzztoken/aaatoken/a.js");
        assert_eq!(idx.first_match(&r).unwrap().text, "/zzztoken/");
        assert_eq!(idx.first_match_linear(&r).unwrap().text, "/zzztoken/");
    }

    #[test]
    fn unindexed_rules_are_still_checked() {
        // A rule whose pattern has no token of length >= 3.
        let idx = RuleIndex::build(rules(&["/t?$image"]));
        assert_eq!(idx.unindexed_len(), 1);
        let r = FilterRequest::new("https://x.com/t?id=2", "pub.com", ResourceType::Image).unwrap();
        assert!(idx.first_match(&r).is_some());
    }

    #[test]
    fn all_matches_returns_every_hit() {
        let idx = RuleIndex::build(rules(&["||ads.net^", "/banner/", "||ads.net/banner/"]));
        let r = req("https://ads.net/banner/1.png");
        assert_eq!(idx.all_matches(&r).len(), 3);
    }

    #[test]
    fn extend_matches_a_from_scratch_build() {
        let base = &["||ads.example^", "/collect?", "-analytics."];
        let extra = &[
            "||track.example^$third-party",
            "/pixel/",
            "||ads.example/special/",
        ];
        let mut extended = RuleIndex::build(rules(base));
        extended.extend(rules(extra));
        let all: Vec<&str> = base.iter().chain(extra.iter()).copied().collect();
        let scratch = RuleIndex::build(rules(&all));
        assert_eq!(extended.len(), scratch.len());
        let urls = [
            "https://ads.example/a.js",
            "https://ads.example/special/a.js",
            "https://track.example/t.js",
            "https://api.shop.com/collect?id=1",
            "https://cdn.metrics-analytics.io/m.js",
            "https://img.shop.com/pixel/1.gif",
            "https://img.shop.com/logo.png",
        ];
        for u in urls {
            let r = req(u);
            assert_eq!(
                extended.first_match(&r).map(|x| x.text.clone()),
                scratch.first_match(&r).map(|x| x.text.clone()),
                "extended and from-scratch index disagree for {u}"
            );
            assert_eq!(
                extended.first_match(&r).map(|x| x.text.clone()),
                extended.first_match_linear(&r).map(|x| x.text.clone()),
                "extended index and linear scan disagree for {u}"
            );
        }
    }

    #[test]
    fn forced_hash_collision_changes_nothing() {
        // Two rules with distinct tokens; merge their buckets as if
        // `aaatoken` and `zzztoken` hashed identically. Collisions must
        // neither hide a rule (false negative) nor let the wrong rule fire
        // (false positive).
        let mut idx = RuleIndex::build(rules(&["/aaatoken/", "/zzztoken/"]));
        idx.force_collision(fnv1a64(b"aaatoken"), fnv1a64(b"zzztoken"));

        let a = req("https://x.com/aaatoken/a.js");
        let z = req("https://x.com/zzztoken/z.js");
        let neither = req("https://x.com/other/o.js");
        assert_eq!(idx.first_match(&a).unwrap().text, "/aaatoken/");
        assert_eq!(idx.first_match(&z).unwrap().text, "/zzztoken/");
        assert!(idx.first_match(&neither).is_none());
        // All-matches never double-reports a rule that now sits in two
        // buckets reachable from one URL.
        let both = req("https://x.com/aaatoken/zzztoken/b.js");
        assert_eq!(idx.all_matches(&both).len(), 2);
    }

    #[test]
    fn empty_index() {
        let idx = RuleIndex::build(Vec::new());
        assert!(idx.is_empty());
        assert!(idx.first_match(&req("https://x.com/a.js")).is_none());
    }
}
