//! Token-indexed rule storage.
//!
//! Checking every request URL against tens of thousands of rules linearly is
//! far too slow for a 100K-site crawl (the paper's pipeline labels ~2.4M
//! requests). Production blockers therefore index rules by a token that any
//! matching URL must contain. We reproduce that design:
//!
//! * every rule contributes its alphanumeric runs of length ≥ 3
//!   ([`crate::pattern::Pattern::index_tokens`]);
//! * the rule is filed under its *rarest* token (fewest other rules), which
//!   keeps bucket sizes small;
//! * rules with no usable token fall back to an "always check" list;
//! * at query time the URL is tokenised the same way and only the buckets of
//!   tokens present in the URL are scanned.
//!
//! Because a rule's index token is by construction a substring of every URL
//! the rule can match, the index never causes false negatives — a property
//! the test-suite checks by comparing against a linear scan
//! (`engine::tests::index_agrees_with_linear_scan`) and with property tests.

use crate::request::FilterRequest;
use crate::rule::FilterRule;
use std::collections::HashMap;

/// Extract index tokens from a URL: lower-case alphanumeric runs of
/// length ≥ 3.
pub fn url_tokens(url_lower: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in url_lower.chars() {
        if c.is_ascii_alphanumeric() {
            current.push(c.to_ascii_lowercase());
        } else {
            if current.len() >= 3 {
                tokens.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
    }
    if current.len() >= 3 {
        tokens.push(current);
    }
    tokens
}

/// A token-indexed collection of filter rules.
#[derive(Debug, Clone, Default)]
pub struct RuleIndex {
    /// All rules, in insertion order.
    rules: Vec<FilterRule>,
    /// token → indices into `rules`.
    buckets: HashMap<String, Vec<usize>>,
    /// Rules that could not be indexed and must always be checked.
    unindexed: Vec<usize>,
}

impl RuleIndex {
    /// Build an index over a set of rules.
    pub fn build(rules: Vec<FilterRule>) -> Self {
        let mut index = RuleIndex {
            rules,
            buckets: HashMap::new(),
            unindexed: Vec::new(),
        };
        // First pass: token frequency across rules, so each rule can be
        // filed under its rarest token.
        let mut freq: HashMap<String, usize> = HashMap::new();
        let per_rule_tokens: Vec<Vec<String>> = index
            .rules
            .iter()
            .map(|r| {
                let tokens = r.index_tokens();
                for t in &tokens {
                    *freq.entry(t.clone()).or_insert(0) += 1;
                }
                tokens
            })
            .collect();
        for (idx, tokens) in per_rule_tokens.into_iter().enumerate() {
            if tokens.is_empty() {
                index.unindexed.push(idx);
                continue;
            }
            let best = tokens
                .into_iter()
                .min_by_key(|t| freq.get(t).copied().unwrap_or(usize::MAX))
                .expect("non-empty token list");
            index.buckets.entry(best).or_default().push(idx);
        }
        index
    }

    /// Number of rules stored.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the index holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules that could not be indexed by token.
    pub fn unindexed_len(&self) -> usize {
        self.unindexed.len()
    }

    /// Iterate over all rules (insertion order).
    pub fn rules(&self) -> impl Iterator<Item = &FilterRule> {
        self.rules.iter()
    }

    /// Find the first rule matching the request, scanning only candidate
    /// buckets. Returns the matching rule if any.
    pub fn first_match(&self, request: &FilterRequest) -> Option<&FilterRule> {
        self.candidate_indices(request)
            .into_iter()
            .map(|i| &self.rules[i])
            .find(|r| r.matches(request))
    }

    /// Collect every rule matching the request (used by diagnostics and the
    /// report module, not by the hot path).
    pub fn all_matches(&self, request: &FilterRequest) -> Vec<&FilterRule> {
        self.candidate_indices(request)
            .into_iter()
            .map(|i| &self.rules[i])
            .filter(|r| r.matches(request))
            .collect()
    }

    /// Linear scan over every rule — the reference implementation the index
    /// is validated against and the baseline for the ablation benchmark.
    pub fn first_match_linear(&self, request: &FilterRequest) -> Option<&FilterRule> {
        self.rules.iter().find(|r| r.matches(request))
    }

    /// The candidate rule indices for a request, deduplicated, in ascending
    /// order (so `first_match` is deterministic regardless of bucket layout).
    fn candidate_indices(&self, request: &FilterRequest) -> Vec<usize> {
        let mut out: Vec<usize> = self.unindexed.clone();
        for token in url_tokens(&request.url.lower) {
            if let Some(bucket) = self.buckets.get(&token) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use crate::request::ResourceType;
    use crate::rule::ListKind;

    fn rules(texts: &[&str]) -> Vec<FilterRule> {
        texts
            .iter()
            .enumerate()
            .filter_map(|(i, t)| parse_rule(t, ListKind::EasyList, i + 1))
            .collect()
    }

    fn req(url: &str) -> FilterRequest {
        FilterRequest::new(url, "publisher.com", ResourceType::Script).unwrap()
    }

    #[test]
    fn url_tokens_minimum_length() {
        let t = url_tokens("https://a.io/ab/abc/abcd?x=12345");
        assert!(t.contains(&"https".to_string()));
        assert!(t.contains(&"abc".to_string()));
        assert!(t.contains(&"abcd".to_string()));
        assert!(t.contains(&"12345".to_string()));
        assert!(!t.contains(&"ab".to_string()));
        assert!(!t.contains(&"io".to_string()));
    }

    #[test]
    fn index_finds_matching_rule() {
        let idx = RuleIndex::build(rules(&[
            "||google-analytics.com^",
            "||doubleclick.net^",
            "/pixel?",
        ]));
        assert!(idx
            .first_match(&req("https://www.google-analytics.com/analytics.js"))
            .is_some());
        assert!(idx
            .first_match(&req("https://static.doubleclick.net/instream/ad_status.js"))
            .is_some());
        assert!(idx
            .first_match(&req("https://cdn.shop.com/app.js"))
            .is_none());
    }

    #[test]
    fn index_agrees_with_linear_scan() {
        let idx = RuleIndex::build(rules(&[
            "||ads.example^",
            "||track.example^$third-party",
            "/collect?",
            "-analytics.",
            "banner300x250",
        ]));
        let urls = [
            "https://ads.example/a.js",
            "https://track.example/t.js",
            "https://api.shop.com/collect?id=1",
            "https://cdn.metrics-analytics.io/m.js",
            "https://img.shop.com/banner300x250.png",
            "https://img.shop.com/logo.png",
        ];
        for u in urls {
            let r = req(u);
            assert_eq!(
                idx.first_match(&r).map(|x| x.text.clone()),
                idx.first_match_linear(&r).map(|x| x.text.clone()),
                "index and linear scan disagree for {u}"
            );
        }
    }

    #[test]
    fn unindexed_rules_are_still_checked() {
        // A rule whose pattern has no token of length >= 3.
        let idx = RuleIndex::build(rules(&["/t?$image"]));
        assert_eq!(idx.unindexed_len(), 1);
        let r = FilterRequest::new("https://x.com/t?id=2", "pub.com", ResourceType::Image).unwrap();
        assert!(idx.first_match(&r).is_some());
    }

    #[test]
    fn all_matches_returns_every_hit() {
        let idx = RuleIndex::build(rules(&["||ads.net^", "/banner/", "||ads.net/banner/"]));
        let r = req("https://ads.net/banner/1.png");
        assert_eq!(idx.all_matches(&r).len(), 3);
    }

    #[test]
    fn empty_index() {
        let idx = RuleIndex::build(Vec::new());
        assert!(idx.is_empty());
        assert!(idx.first_match(&req("https://x.com/a.js")).is_none());
    }
}
