//! Minimal URL parsing tailored to filter-list matching.
//!
//! Filter rules in the Adblock Plus syntax match against the *full request
//! URL* but frequently need the hostname (for `||` anchors and the
//! `$domain=` option) and the scheme-relative remainder. We implement the
//! small subset of URL handling the engine needs rather than pulling in a
//! full `url` crate: the corpus only contains `http`/`https`/`data` URLs and
//! never needs percent-decoding or IDNA.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed request URL.
///
/// The original string is retained because pattern matching operates on the
/// raw URL text (lower-cased); the structured fields are used for anchored
/// matching and party determination.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParsedUrl {
    /// The full original URL, exactly as given.
    pub raw: String,
    /// Lower-cased copy of the full URL used for case-insensitive matching.
    pub lower: String,
    /// URL scheme (`http`, `https`, `data`, ...), lower-cased, without `:`.
    pub scheme: String,
    /// Hostname (no port), lower-cased. Empty for opaque URLs such as `data:`.
    pub hostname: String,
    /// Explicit port if present.
    pub port: Option<u16>,
    /// Path component beginning with `/` (or empty for opaque URLs).
    pub path: String,
    /// Query string without the leading `?`, if present.
    pub query: Option<String>,
    /// Byte offset of `hostname` within `lower` (and `raw` — lower-casing is
    /// ASCII-only and length-preserving). `0` for opaque URLs with no
    /// hostname. Pre-computed at parse time so `||` hostname anchoring never
    /// re-scans the URL for the authority.
    pub host_start: usize,
}

impl ParsedUrl {
    /// Parse a URL string.
    ///
    /// Returns `None` when the input does not look like a URL at all (no
    /// scheme separator and no leading `//`). Scheme-relative URLs
    /// (`//cdn.example.com/x.js`) are accepted and treated as `https`.
    pub fn parse(input: &str) -> Option<Self> {
        let raw = input.trim().to_string();
        if raw.is_empty() {
            return None;
        }
        let lower = raw.to_ascii_lowercase();

        // Split off the scheme, remembering where the authority begins.
        let (scheme, rest, rest_offset) = if let Some(idx) = lower.find("://") {
            (lower[..idx].to_string(), &lower[idx + 3..], idx + 3)
        } else if let Some(stripped) = lower.strip_prefix("//") {
            ("https".to_string(), stripped, 2)
        } else if let Some(idx) = lower.find(':') {
            // Opaque URL such as `data:image/gif;base64,...` or `about:blank`.
            let scheme = lower[..idx].to_string();
            if !scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-')
            {
                return None;
            }
            return Some(ParsedUrl {
                raw,
                scheme,
                hostname: String::new(),
                port: None,
                path: lower[idx + 1..].to_string(),
                query: None,
                lower,
                host_start: 0,
            });
        } else {
            return None;
        };

        // Authority ends at the first `/`, `?` or `#`.
        let authority_end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
        let authority = &rest[..authority_end];
        let after_authority = &rest[authority_end..];

        // Strip userinfo if present.
        let (hostport, host_start) = match authority.rfind('@') {
            Some(at) => (&authority[at + 1..], rest_offset + at + 1),
            None => (authority, rest_offset),
        };
        let (hostname, port) = match hostport.rfind(':') {
            Some(colon) if hostport[colon + 1..].chars().all(|c| c.is_ascii_digit()) => {
                let port = hostport[colon + 1..].parse::<u16>().ok();
                (hostport[..colon].to_string(), port)
            }
            _ => (hostport.to_string(), None),
        };

        // Separate path / query / fragment.
        let without_fragment = match after_authority.find('#') {
            Some(idx) => &after_authority[..idx],
            None => after_authority,
        };
        let (path, query) = match without_fragment.find('?') {
            Some(idx) => (
                without_fragment[..idx].to_string(),
                Some(without_fragment[idx + 1..].to_string()),
            ),
            None => (without_fragment.to_string(), None),
        };
        let path = if path.is_empty() {
            "/".to_string()
        } else {
            path
        };

        Some(ParsedUrl {
            raw,
            lower,
            scheme,
            hostname,
            port,
            path,
            query,
            host_start,
        })
    }

    /// The part of the URL that `||` host anchors are allowed to match:
    /// hostname plus everything after it.
    pub fn host_and_after(&self) -> String {
        match self.lower.find("://") {
            Some(idx) => self.lower[idx + 3..].to_string(),
            None => self.lower.clone(),
        }
    }

    /// `true` when the URL uses a secure scheme.
    pub fn is_https(&self) -> bool {
        self.scheme == "https" || self.scheme == "wss"
    }
}

impl fmt::Display for ParsedUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_https_url() {
        let u = ParsedUrl::parse("https://cdn.example.com/assets/app.js?v=3").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.hostname, "cdn.example.com");
        assert_eq!(u.path, "/assets/app.js");
        assert_eq!(u.query.as_deref(), Some("v=3"));
        assert_eq!(u.port, None);
    }

    #[test]
    fn parses_url_with_port_and_userinfo() {
        let u = ParsedUrl::parse("http://user:pw@tracker.ads.net:8080/pixel?id=1").unwrap();
        assert_eq!(u.hostname, "tracker.ads.net");
        assert_eq!(u.port, Some(8080));
        assert_eq!(u.path, "/pixel");
    }

    #[test]
    fn parses_scheme_relative_url() {
        let u = ParsedUrl::parse("//stats.wp.com/w.js").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.hostname, "stats.wp.com");
        assert_eq!(u.path, "/w.js");
    }

    #[test]
    fn parses_data_url_as_opaque() {
        let u = ParsedUrl::parse("data:image/gif;base64,R0lGODlhAQAB").unwrap();
        assert_eq!(u.scheme, "data");
        assert!(u.hostname.is_empty());
    }

    #[test]
    fn bare_path_defaults_to_slash() {
        let u = ParsedUrl::parse("https://example.org").unwrap();
        assert_eq!(u.path, "/");
    }

    #[test]
    fn lowercases_host_but_keeps_raw() {
        let u = ParsedUrl::parse("HTTPS://CDN.Example.COM/A.JS").unwrap();
        assert_eq!(u.hostname, "cdn.example.com");
        assert_eq!(u.raw, "HTTPS://CDN.Example.COM/A.JS");
    }

    #[test]
    fn rejects_non_urls() {
        assert!(ParsedUrl::parse("").is_none());
        assert!(ParsedUrl::parse("not a url at all").is_none());
    }

    #[test]
    fn fragment_is_stripped() {
        let u = ParsedUrl::parse("https://example.com/page?x=1#frag").unwrap();
        assert_eq!(u.query.as_deref(), Some("x=1"));
        assert_eq!(u.path, "/page");
    }

    #[test]
    fn host_and_after_drops_scheme() {
        let u = ParsedUrl::parse("https://ads.example.com/banner.png").unwrap();
        assert_eq!(u.host_and_after(), "ads.example.com/banner.png");
    }

    #[test]
    fn host_start_points_at_the_hostname() {
        let cases = [
            "https://cdn.example.com/assets/app.js?v=3",
            "http://user:pw@tracker.ads.net:8080/pixel?id=1",
            "//stats.wp.com/w.js",
            "HTTPS://CDN.Example.COM/A.JS",
        ];
        for case in cases {
            let u = ParsedUrl::parse(case).unwrap();
            assert_eq!(
                &u.lower[u.host_start..u.host_start + u.hostname.len()],
                u.hostname,
                "host_start wrong for {case}"
            );
        }
        let opaque = ParsedUrl::parse("data:image/gif;base64,R0lGODlhAQAB").unwrap();
        assert_eq!(opaque.host_start, 0);
    }
}
