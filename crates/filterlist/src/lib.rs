//! # filterlist — an Adblock-Plus-style filter engine
//!
//! This crate is the *test oracle* substrate of the TrackerSift
//! reproduction: it parses EasyList / EasyPrivacy style filter lists and
//! labels network requests as **tracking** (matched by a blocking rule) or
//! **functional** (unmatched, or allowed by an `@@` exception rule), exactly
//! as §3 of the paper describes.
//!
//! The implementation is self-contained — no regex crate, no `url` crate —
//! and mirrors the architecture of production blockers:
//!
//! * [`pattern`] compiles the ABP pattern language (`||`, `|`, `^`, `*`);
//! * [`options`] evaluates `$script`, `$third-party`, `$domain=`, …;
//! * [`parser`] turns list text into [`rule::FilterRule`]s;
//! * [`tokens`] is the shared zero-allocation tokenizer: both rule filing
//!   and query-time candidate selection hash the same maximal alphanumeric
//!   runs, so the two sides cannot drift;
//! * [`index`] stores rules in a token-hash index so matching stays fast at
//!   crawl scale and allocation-free per query;
//! * [`engine::FilterEngine`] combines blocking and exception rules and
//!   exposes the binary [`engine::RequestLabel`] oracle;
//! * [`lists`] embeds curated EasyList / EasyPrivacy snapshots;
//! * [`domain`] provides the eTLD+1 and third-party helpers shared by the
//!   rest of the workspace.
//!
//! ## Quick example
//!
//! ```
//! use filterlist::{FilterEngine, FilterRequest, RequestLabel, ResourceType};
//!
//! let engine = FilterEngine::easylist_easyprivacy();
//! let request = FilterRequest::new(
//!     "https://www.google-analytics.com/analytics.js",
//!     "news.example.com",
//!     ResourceType::Script,
//! ).unwrap();
//! assert_eq!(engine.label(&request), RequestLabel::Tracking);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod domain;
pub mod engine;
pub mod index;
pub mod lists;
pub mod options;
pub mod parser;
pub mod pattern;
pub mod request;
pub mod rule;
pub mod tokens;
pub mod url;

pub use domain::{is_third_party, registrable_domain};
pub use engine::{FilterEngine, MatchOutcome, RequestLabel};
pub use parser::{parse_list, parse_rule, ParseStats, ParsedList};
pub use request::{FilterRequest, ResourceType};
pub use rule::{FilterRule, ListKind};
pub use url::ParsedUrl;
