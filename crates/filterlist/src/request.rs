//! The request view that filter rules are evaluated against.

use crate::domain::is_third_party;
use crate::url::ParsedUrl;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Resource type of a network request, mirroring the DevTools
/// `resource_type` field the paper's crawler records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceType {
    /// JavaScript file.
    Script,
    /// Image / pixel.
    Image,
    /// CSS.
    Stylesheet,
    /// XHR / fetch issued from script.
    Xhr,
    /// Iframe / embedded document.
    Subdocument,
    /// Web font.
    Font,
    /// Audio / video media.
    Media,
    /// WebSocket handshake.
    Websocket,
    /// Ping / beacon (navigator.sendBeacon, <a ping>).
    Ping,
    /// Top-level document itself.
    Document,
    /// Anything else.
    Other,
}

impl ResourceType {
    /// All concrete resource types (used by tests and generators).
    pub const ALL: [ResourceType; 11] = [
        ResourceType::Script,
        ResourceType::Image,
        ResourceType::Stylesheet,
        ResourceType::Xhr,
        ResourceType::Subdocument,
        ResourceType::Font,
        ResourceType::Media,
        ResourceType::Websocket,
        ResourceType::Ping,
        ResourceType::Document,
        ResourceType::Other,
    ];

    /// The canonical lower-case name used in filter list options.
    pub fn option_name(&self) -> &'static str {
        match self {
            ResourceType::Script => "script",
            ResourceType::Image => "image",
            ResourceType::Stylesheet => "stylesheet",
            ResourceType::Xhr => "xmlhttprequest",
            ResourceType::Subdocument => "subdocument",
            ResourceType::Font => "font",
            ResourceType::Media => "media",
            ResourceType::Websocket => "websocket",
            ResourceType::Ping => "ping",
            ResourceType::Document => "document",
            ResourceType::Other => "other",
        }
    }
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.option_name())
    }
}

/// A single network request as seen by the filter engine.
///
/// This mirrors what a content blocker sees at `onBeforeRequest` time: the
/// request URL, the URL of the document that issued it, and the resource
/// type. Party-ness (first vs third) is derived from the two hostnames.
///
/// The request pre-computes everything the hot match path needs exactly
/// once, at construction: the lower-cased URL lives in [`ParsedUrl`], and
/// the URL's token-hash set (sorted, deduplicated) is stored here so
/// evaluating the request against any number of rule indices allocates
/// nothing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterRequest {
    /// Parsed request URL. Crate-private: `token_hashes` and `third_party`
    /// are derived from it at construction, so external mutation would
    /// silently desynchronise matching.
    pub(crate) url: ParsedUrl,
    /// Hostname of the page (frame) the request originates from,
    /// lower-cased. Crate-private for the same reason as `url`.
    pub(crate) source_hostname: String,
    /// Resource type reported by the browser.
    pub resource_type: ResourceType,
    /// Sorted, deduplicated token hashes of the lower-cased URL, computed
    /// once at construction ([`crate::tokens`]).
    token_hashes: Box<[u64]>,
    /// Whether the request crosses a registrable-domain boundary, computed
    /// once at construction so `$third-party` rules don't re-derive both
    /// eTLD+1s per candidate rule.
    third_party: bool,
}

impl FilterRequest {
    /// Build a request from raw strings.
    ///
    /// Returns `None` if the request URL cannot be parsed.
    pub fn new(url: &str, source_hostname: &str, resource_type: ResourceType) -> Option<Self> {
        Some(Self::from_parsed(
            ParsedUrl::parse(url)?,
            source_hostname,
            resource_type,
        ))
    }

    /// Build a request from an already-parsed URL, taking ownership (no
    /// [`ParsedUrl`] clone on the labeling hot path).
    pub fn from_parsed(url: ParsedUrl, source_hostname: &str, resource_type: ResourceType) -> Self {
        let mut hashes: Vec<u64> = crate::tokens::token_hashes(&url.lower)
            .map(|t| t.hash)
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        let source_hostname = source_hostname.to_ascii_lowercase();
        let third_party = is_third_party(&url.hostname, &source_hostname);
        FilterRequest {
            url,
            source_hostname,
            resource_type,
            token_hashes: hashes.into_boxed_slice(),
            third_party,
        }
    }

    /// The parsed request URL.
    pub fn url(&self) -> &ParsedUrl {
        &self.url
    }

    /// Take the parsed URL back out of the request (no clone).
    pub fn into_url(self) -> ParsedUrl {
        self.url
    }

    /// Lower-cased hostname of the page (frame) that issued the request.
    pub fn source_hostname(&self) -> &str {
        &self.source_hostname
    }

    /// The URL's pre-computed token-hash set (sorted, deduplicated).
    pub fn token_hashes(&self) -> &[u64] {
        &self.token_hashes
    }

    /// `true` if the request crosses a registrable-domain boundary
    /// (pre-computed at construction).
    pub fn is_third_party(&self) -> bool {
        self.third_party
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_party_detection() {
        let r = FilterRequest::new(
            "https://www.google-analytics.com/analytics.js",
            "news.example.com",
            ResourceType::Script,
        )
        .unwrap();
        assert!(r.is_third_party());

        let r = FilterRequest::new(
            "https://static.example.com/app.js",
            "www.example.com",
            ResourceType::Script,
        )
        .unwrap();
        assert!(!r.is_third_party());
    }

    #[test]
    fn invalid_url_is_rejected() {
        assert!(FilterRequest::new("notaurl", "example.com", ResourceType::Image).is_none());
    }

    #[test]
    fn token_hashes_are_sorted_deduplicated_and_case_insensitive() {
        use crate::tokens::fnv1a64;
        // `com` appears twice; the set stores it once.
        let r = FilterRequest::new(
            "HTTPS://CDN.Example.COM/com/Analytics.js",
            "example.com",
            ResourceType::Script,
        )
        .unwrap();
        let hashes = r.token_hashes();
        assert!(hashes.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        assert!(hashes.contains(&fnv1a64(b"cdn")));
        assert!(hashes.contains(&fnv1a64(b"com")));
        assert!(hashes.contains(&fnv1a64(b"analytics")));
        assert_eq!(hashes.iter().filter(|&&h| h == fnv1a64(b"com")).count(), 1);
    }

    #[test]
    fn from_parsed_matches_new() {
        let parsed = ParsedUrl::parse("https://t.example/p.js").unwrap();
        let a = FilterRequest::from_parsed(parsed, "Site.COM", ResourceType::Script);
        let b =
            FilterRequest::new("https://t.example/p.js", "site.com", ResourceType::Script).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn resource_type_option_names_are_unique() {
        let mut names: Vec<&str> = ResourceType::ALL.iter().map(|t| t.option_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ResourceType::ALL.len());
    }
}
