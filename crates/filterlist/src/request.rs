//! The request view that filter rules are evaluated against.

use crate::domain::is_third_party;
use crate::url::ParsedUrl;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Resource type of a network request, mirroring the DevTools
/// `resource_type` field the paper's crawler records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceType {
    /// JavaScript file.
    Script,
    /// Image / pixel.
    Image,
    /// CSS.
    Stylesheet,
    /// XHR / fetch issued from script.
    Xhr,
    /// Iframe / embedded document.
    Subdocument,
    /// Web font.
    Font,
    /// Audio / video media.
    Media,
    /// WebSocket handshake.
    Websocket,
    /// Ping / beacon (navigator.sendBeacon, <a ping>).
    Ping,
    /// Top-level document itself.
    Document,
    /// Anything else.
    Other,
}

impl ResourceType {
    /// All concrete resource types (used by tests and generators).
    pub const ALL: [ResourceType; 11] = [
        ResourceType::Script,
        ResourceType::Image,
        ResourceType::Stylesheet,
        ResourceType::Xhr,
        ResourceType::Subdocument,
        ResourceType::Font,
        ResourceType::Media,
        ResourceType::Websocket,
        ResourceType::Ping,
        ResourceType::Document,
        ResourceType::Other,
    ];

    /// The canonical lower-case name used in filter list options.
    pub fn option_name(&self) -> &'static str {
        match self {
            ResourceType::Script => "script",
            ResourceType::Image => "image",
            ResourceType::Stylesheet => "stylesheet",
            ResourceType::Xhr => "xmlhttprequest",
            ResourceType::Subdocument => "subdocument",
            ResourceType::Font => "font",
            ResourceType::Media => "media",
            ResourceType::Websocket => "websocket",
            ResourceType::Ping => "ping",
            ResourceType::Document => "document",
            ResourceType::Other => "other",
        }
    }
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.option_name())
    }
}

/// A single network request as seen by the filter engine.
///
/// This mirrors what a content blocker sees at `onBeforeRequest` time: the
/// request URL, the URL of the document that issued it, and the resource
/// type. Party-ness (first vs third) is derived from the two hostnames.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterRequest {
    /// Parsed request URL.
    pub url: ParsedUrl,
    /// Hostname of the page (frame) the request originates from.
    pub source_hostname: String,
    /// Resource type reported by the browser.
    pub resource_type: ResourceType,
}

impl FilterRequest {
    /// Build a request from raw strings.
    ///
    /// Returns `None` if the request URL cannot be parsed.
    pub fn new(url: &str, source_hostname: &str, resource_type: ResourceType) -> Option<Self> {
        Some(FilterRequest {
            url: ParsedUrl::parse(url)?,
            source_hostname: source_hostname.to_ascii_lowercase(),
            resource_type,
        })
    }

    /// `true` if the request crosses a registrable-domain boundary.
    pub fn is_third_party(&self) -> bool {
        is_third_party(&self.url.hostname, &self.source_hostname)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_party_detection() {
        let r = FilterRequest::new(
            "https://www.google-analytics.com/analytics.js",
            "news.example.com",
            ResourceType::Script,
        )
        .unwrap();
        assert!(r.is_third_party());

        let r = FilterRequest::new(
            "https://static.example.com/app.js",
            "www.example.com",
            ResourceType::Script,
        )
        .unwrap();
        assert!(!r.is_third_party());
    }

    #[test]
    fn invalid_url_is_rejected() {
        assert!(FilterRequest::new("notaurl", "example.com", ResourceType::Image).is_none());
    }

    #[test]
    fn resource_type_option_names_are_unique() {
        let mut names: Vec<&str> = ResourceType::ALL.iter().map(|t| t.option_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ResourceType::ALL.len());
    }
}
