//! Compilation and matching of the URL pattern part of a network filter
//! rule (everything before the `$` options separator).
//!
//! The Adblock Plus pattern language is small but subtle:
//!
//! * `*` matches any run of characters (including none);
//! * `^` matches a *separator*: any character that is not alphanumeric and
//!   not one of `_ - . %`, or the end of the URL;
//! * a leading `||` anchors the pattern at the beginning of a hostname
//!   label boundary (so `||example.com` matches `https://cdn.example.com/`
//!   and `https://example.com/` but not `https://notexample.com/`);
//! * a leading `|` anchors at the very start of the URL, a trailing `|`
//!   anchors at the very end;
//! * matching is case-insensitive unless the rule carries `$match-case`.
//!
//! We avoid a general regex engine: patterns are compiled into a sequence of
//! wildcard-separated *segments*, each a sequence of literal bytes and
//! separator placeholders, matched with a simple greedy scan. This is the
//! same strategy production blockers use and is linear in practice because
//! segments are short.

use serde::{Deserialize, Serialize};

/// How the start of a pattern is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anchor {
    /// Unanchored: the pattern may match anywhere in the URL.
    None,
    /// `|pattern`: must match at the first byte of the URL.
    UrlStart,
    /// `||pattern`: must match at the start of the hostname or at a label
    /// boundary inside it.
    Hostname,
}

/// One element of a compiled pattern segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Atom {
    /// A literal (already lower-cased unless `match_case`) byte.
    Literal(u8),
    /// The `^` separator class.
    Separator,
}

/// A run of atoms between wildcards.
///
/// Matching is organised around the segment's longest all-literal *prefix*,
/// kept as contiguous bytes: positional matches memcmp it, and unanchored
/// scans skip through the text on the prefix's statistically rarest byte
/// instead of probing every offset. Most real filter segments are entirely
/// literal, so the atom-by-atom loop only runs for `^` separators.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
struct Segment {
    atoms: Vec<Atom>,
    /// Longest all-literal prefix of `atoms`, contiguous for memcmp.
    lit_prefix: Box<[u8]>,
    /// Index into `lit_prefix` of its rarest byte (by URL byte statistics);
    /// unanchored scans hunt for that byte first. 0 when the prefix is
    /// empty.
    skip: usize,
}

/// Find the first occurrence of `needle` at or after `from`, eight bytes at
/// a time (SWAR — std has no public `memchr` and the per-byte scan was the
/// hottest loop of the candidate-match path).
fn find_byte(haystack: &[u8], needle: u8, from: usize) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let broadcast = LO.wrapping_mul(u64::from(needle));
    let n = haystack.len();
    let mut i = from;
    while i + 8 <= n {
        let word = u64::from_ne_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let x = word ^ broadcast;
        let found = x.wrapping_sub(LO) & !x & HI;
        if found != 0 {
            let off = if cfg!(target_endian = "little") {
                (found.trailing_zeros() / 8) as usize
            } else {
                (found.leading_zeros() / 8) as usize
            };
            let at = i + off;
            if haystack[at] == needle {
                return Some(at);
            }
            // Borrow artifact: the `(x - LO) & !x & HI` trick can flag a
            // byte more significant than the true match, and on big-endian
            // targets "more significant" is *earlier* in memory, so the
            // first flag may be spurious. The true match then lies later
            // in this same word — find it byte-wise.
            if let Some(rest) = haystack[at + 1..i + 8].iter().position(|&b| b == needle) {
                return Some(at + 1 + rest);
            }
            debug_assert!(false, "SWAR flag without a matching byte in the word");
        }
        i += 8;
    }
    while i < n {
        if haystack[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// How rare a byte is in URL text — higher is rarer. Coarse buckets are
/// enough: the point is to skip-scan on `q` or `3` rather than `/` or `e`.
fn url_byte_rarity(b: u8) -> u8 {
    match b {
        b'/' | b'.' | b':' | b'e' | b't' | b'a' | b'o' | b'i' | b'n' | b's' | b'r' | b'c' => 0,
        b'h' | b'p' | b'm' | b'd' | b'l' | b'u' | b'w' | b'g' | b'-' | b'=' | b'?' | b'&' => 1,
        b'0'..=b'9' => 3,
        b'a'..=b'z' => 2,
        _ => 4,
    }
}

impl Segment {
    fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Populate the literal-prefix fast path (call once after building).
    fn finalise(&mut self) {
        let prefix: Vec<u8> = self
            .atoms
            .iter()
            .map_while(|a| match a {
                Atom::Literal(b) => Some(*b),
                Atom::Separator => None,
            })
            .collect();
        self.skip = prefix
            .iter()
            .enumerate()
            .max_by_key(|(_, &b)| url_byte_rarity(b))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.lit_prefix = prefix.into_boxed_slice();
    }

    /// Match the atoms *after* the literal prefix, starting at `i`.
    ///
    /// A trailing `^` may also match the end of the string ("virtual
    /// separator").
    fn match_tail(&self, text: &[u8], mut i: usize) -> Option<usize> {
        let tail = &self.atoms[self.lit_prefix.len()..];
        for (idx, atom) in tail.iter().enumerate() {
            match atom {
                Atom::Literal(b) => {
                    if i >= text.len() || text[i] != *b {
                        return None;
                    }
                    i += 1;
                }
                Atom::Separator => {
                    if i >= text.len() {
                        // `^` at end of input is only acceptable as the
                        // final atom ("virtual separator").
                        if idx == tail.len() - 1 {
                            return Some(i);
                        }
                        return None;
                    }
                    if is_separator_byte(text[i]) {
                        i += 1;
                    } else {
                        return None;
                    }
                }
            }
        }
        Some(i)
    }

    /// Try to match this segment at byte offset `pos` of `text`.
    fn match_at(&self, text: &[u8], pos: usize) -> Option<usize> {
        let prefix = &self.lit_prefix;
        let end = pos.checked_add(prefix.len())?;
        if end > text.len() || text[pos..end] != prefix[..] {
            return None;
        }
        if prefix.len() == self.atoms.len() {
            return Some(end);
        }
        self.match_tail(text, end)
    }

    /// Find the first position `>= from` where this segment matches.
    fn find_from(&self, text: &[u8], from: usize) -> Option<(usize, usize)> {
        if self.atoms.is_empty() {
            return Some((from, from));
        }
        if self.lit_prefix.is_empty() {
            // Leading separator atom: positional scan (rare pattern shape).
            let mut start = from;
            while start <= text.len() {
                if let Some(end) = self.match_at(text, start) {
                    return Some((start, end));
                }
                start += 1;
            }
            return None;
        }
        // Skip-scan on the prefix's rarest byte, then verify around it.
        let prefix = &self.lit_prefix;
        let skip_byte = prefix[self.skip];
        let mut at = from + self.skip;
        while let Some(found) = find_byte(text, skip_byte, at) {
            let start = found - self.skip;
            if let Some(end) = self.match_at(text, start) {
                return Some((start, end));
            }
            at = found + 1;
        }
        None
    }
}

/// Separator class for `^`: anything that is not a letter, digit, or one of
/// `_`, `-`, `.`, `%`.
pub fn is_separator_byte(b: u8) -> bool {
    !(b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b'%')
}

/// A compiled URL pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// Original pattern text, trimmed but with anchors (`||`, `|`) still
    /// present. [`Pattern::index_token_hashes`] depends on this: it strips
    /// the anchors itself and uses their presence to decide whether the
    /// pattern's edge runs are boundary-safe index tokens.
    source: String,
    anchor: Anchor,
    end_anchored: bool,
    case_sensitive: bool,
    /// Wildcard-separated segments. An empty list means "match everything".
    segments: Vec<Segment>,
    /// For `||` rules: the leading hostname portion of the pattern (up to the
    /// first `/ ^ * ?`), used to pre-filter by request hostname.
    host_prefix: String,
}

impl Pattern {
    /// Compile a pattern string (anchors included) into a matcher.
    pub fn compile(raw: &str, case_sensitive: bool) -> Pattern {
        let mut text = raw.trim().to_string();
        let mut anchor = Anchor::None;
        let mut end_anchored = false;

        if let Some(stripped) = text.strip_prefix("||") {
            anchor = Anchor::Hostname;
            text = stripped.to_string();
        } else if let Some(stripped) = text.strip_prefix('|') {
            anchor = Anchor::UrlStart;
            text = stripped.to_string();
        }
        if let Some(stripped) = text.strip_suffix('|') {
            end_anchored = true;
            text = stripped.to_string();
        }

        // Leading and trailing `*` are redundant (unanchored match already
        // allows arbitrary prefix/suffix); trim them so the segment list is
        // canonical.
        if anchor == Anchor::None {
            while text.starts_with('*') {
                text.remove(0);
            }
        }
        if !end_anchored {
            while text.ends_with('*') {
                text.pop();
            }
        }

        let normalised = if case_sensitive {
            text.clone()
        } else {
            text.to_ascii_lowercase()
        };

        let mut segments = Vec::new();
        let mut current = Segment::default();
        for &b in normalised.as_bytes() {
            match b {
                b'*' => {
                    segments.push(std::mem::take(&mut current));
                    // Collapse consecutive wildcards.
                    if segments.last().map(|s: &Segment| s.atoms.is_empty()) == Some(true)
                        && segments.len() >= 2
                        && segments[segments.len() - 2].atoms.is_empty()
                    {
                        segments.pop();
                    }
                }
                b'^' => current.atoms.push(Atom::Separator),
                _ => current.atoms.push(Atom::Literal(b)),
            }
        }
        segments.push(current);
        for segment in &mut segments {
            segment.finalise();
        }

        // Host prefix for `||` anchored rules: the pattern text up to the
        // first path/separator/wildcard character.
        let host_prefix = if anchor == Anchor::Hostname {
            normalised
                .split(['/', '^', '*', '?'])
                .next()
                .unwrap_or("")
                .to_string()
        } else {
            String::new()
        };

        Pattern {
            source: raw.trim().to_string(),
            anchor,
            end_anchored,
            case_sensitive,
            segments,
            host_prefix,
        }
    }

    /// The raw pattern text the rule was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The start anchor kind.
    pub fn anchor(&self) -> Anchor {
        self.anchor
    }

    /// The hostname prefix a `||` rule requires (empty otherwise).
    pub fn host_prefix(&self) -> &str {
        &self.host_prefix
    }

    /// `true` when the pattern contains no constraining text at all and
    /// would match every URL (e.g. the rule was just `*`).
    pub fn is_match_all(&self) -> bool {
        self.anchor == Anchor::None
            && !self.end_anchored
            && self.segments.iter().all(|s| s.atoms.is_empty())
    }

    /// Extract "quality token" hashes for the rule index, using the same
    /// zero-allocation tokenizer as query-time URL tokenisation
    /// ([`crate::tokens`]), so the two sides can never drift.
    ///
    /// A pattern run only qualifies as an index token when it is guaranteed
    /// to appear as a *maximal* alphanumeric run in every matching URL —
    /// i.e. it is bounded on both sides. A side is bounded when the adjacent
    /// pattern character is a non-wildcard separator (any non-alphanumeric
    /// literal, or `^`), or when the pattern edge itself is anchored (`|`,
    /// `||`, or a trailing `|`). Unbounded runs are skipped: the rule `/ads`
    /// matches `/adserver/x.png`, whose URL token is `adserver`, not `ads`,
    /// so filing the rule under `ads` would be a false negative. (The old
    /// string tokenizer had exactly that bug.) Rules with no bounded run
    /// fall back to the index's always-checked list.
    pub fn index_token_hashes(&self) -> Vec<u64> {
        // Tokens are hashed lower-cased: URL tokenisation lower-cases too,
        // so case-sensitive rules still index soundly.
        let text = self
            .source
            .strip_prefix("||")
            .or_else(|| self.source.strip_prefix('|'))
            .unwrap_or(&self.source);
        let text = text.strip_suffix('|').unwrap_or(text);
        let bytes = text.as_bytes();
        let mut out = Vec::new();
        for token in crate::tokens::TokenHashes::new(bytes) {
            let left_bounded = if token.start == 0 {
                self.anchor != Anchor::None
            } else {
                bytes[token.start - 1] != b'*'
            };
            let right_bounded = if token.end == bytes.len() {
                self.end_anchored
            } else {
                bytes[token.end] != b'*'
            };
            if left_bounded && right_bounded {
                out.push(token.hash);
            }
        }
        out
    }

    /// Match the pattern against a parsed URL.
    ///
    /// Matching reads the URL's pre-computed lower-cased text (or the raw
    /// spelling for `$match-case` rules) and, for `||` rules, its hostname
    /// and stored hostname offset — no intermediate strings are built.
    pub fn matches(&self, url: &crate::url::ParsedUrl) -> bool {
        let text: &[u8] = if self.case_sensitive {
            url.raw.as_bytes()
        } else {
            url.lower.as_bytes()
        };

        match self.anchor {
            Anchor::None => self.match_unanchored(text),
            Anchor::UrlStart => self.match_from(text, 0),
            Anchor::Hostname => self.match_hostname_anchored(text, url),
        }
    }

    fn match_unanchored(&self, text: &[u8]) -> bool {
        // Greedy left-to-right: find the first segment anywhere, then each
        // subsequent segment after the previous match. End anchoring
        // requires the last segment to end exactly at the end of the text,
        // so for that case we anchor the last segment at the tail.
        self.match_segments_from_any(text, 0)
    }

    fn match_from(&self, text: &[u8], start: usize) -> bool {
        // First segment must match exactly at `start`.
        let mut pos = start;
        let mut iter = self.segments.iter().peekable();
        if let Some(first) = iter.next() {
            match first.match_at(text, pos) {
                Some(end) => pos = end,
                None => return false,
            }
        }
        self.match_remaining(text, pos, iter)
    }

    fn match_segments_from_any(&self, text: &[u8], start: usize) -> bool {
        let mut iter = self.segments.iter().peekable();
        let mut pos = start;
        if let Some(first) = iter.next() {
            // The first segment may begin anywhere at or after `start`, but
            // if it is also the last segment and the pattern is end
            // anchored we must align it with the end of the text.
            if self.segments.len() == 1 && self.end_anchored {
                let seg_len_min = first.len();
                if text.len() < start + seg_len_min.saturating_sub(0) {
                    // May still match if trailing separators absorb end; fall
                    // through to scan.
                }
                // Scan for a match that ends exactly at text.len().
                let mut from = start;
                while let Some((_s, e)) = first.find_from(text, from) {
                    if e == text.len() {
                        return true;
                    }
                    from = _s + 1;
                }
                return false;
            }
            match first.find_from(text, pos) {
                Some((_s, e)) => pos = e,
                None => return false,
            }
        }
        self.match_remaining(text, pos, iter)
    }

    fn match_remaining<'a, I>(
        &self,
        text: &[u8],
        mut pos: usize,
        mut iter: std::iter::Peekable<I>,
    ) -> bool
    where
        I: Iterator<Item = &'a Segment>,
    {
        while let Some(seg) = iter.next() {
            let is_last = iter.peek().is_none();
            if is_last && self.end_anchored {
                // Must end exactly at text end.
                let mut from = pos;
                loop {
                    match seg.find_from(text, from) {
                        Some((s, e)) => {
                            if e == text.len() {
                                return true;
                            }
                            from = s + 1;
                        }
                        None => return false,
                    }
                }
            }
            match seg.find_from(text, pos) {
                Some((_s, e)) => pos = e,
                None => return false,
            }
        }
        if self.end_anchored {
            pos == text.len()
        } else {
            true
        }
    }

    fn match_hostname_anchored(&self, text: &[u8], url: &crate::url::ParsedUrl) -> bool {
        if self.host_prefix.is_empty() {
            // Degenerate `||` rule; treat as unanchored.
            return self.match_unanchored(text);
        }
        // The request hostname must equal the host prefix or end with
        // `.host_prefix` — i.e. the anchor sits at a label boundary — OR the
        // host prefix may itself be a hostname prefix ending where a deeper
        // label continues (e.g. `||ads.` style rules). We cover both by
        // scanning label boundaries in place; the hostname's byte offset in
        // the URL text was computed when the URL was parsed.
        let hostname = &url.hostname;
        let hbytes = hostname.as_bytes();
        let hp = self.host_prefix.as_str();
        let mut idx = 0;
        while let Some(found) = hostname[idx..].find(hp) {
            let at = idx + found;
            if at == 0 || hbytes[at - 1] == b'.' {
                let start = url.host_start + at;
                if start <= text.len() && self.match_from(text, start) {
                    return true;
                }
            }
            idx = at + 1;
            if idx >= hostname.len() {
                break;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, url: &str) -> bool {
        let p = Pattern::compile(pattern, false);
        let parsed = crate::url::ParsedUrl::parse(url).expect("test URL should parse");
        p.matches(&parsed)
    }

    #[test]
    fn plain_substring() {
        assert!(m("/ads/", "https://example.com/ads/banner.png"));
        assert!(!m("/ads/", "https://example.com/assets/banner.png"));
    }

    #[test]
    fn wildcard() {
        assert!(m("/banner*.gif", "https://x.com/banner_300x250.gif"));
        assert!(!m("/banner*.gif", "https://x.com/banner_300x250.png"));
    }

    #[test]
    fn separator_matches_punctuation_and_end() {
        assert!(m("||example.com^", "https://example.com/"));
        assert!(m("||example.com^", "https://example.com:8000/"));
        assert!(m("||example.com^", "https://example.com"));
        assert!(!m("||example.com^", "https://example.company.org/"));
    }

    #[test]
    fn hostname_anchor_respects_label_boundary() {
        assert!(m("||ads.com^", "https://ads.com/x"));
        assert!(m("||ads.com^", "https://sub.ads.com/x"));
        assert!(!m("||ads.com^", "https://badads.com/x"));
        assert!(!m("||ads.com^", "https://example.com/ads.com/x"));
    }

    #[test]
    fn url_start_anchor() {
        assert!(m("|https://cdn.", "https://cdn.example.com/a.js"));
        assert!(!m("|https://cdn.", "http://www.example.com/https://cdn."));
    }

    #[test]
    fn end_anchor() {
        assert!(m(".js|", "https://example.com/app.js"));
        assert!(!m(".js|", "https://example.com/app.js?x=1"));
    }

    #[test]
    fn both_anchors_exact_match() {
        assert!(m("|https://example.com/a.js|", "https://example.com/a.js"));
        assert!(!m(
            "|https://example.com/a.js|",
            "https://example.com/a.js.map"
        ));
    }

    #[test]
    fn case_insensitive_by_default() {
        assert!(m("/Banner/", "https://x.com/banner/1.png"));
    }

    #[test]
    fn case_sensitive_when_requested() {
        let p = Pattern::compile("/Banner/", true);
        let lower = crate::url::ParsedUrl::parse("https://x.com/banner/1.png").unwrap();
        assert!(!p.matches(&lower));
        let upper = crate::url::ParsedUrl::parse("https://x.com/Banner/1.png").unwrap();
        assert!(p.matches(&upper));
    }

    #[test]
    fn match_all_detection() {
        assert!(Pattern::compile("*", false).is_match_all());
        assert!(!Pattern::compile("||a.com^", false).is_match_all());
    }

    #[test]
    fn index_token_hashes_extract_bounded_runs() {
        use crate::tokens::fnv1a64;
        let p = Pattern::compile("||google-analytics.com/analytics.js", false);
        let hashes = p.index_token_hashes();
        assert!(hashes.contains(&fnv1a64(b"google")));
        assert!(hashes.contains(&fnv1a64(b"analytics")));
        assert!(hashes.contains(&fnv1a64(b"com")));
        // The trailing `js` run is below the length floor; the trailing
        // `analytics` run before `.js` is bounded by dots on both sides.
        assert!(!hashes.contains(&fnv1a64(b"js")));
    }

    #[test]
    fn index_token_hashes_respect_boundaries() {
        use crate::tokens::fnv1a64;
        // Unanchored leading/trailing runs can extend inside a matching URL
        // (`/ads` matches `/adserver`), so they must not become index tokens.
        assert!(Pattern::compile("/ads", false)
            .index_token_hashes()
            .is_empty());
        assert!(Pattern::compile("ads/", false)
            .index_token_hashes()
            .is_empty());
        assert!(Pattern::compile("banner300x250", false)
            .index_token_hashes()
            .is_empty());
        // Bounded on both sides by separators → usable.
        assert_eq!(
            Pattern::compile("/ads/", false).index_token_hashes(),
            vec![fnv1a64(b"ads")]
        );
        assert_eq!(
            Pattern::compile("-analytics.", false).index_token_hashes(),
            vec![fnv1a64(b"analytics")]
        );
        // Anchors bound the outer edges.
        assert!(Pattern::compile("|https://cdn.", false)
            .index_token_hashes()
            .contains(&fnv1a64(b"https")));
        assert!(Pattern::compile("||ads.example^", false)
            .index_token_hashes()
            .contains(&fnv1a64(b"ads")));
        assert_eq!(
            Pattern::compile(".js|", false).index_token_hashes(),
            Vec::<u64>::new()
        );
        assert!(Pattern::compile("/app.js|", false)
            .index_token_hashes()
            .contains(&fnv1a64(b"app")));
        // Wildcards leave the adjacent run unbounded on that side.
        assert_eq!(
            Pattern::compile("/banner*.gif", false).index_token_hashes(),
            Vec::<u64>::new()
        );
        assert_eq!(
            Pattern::compile("/banner/*/track.gif", false).index_token_hashes(),
            vec![fnv1a64(b"banner"), fnv1a64(b"track")]
        );
    }

    #[test]
    fn separator_inside_pattern() {
        assert!(m("||example.com^ads^", "https://example.com/ads/"));
        assert!(!m("||example.com^ads^", "https://example.com/adsx"));
    }

    #[test]
    fn wildcard_spanning_segments() {
        assert!(m("||cdn.*.com^", "https://cdn.shop.com/x.js"));
        assert!(!m("||cdn.*.com^", "https://img.shop.com/x.js"));
    }

    #[test]
    fn query_parameter_pattern() {
        assert!(m("utm_source=", "https://example.com/page?utm_source=mail"));
        assert!(m("^utm_medium=", "https://example.com/page?utm_medium=cpc"));
    }
}
