//! Compilation and matching of the URL pattern part of a network filter
//! rule (everything before the `$` options separator).
//!
//! The Adblock Plus pattern language is small but subtle:
//!
//! * `*` matches any run of characters (including none);
//! * `^` matches a *separator*: any character that is not alphanumeric and
//!   not one of `_ - . %`, or the end of the URL;
//! * a leading `||` anchors the pattern at the beginning of a hostname
//!   label boundary (so `||example.com` matches `https://cdn.example.com/`
//!   and `https://example.com/` but not `https://notexample.com/`);
//! * a leading `|` anchors at the very start of the URL, a trailing `|`
//!   anchors at the very end;
//! * matching is case-insensitive unless the rule carries `$match-case`.
//!
//! We avoid a general regex engine: patterns are compiled into a sequence of
//! wildcard-separated *segments*, each a sequence of literal bytes and
//! separator placeholders, matched with a simple greedy scan. This is the
//! same strategy production blockers use and is linear in practice because
//! segments are short.

use serde::{Deserialize, Serialize};

/// How the start of a pattern is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anchor {
    /// Unanchored: the pattern may match anywhere in the URL.
    None,
    /// `|pattern`: must match at the first byte of the URL.
    UrlStart,
    /// `||pattern`: must match at the start of the hostname or at a label
    /// boundary inside it.
    Hostname,
}

/// One element of a compiled pattern segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Atom {
    /// A literal (already lower-cased unless `match_case`) byte.
    Literal(u8),
    /// The `^` separator class.
    Separator,
}

/// A run of atoms between wildcards.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
struct Segment {
    atoms: Vec<Atom>,
}

impl Segment {
    fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Try to match this segment at byte offset `pos` of `text`.
    ///
    /// Returns the offset just past the match. A trailing `^` may also
    /// match the end of the string ("virtual separator").
    fn match_at(&self, text: &[u8], pos: usize) -> Option<usize> {
        let mut i = pos;
        for (idx, atom) in self.atoms.iter().enumerate() {
            match atom {
                Atom::Literal(b) => {
                    if i >= text.len() || text[i] != *b {
                        return None;
                    }
                    i += 1;
                }
                Atom::Separator => {
                    if i >= text.len() {
                        // `^` at end of input only acceptable if it is the
                        // final atom of the final segment; the caller checks
                        // "final segment" via end anchoring, here we accept
                        // end-of-string for any trailing separator run.
                        if idx == self.atoms.len() - 1 {
                            return Some(i);
                        }
                        return None;
                    }
                    if is_separator_byte(text[i]) {
                        i += 1;
                    } else {
                        return None;
                    }
                }
            }
        }
        Some(i)
    }

    /// Find the first position `>= from` where this segment matches.
    fn find_from(&self, text: &[u8], from: usize) -> Option<(usize, usize)> {
        if self.atoms.is_empty() {
            return Some((from, from));
        }
        let mut start = from;
        while start <= text.len() {
            if let Some(end) = self.match_at(text, start) {
                return Some((start, end));
            }
            start += 1;
        }
        None
    }
}

/// Separator class for `^`: anything that is not a letter, digit, or one of
/// `_`, `-`, `.`, `%`.
pub fn is_separator_byte(b: u8) -> bool {
    !(b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b'%')
}

/// A compiled URL pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// Original pattern text (after stripping anchors).
    source: String,
    anchor: Anchor,
    end_anchored: bool,
    case_sensitive: bool,
    /// Wildcard-separated segments. An empty list means "match everything".
    segments: Vec<Segment>,
    /// For `||` rules: the leading hostname portion of the pattern (up to the
    /// first `/ ^ * ?`), used to pre-filter by request hostname.
    host_prefix: String,
}

impl Pattern {
    /// Compile a pattern string (anchors included) into a matcher.
    pub fn compile(raw: &str, case_sensitive: bool) -> Pattern {
        let mut text = raw.trim().to_string();
        let mut anchor = Anchor::None;
        let mut end_anchored = false;

        if let Some(stripped) = text.strip_prefix("||") {
            anchor = Anchor::Hostname;
            text = stripped.to_string();
        } else if let Some(stripped) = text.strip_prefix('|') {
            anchor = Anchor::UrlStart;
            text = stripped.to_string();
        }
        if let Some(stripped) = text.strip_suffix('|') {
            end_anchored = true;
            text = stripped.to_string();
        }

        // Leading and trailing `*` are redundant (unanchored match already
        // allows arbitrary prefix/suffix); trim them so the segment list is
        // canonical.
        if anchor == Anchor::None {
            while text.starts_with('*') {
                text.remove(0);
            }
        }
        if !end_anchored {
            while text.ends_with('*') {
                text.pop();
            }
        }

        let normalised = if case_sensitive {
            text.clone()
        } else {
            text.to_ascii_lowercase()
        };

        let mut segments = Vec::new();
        let mut current = Segment::default();
        for &b in normalised.as_bytes() {
            match b {
                b'*' => {
                    segments.push(std::mem::take(&mut current));
                    // Collapse consecutive wildcards.
                    if segments.last().map(|s: &Segment| s.atoms.is_empty()) == Some(true)
                        && segments.len() >= 2
                        && segments[segments.len() - 2].atoms.is_empty()
                    {
                        segments.pop();
                    }
                }
                b'^' => current.atoms.push(Atom::Separator),
                _ => current.atoms.push(Atom::Literal(b)),
            }
        }
        segments.push(current);

        // Host prefix for `||` anchored rules: the pattern text up to the
        // first path/separator/wildcard character.
        let host_prefix = if anchor == Anchor::Hostname {
            normalised
                .split(['/', '^', '*', '?'])
                .next()
                .unwrap_or("")
                .to_string()
        } else {
            String::new()
        };

        Pattern {
            source: raw.trim().to_string(),
            anchor,
            end_anchored,
            case_sensitive,
            segments,
            host_prefix,
        }
    }

    /// The raw pattern text the rule was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The start anchor kind.
    pub fn anchor(&self) -> Anchor {
        self.anchor
    }

    /// The hostname prefix a `||` rule requires (empty otherwise).
    pub fn host_prefix(&self) -> &str {
        &self.host_prefix
    }

    /// `true` when the pattern contains no constraining text at all and
    /// would match every URL (e.g. the rule was just `*`).
    pub fn is_match_all(&self) -> bool {
        self.anchor == Anchor::None
            && !self.end_anchored
            && self.segments.iter().all(|s| s.atoms.is_empty())
    }

    /// Extract "quality tokens" for the rule index: maximal runs of
    /// alphanumeric characters of length >= 3 from the literal parts of the
    /// pattern. Matching URLs must contain at least one of these runs, which
    /// is what makes token indexing sound.
    pub fn index_tokens(&self) -> Vec<String> {
        // Tokens are always lower-cased: URL tokenisation lower-cases too,
        // so case-sensitive rules still index soundly.
        let text = self
            .source
            .trim_start_matches('|')
            .trim_end_matches('|')
            .to_ascii_lowercase();
        let mut tokens = Vec::new();
        let mut current = String::new();
        for c in text.chars() {
            if c.is_ascii_alphanumeric() {
                current.push(c);
            } else {
                if current.len() >= 3 {
                    tokens.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
                // `*` and `^` break tokens just like other separators.
            }
        }
        if current.len() >= 3 {
            tokens.push(current);
        }
        tokens
    }

    /// Match the pattern against a URL.
    ///
    /// `url_lower` is the lower-cased full URL, `url_raw` the original
    /// spelling (used only for `$match-case` rules), and `hostname` the
    /// lower-cased request hostname (used for `||` anchoring).
    pub fn matches(&self, url_lower: &str, url_raw: &str, hostname: &str) -> bool {
        let text: &[u8] = if self.case_sensitive {
            url_raw.as_bytes()
        } else {
            url_lower.as_bytes()
        };

        match self.anchor {
            Anchor::None => self.match_unanchored(text),
            Anchor::UrlStart => self.match_from(text, 0),
            Anchor::Hostname => self.match_hostname_anchored(text, url_lower, hostname),
        }
    }

    fn match_unanchored(&self, text: &[u8]) -> bool {
        // Greedy left-to-right: find the first segment anywhere, then each
        // subsequent segment after the previous match. End anchoring
        // requires the last segment to end exactly at the end of the text,
        // so for that case we anchor the last segment at the tail.
        self.match_segments_from_any(text, 0)
    }

    fn match_from(&self, text: &[u8], start: usize) -> bool {
        // First segment must match exactly at `start`.
        let mut pos = start;
        let mut iter = self.segments.iter().peekable();
        if let Some(first) = iter.next() {
            match first.match_at(text, pos) {
                Some(end) => pos = end,
                None => return false,
            }
        }
        self.match_remaining(text, pos, iter)
    }

    fn match_segments_from_any(&self, text: &[u8], start: usize) -> bool {
        let mut iter = self.segments.iter().peekable();
        let mut pos = start;
        if let Some(first) = iter.next() {
            // The first segment may begin anywhere at or after `start`, but
            // if it is also the last segment and the pattern is end
            // anchored we must align it with the end of the text.
            if self.segments.len() == 1 && self.end_anchored {
                let seg_len_min = first.len();
                if text.len() < start + seg_len_min.saturating_sub(0) {
                    // May still match if trailing separators absorb end; fall
                    // through to scan.
                }
                // Scan for a match that ends exactly at text.len().
                let mut from = start;
                while let Some((_s, e)) = first.find_from(text, from) {
                    if e == text.len() {
                        return true;
                    }
                    from = _s + 1;
                }
                return false;
            }
            match first.find_from(text, pos) {
                Some((_s, e)) => pos = e,
                None => return false,
            }
        }
        self.match_remaining(text, pos, iter)
    }

    fn match_remaining<'a, I>(
        &self,
        text: &[u8],
        mut pos: usize,
        mut iter: std::iter::Peekable<I>,
    ) -> bool
    where
        I: Iterator<Item = &'a Segment>,
    {
        while let Some(seg) = iter.next() {
            let is_last = iter.peek().is_none();
            if is_last && self.end_anchored {
                // Must end exactly at text end.
                let mut from = pos;
                loop {
                    match seg.find_from(text, from) {
                        Some((s, e)) => {
                            if e == text.len() {
                                return true;
                            }
                            from = s + 1;
                        }
                        None => return false,
                    }
                }
            }
            match seg.find_from(text, pos) {
                Some((_s, e)) => pos = e,
                None => return false,
            }
        }
        if self.end_anchored {
            pos == text.len()
        } else {
            true
        }
    }

    fn match_hostname_anchored(&self, text: &[u8], url_lower: &str, hostname: &str) -> bool {
        if self.host_prefix.is_empty() {
            // Degenerate `||` rule; treat as unanchored.
            return self.match_unanchored(text);
        }
        // The request hostname must equal the host prefix or end with
        // `.host_prefix` — i.e. the anchor sits at a label boundary — OR the
        // host prefix may itself be a hostname prefix ending where a deeper
        // label continues (e.g. `||ads.` style rules). We cover both by
        // scanning label boundaries.
        let hp = &self.host_prefix;
        let candidate_offsets = hostname_anchor_offsets(hostname, hp);
        if candidate_offsets.is_empty() {
            return false;
        }
        // Find where the hostname starts inside the URL text.
        let host_start = match url_lower.find("://") {
            Some(idx) => {
                let after = idx + 3;
                // Skip userinfo if any.
                let authority_end = url_lower[after..]
                    .find(['/', '?', '#'])
                    .map(|i| after + i)
                    .unwrap_or(url_lower.len());
                match url_lower[after..authority_end].rfind('@') {
                    Some(at) => after + at + 1,
                    None => after,
                }
            }
            None => 0,
        };
        for off in candidate_offsets {
            let start = host_start + off;
            if start <= text.len() && self.match_from(text, start) {
                return true;
            }
        }
        false
    }
}

/// Offsets (within `hostname`) at which a `||` anchored pattern whose host
/// prefix is `host_prefix` may begin. An offset is valid when it is 0 or
/// immediately preceded by a `.`, and the hostname continues with the
/// prefix at that offset.
fn hostname_anchor_offsets(hostname: &str, host_prefix: &str) -> Vec<usize> {
    let mut out = Vec::new();
    if host_prefix.is_empty() {
        return out;
    }
    let hbytes = hostname.as_bytes();
    let mut idx = 0;
    while let Some(found) = hostname[idx..].find(host_prefix) {
        let at = idx + found;
        if at == 0 || hbytes[at - 1] == b'.' {
            out.push(at);
        }
        idx = at + 1;
        if idx >= hostname.len() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, url: &str) -> bool {
        let p = Pattern::compile(pattern, false);
        let lower = url.to_ascii_lowercase();
        let host = crate::url::ParsedUrl::parse(url)
            .map(|u| u.hostname)
            .unwrap_or_default();
        p.matches(&lower, url, &host)
    }

    #[test]
    fn plain_substring() {
        assert!(m("/ads/", "https://example.com/ads/banner.png"));
        assert!(!m("/ads/", "https://example.com/assets/banner.png"));
    }

    #[test]
    fn wildcard() {
        assert!(m("/banner*.gif", "https://x.com/banner_300x250.gif"));
        assert!(!m("/banner*.gif", "https://x.com/banner_300x250.png"));
    }

    #[test]
    fn separator_matches_punctuation_and_end() {
        assert!(m("||example.com^", "https://example.com/"));
        assert!(m("||example.com^", "https://example.com:8000/"));
        assert!(m("||example.com^", "https://example.com"));
        assert!(!m("||example.com^", "https://example.company.org/"));
    }

    #[test]
    fn hostname_anchor_respects_label_boundary() {
        assert!(m("||ads.com^", "https://ads.com/x"));
        assert!(m("||ads.com^", "https://sub.ads.com/x"));
        assert!(!m("||ads.com^", "https://badads.com/x"));
        assert!(!m("||ads.com^", "https://example.com/ads.com/x"));
    }

    #[test]
    fn url_start_anchor() {
        assert!(m("|https://cdn.", "https://cdn.example.com/a.js"));
        assert!(!m("|https://cdn.", "http://www.example.com/https://cdn."));
    }

    #[test]
    fn end_anchor() {
        assert!(m(".js|", "https://example.com/app.js"));
        assert!(!m(".js|", "https://example.com/app.js?x=1"));
    }

    #[test]
    fn both_anchors_exact_match() {
        assert!(m("|https://example.com/a.js|", "https://example.com/a.js"));
        assert!(!m(
            "|https://example.com/a.js|",
            "https://example.com/a.js.map"
        ));
    }

    #[test]
    fn case_insensitive_by_default() {
        assert!(m("/Banner/", "https://x.com/banner/1.png"));
    }

    #[test]
    fn case_sensitive_when_requested() {
        let p = Pattern::compile("/Banner/", true);
        let url = "https://x.com/banner/1.png";
        assert!(!p.matches(&url.to_ascii_lowercase(), url, "x.com"));
        let url2 = "https://x.com/Banner/1.png";
        assert!(p.matches(&url2.to_ascii_lowercase(), url2, "x.com"));
    }

    #[test]
    fn match_all_detection() {
        assert!(Pattern::compile("*", false).is_match_all());
        assert!(!Pattern::compile("||a.com^", false).is_match_all());
    }

    #[test]
    fn index_tokens_extracts_long_runs() {
        let p = Pattern::compile("||google-analytics.com/analytics.js", false);
        let tokens = p.index_tokens();
        assert!(tokens.contains(&"google".to_string()));
        assert!(tokens.contains(&"analytics".to_string()));
        assert!(tokens.contains(&"com".to_string()));
    }

    #[test]
    fn separator_inside_pattern() {
        assert!(m("||example.com^ads^", "https://example.com/ads/"));
        assert!(!m("||example.com^ads^", "https://example.com/adsx"));
    }

    #[test]
    fn wildcard_spanning_segments() {
        assert!(m("||cdn.*.com^", "https://cdn.shop.com/x.js"));
        assert!(!m("||cdn.*.com^", "https://img.shop.com/x.js"));
    }

    #[test]
    fn query_parameter_pattern() {
        assert!(m("utm_source=", "https://example.com/page?utm_source=mail"));
        assert!(m("^utm_medium=", "https://example.com/page?utm_medium=cpc"));
    }
}
