//! Parsing of filter list text into [`FilterRule`]s.
//!
//! A filter list is a line-oriented text format. We handle:
//!
//! * `! comment` lines and `[Adblock Plus 2.0]`-style headers — skipped;
//! * cosmetic rules (`##`, `#@#`, `#?#`, `#$#`) — skipped, they hide DOM
//!   elements and never label network requests;
//! * `@@` exception rules;
//! * network rules with an optional `$options` suffix.
//!
//! Rules that carry options the engine cannot evaluate faithfully are
//! dropped (counted in [`ParseStats`]), mirroring how blockers ignore rules
//! they do not understand rather than guessing.

use crate::options::RuleOptions;
use crate::pattern::Pattern;
use crate::rule::{FilterRule, ListKind};
use serde::{Deserialize, Serialize};

/// Statistics from parsing one list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseStats {
    /// Total lines read.
    pub lines: usize,
    /// Comment / header / empty lines.
    pub comments: usize,
    /// Cosmetic (element hiding) rules skipped.
    pub cosmetic: usize,
    /// Network rules successfully parsed.
    pub network_rules: usize,
    /// Exception (`@@`) rules among the parsed network rules.
    pub exceptions: usize,
    /// Rules dropped because of unsupported options or empty patterns.
    pub dropped: usize,
}

/// Result of parsing a list: the usable rules plus statistics.
#[derive(Debug, Clone, Default)]
pub struct ParsedList {
    /// Parsed, usable network rules.
    pub rules: Vec<FilterRule>,
    /// Parse statistics.
    pub stats: ParseStats,
}

/// Classify a single line and parse it into a rule if it is a network rule.
///
/// Returns `None` for comments, cosmetic rules, and rules the engine cannot
/// honour.
pub fn parse_rule(line: &str, list: ListKind, line_no: usize) -> Option<FilterRule> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('!') || trimmed.starts_with('[') {
        return None;
    }
    // Cosmetic rules contain `##`, `#@#`, `#?#` or `#$#` separators.
    if trimmed.contains("##")
        || trimmed.contains("#@#")
        || trimmed.contains("#?#")
        || trimmed.contains("#$#")
    {
        return None;
    }

    let (exception, body) = match trimmed.strip_prefix("@@") {
        Some(rest) => (true, rest),
        None => (false, trimmed),
    };

    // Split off options at the last unescaped `$` that is followed by
    // something that looks like an option list. A `$` inside a URL pattern
    // (rare) would not be followed by a known option, but to keep parsing
    // simple and faithful we follow the common convention: the options
    // separator is the last `$` in the rule.
    let (pattern_text, options_text) = match body.rfind('$') {
        Some(idx) if idx < body.len() => {
            let candidate = &body[idx + 1..];
            // Heuristic used by real parsers: an options section contains
            // only option-ish characters.
            // `*` appears in `$removeparam=utm_*` prefix entries; the
            // curated lists carry no `$`-suffixed pattern text containing
            // it, so admitting it here cannot reclassify a pattern.
            let looks_like_options = !candidate.is_empty()
                && candidate
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || ",~=|-_.*".contains(c));
            if looks_like_options {
                (&body[..idx], candidate)
            } else {
                (body, "")
            }
        }
        _ => (body, ""),
    };

    let options = RuleOptions::parse(options_text);
    if options.has_unsupported() {
        return None;
    }
    let pattern_trimmed = pattern_text.trim();
    if pattern_trimmed.is_empty() {
        return None;
    }
    let pattern = Pattern::compile(pattern_trimmed, options.match_case);
    // A rule that matches every URL and has no constraining options would
    // label the whole web as tracking; real lists never ship such a rule and
    // we refuse it here. Removeparam rules are exempt: `*$removeparam=gclid`
    // is the canonical global strip rule, and as a modifier it labels
    // nothing — the engine keeps it out of the blocking index entirely.
    if pattern.is_match_all()
        && options.removeparam.is_empty()
        && options.include_types.is_empty()
        && options.domains.is_empty()
        && options.party == crate::options::PartyConstraint::Any
    {
        return None;
    }

    Some(FilterRule {
        text: trimmed.to_string(),
        pattern,
        options,
        exception,
        list,
        line: line_no,
    })
}

/// Parse a whole filter list.
pub fn parse_list(text: &str, list: ListKind) -> ParsedList {
    let mut out = ParsedList::default();
    for (idx, line) in text.lines().enumerate() {
        out.stats.lines += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('!') || trimmed.starts_with('[') {
            out.stats.comments += 1;
            continue;
        }
        if trimmed.contains("##")
            || trimmed.contains("#@#")
            || trimmed.contains("#?#")
            || trimmed.contains("#$#")
        {
            out.stats.cosmetic += 1;
            continue;
        }
        match parse_rule(trimmed, list, idx + 1) {
            Some(rule) => {
                if rule.exception {
                    out.stats.exceptions += 1;
                }
                out.stats.network_rules += 1;
                out.rules.push(rule);
            }
            None => out.stats.dropped += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_comments_headers_and_cosmetics() {
        let list = "[Adblock Plus 2.0]\n! Title: EasyList\nexample.com##.ad-banner\n||ads.net^\n";
        let parsed = parse_list(list, ListKind::EasyList);
        assert_eq!(parsed.rules.len(), 1);
        assert_eq!(parsed.stats.comments, 2);
        assert_eq!(parsed.stats.cosmetic, 1);
        assert_eq!(parsed.stats.network_rules, 1);
    }

    #[test]
    fn counts_exceptions() {
        let list = "||ads.net^\n@@||ads.net/allowed.js$script\n";
        let parsed = parse_list(list, ListKind::EasyPrivacy);
        assert_eq!(parsed.stats.network_rules, 2);
        assert_eq!(parsed.stats.exceptions, 1);
    }

    #[test]
    fn drops_unsupported_options() {
        assert!(parse_rule("||x.com^$redirect=noop.js", ListKind::EasyList, 1).is_none());
        let list = "||x.com^$redirect=noop.js\n";
        let parsed = parse_list(list, ListKind::EasyList);
        assert_eq!(parsed.stats.dropped, 1);
    }

    #[test]
    fn drops_match_all_rules() {
        assert!(parse_rule("*", ListKind::EasyList, 1).is_none());
        assert!(parse_rule("*$script", ListKind::EasyList, 1).is_some());
    }

    #[test]
    fn global_removeparam_rules_parse() {
        let r = parse_rule("*$removeparam=gclid", ListKind::EasyPrivacy, 1).unwrap();
        assert_eq!(r.options.removeparam, vec!["gclid".to_string()]);
        let prefix = parse_rule("*$removeparam=utm_*", ListKind::EasyPrivacy, 2).unwrap();
        assert_eq!(prefix.options.removeparam, vec!["utm_*".to_string()]);
        let scoped = parse_rule(
            "||shop.example^$removeparam=mc_eid,domain=news.example",
            ListKind::Custom,
            3,
        )
        .unwrap();
        assert_eq!(scoped.options.removeparam, vec!["mc_eid".to_string()]);
        assert_eq!(scoped.options.domains.len(), 1);
    }

    #[test]
    fn dollar_inside_pattern_without_options_is_kept() {
        // `$` followed by non-option characters stays part of the pattern.
        let r = parse_rule("/path/$weird/file.js", ListKind::EasyList, 1);
        // `weird/file.js` contains '/', so it is not an option list.
        assert!(r.is_some());
    }

    #[test]
    fn options_are_attached() {
        let r = parse_rule("||cdn.net^$script,third-party", ListKind::EasyList, 7).unwrap();
        assert_eq!(r.line, 7);
        assert_eq!(r.options.include_types.len(), 1);
    }

    #[test]
    fn empty_pattern_is_dropped() {
        assert!(parse_rule("$script", ListKind::EasyList, 1).is_none());
    }
}
