//! The shared zero-allocation tokenizer behind the rule index.
//!
//! Both sides of the token index — filing rules at build time
//! ([`crate::pattern::Pattern::index_token_hashes`]) and selecting candidate
//! buckets at query time ([`crate::request::FilterRequest`]) — must agree
//! exactly on what a token is, or the index silently develops false
//! negatives. This module is the single definition both sides use: a token
//! is a maximal run of ASCII alphanumeric bytes of length ≥
//! [`TOKEN_MIN_LEN`], lower-cased, and it is represented not as an owned
//! `String` but as its 64-bit FNV-1a hash, computed incrementally while
//! scanning. Tokenizing a URL therefore allocates nothing: the iterator
//! walks the byte slice once and yields `u64`s.
//!
//! Hash collisions (two distinct tokens with the same hash) are harmless by
//! construction: colliding tokens merely share a candidate bucket, and every
//! candidate rule is still verified with a full pattern match before it can
//! affect the result. The index tests exercise this with a forced-collision
//! case.

/// Minimum length of an indexable token (alphanumeric run).
pub const TOKEN_MIN_LEN: usize = 3;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice with 64-bit FNV-1a (the same fold the tokenizer applies
/// incrementally). Exposed so tests can compute the hash of a known token.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = fnv1a64_step(hash, b);
    }
    hash
}

/// One FNV-1a step: fold byte `b` into `hash`.
#[inline]
fn fnv1a64_step(hash: u64, b: u8) -> u64 {
    (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME)
}

/// One maximal alphanumeric run found by [`TokenHashes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the first byte of the run.
    pub start: usize,
    /// Byte offset one past the last byte of the run.
    pub end: usize,
    /// FNV-1a hash of the lower-cased run.
    pub hash: u64,
}

impl Token {
    /// Length of the run in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the run is empty (never produced by the tokenizer).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Zero-allocation iterator over the tokens of a byte slice.
///
/// Yields every maximal ASCII-alphanumeric run of length ≥
/// [`TOKEN_MIN_LEN`], hashing the lower-cased bytes incrementally. Non-ASCII
/// bytes and ASCII punctuation both terminate runs, exactly as the original
/// string tokenizer did.
#[derive(Debug, Clone)]
pub struct TokenHashes<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> TokenHashes<'a> {
    /// Tokenize a byte slice.
    pub fn new(text: &'a [u8]) -> Self {
        TokenHashes { text, pos: 0 }
    }
}

impl Iterator for TokenHashes<'_> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        loop {
            // Skip to the next alphanumeric byte.
            while self.pos < self.text.len() && !self.text[self.pos].is_ascii_alphanumeric() {
                self.pos += 1;
            }
            if self.pos >= self.text.len() {
                return None;
            }
            let start = self.pos;
            let mut hash = FNV_OFFSET;
            while self.pos < self.text.len() && self.text[self.pos].is_ascii_alphanumeric() {
                hash = fnv1a64_step(hash, self.text[self.pos].to_ascii_lowercase());
                self.pos += 1;
            }
            if self.pos - start >= TOKEN_MIN_LEN {
                return Some(Token {
                    start,
                    end: self.pos,
                    hash,
                });
            }
            // Run too short: keep scanning.
        }
    }
}

/// Tokenize a string (typically an already lower-cased URL) into token
/// hashes. Zero-allocation: returns a lazy iterator over the bytes.
pub fn token_hashes(text: &str) -> TokenHashes<'_> {
    TokenHashes::new(text.as_bytes())
}

/// A [`std::hash::BuildHasher`] for maps keyed by token hashes.
///
/// The `u64` keys are already FNV-mixed, so running them through SipHash
/// again (the `HashMap` default) wastes most of a bucket probe. This hasher
/// applies one Fibonacci multiply as a finaliser — enough to spread FNV's
/// weaker low bits across the table index — and nothing else.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenHashBuilder;

impl std::hash::BuildHasher for TokenHashBuilder {
    type Hasher = TokenHashHasher;

    fn build_hasher(&self) -> TokenHashHasher {
        TokenHashHasher(0)
    }
}

/// Hasher produced by [`TokenHashBuilder`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenHashHasher(u64);

impl std::hash::Hasher for TokenHashHasher {
    fn finish(&self) -> u64 {
        // Fibonacci (golden-ratio) multiplicative spread: one multiply
        // fixes up the weaker low bits of both the FNV fold and raw u64
        // keys (e.g. sequential interner ids) before the table masks them.
        self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for composite keys (tuples of small ids): FNV-1a fold.
        for &b in bytes {
            self.0 = fnv1a64_step(self.0, b);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 ^= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashes(text: &str) -> Vec<u64> {
        token_hashes(text).map(|t| t.hash).collect()
    }

    #[test]
    fn tokens_are_maximal_alphanumeric_runs() {
        let tokens: Vec<Token> = token_hashes("https://a.io/ab/abc/abcd?x=12345").collect();
        let runs: Vec<&str> = tokens
            .iter()
            .map(|t| &"https://a.io/ab/abc/abcd?x=12345"[t.start..t.end])
            .collect();
        // `a`, `io`, `ab`, `x` are shorter than TOKEN_MIN_LEN.
        assert_eq!(runs, vec!["https", "abc", "abcd", "12345"]);
    }

    #[test]
    fn hashes_match_the_reference_fold() {
        assert_eq!(
            hashes("https://abc.io"),
            vec![fnv1a64(b"https"), fnv1a64(b"abc")]
        );
    }

    #[test]
    fn hashing_is_case_insensitive() {
        assert_eq!(hashes("HTTPS://ABC.io"), hashes("https://abc.io"));
        assert_eq!(fnv1a64(b"abc"), hashes("ABC")[0]);
    }

    #[test]
    fn distinct_tokens_hash_differently_in_practice() {
        let mut seen = std::collections::HashSet::new();
        for token in ["ads", "adserver", "analytics", "track", "pixel", "banner"] {
            assert!(
                seen.insert(fnv1a64(token.as_bytes())),
                "collision on {token}"
            );
        }
    }

    #[test]
    fn empty_and_punctuation_only_inputs_yield_nothing() {
        assert!(hashes("").is_empty());
        assert!(hashes("://?&=.").is_empty());
        assert!(hashes("ab.cd.ef").is_empty());
    }

    #[test]
    fn non_ascii_breaks_runs() {
        // The ü (2 UTF-8 bytes, non-alphanumeric ASCII) splits the run.
        assert_eq!(hashes("abcüdef"), vec![fnv1a64(b"abc"), fnv1a64(b"def")]);
    }
}
