//! Hostname and registrable-domain (eTLD+1) helpers.
//!
//! TrackerSift's coarsest granularity is the *domain*, which the paper
//! defines as the eTLD+1 of a request's hostname (e.g. `pixel.wp.com` and
//! `stats.wp.com` both belong to the domain `wp.com`). A full public suffix
//! list is overkill for the synthetic corpus, so we embed the common
//! multi-label suffixes that appear in the paper's examples and in the
//! generated ecosystem, falling back to the last two labels otherwise.

use std::collections::HashSet;
use std::sync::OnceLock;

/// Multi-label public suffixes recognised by [`registrable_domain`].
///
/// This is intentionally a curated subset of the Public Suffix List: the
/// suffixes that actually occur in the paper's examples (`co.uk`, `com.au`,
/// `com.br`, `com.mx`, `co.jp`) plus other common country-code second-level
/// registrations so that real-world URLs fed to the engine behave sensibly.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk", "com.au", "net.au", "org.au",
    "edu.au", "gov.au", "com.br", "net.br", "org.br", "gov.br", "com.mx", "org.mx", "gob.mx",
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp", "co.in", "net.in", "org.in", "gen.in", "firm.in",
    "co.kr", "or.kr", "ne.kr", "com.cn", "net.cn", "org.cn", "gov.cn", "com.tw", "org.tw",
    "net.tw", "co.za", "org.za", "net.za", "com.ar", "com.co", "com.pe", "com.ve", "com.ec",
    "com.uy", "com.tr", "net.tr", "org.tr", "com.sg", "com.my", "com.ph", "com.vn", "com.hk",
    "com.pk", "net.pk", "org.pk", "co.id", "or.id", "web.id", "com.ua", "net.ua", "org.ua",
    "in.ua", "com.pl", "net.pl", "org.pl", "co.il", "org.il", "net.il", "co.nz", "net.nz",
    "org.nz", "com.eg", "com.sa", "com.ng", "com.gh", "com.bd", "com.np",
];

fn suffix_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| MULTI_LABEL_SUFFIXES.iter().copied().collect())
}

/// Returns `true` if `hostname` is syntactically a plausible DNS hostname.
pub fn is_valid_hostname(hostname: &str) -> bool {
    if hostname.is_empty() || hostname.len() > 253 {
        return false;
    }
    hostname.split('.').all(|label| {
        !label.is_empty()
            && label.len() <= 63
            && !label.starts_with('-')
            && !label.ends_with('-')
            && label
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    })
}

/// Returns `true` when the hostname is an IPv4 literal (no eTLD+1 exists).
pub fn is_ip_literal(hostname: &str) -> bool {
    let mut parts = 0usize;
    for part in hostname.split('.') {
        parts += 1;
        if parts > 4 || part.is_empty() || part.parse::<u8>().is_err() {
            return false;
        }
    }
    parts == 4
}

/// Borrowed eTLD+1 of an already-normalised hostname (lower-case, no
/// trailing dot) — the zero-allocation core of [`registrable_domain`],
/// usable directly on hostnames coming out of
/// [`crate::url::ParsedUrl::parse`], which normalises them.
pub fn registrable_suffix(hostname: &str) -> &str {
    if is_ip_literal(hostname) {
        return hostname;
    }
    // Byte offsets of the last three dots, scanning from the end.
    let bytes = hostname.as_bytes();
    let mut dots = [0usize; 3];
    let mut found = 0usize;
    for i in (0..bytes.len()).rev() {
        if bytes[i] == b'.' {
            dots[found] = i;
            found += 1;
            if found == 3 {
                break;
            }
        }
    }
    if found < 2 {
        // Two labels or fewer: the hostname is its own registrable domain.
        return hostname;
    }
    let last_two = &hostname[dots[1] + 1..];
    if suffix_set().contains(last_two) {
        // Known multi-label suffix: keep three labels (or the whole
        // hostname when it has exactly three).
        if found == 3 {
            &hostname[dots[2] + 1..]
        } else {
            hostname
        }
    } else {
        last_two
    }
}

/// `true` when the hostname needs normalisation before
/// [`registrable_suffix`] can slice it.
fn needs_normalising(hostname: &str) -> bool {
    hostname.ends_with('.') || hostname.bytes().any(|b| b.is_ascii_uppercase())
}

/// Extract the registrable domain (eTLD+1) from a hostname.
///
/// `pixel.wp.com` → `wp.com`; `static.bbc.co.uk` → `bbc.co.uk`;
/// IP literals and single-label hosts are returned unchanged.
pub fn registrable_domain(hostname: &str) -> String {
    if needs_normalising(hostname) {
        let normalised = hostname.trim_end_matches('.').to_ascii_lowercase();
        registrable_suffix(&normalised).to_string()
    } else {
        registrable_suffix(hostname).to_string()
    }
}

/// Returns `true` when `hostname` equals `domain` or is a subdomain of it.
///
/// This is the containment test used both by the `$domain=` option and by
/// `||` host anchors: `cdn.google.com` is within `google.com` but
/// `notgoogle.com` is not. Comparison is ASCII case-insensitive without
/// building lowered copies.
pub fn hostname_within(hostname: &str, domain: &str) -> bool {
    if hostname.eq_ignore_ascii_case(domain) {
        return true;
    }
    hostname.len() > domain.len()
        && hostname.is_char_boundary(hostname.len() - domain.len())
        && hostname[hostname.len() - domain.len()..].eq_ignore_ascii_case(domain)
        && hostname.as_bytes()[hostname.len() - domain.len() - 1] == b'.'
}

/// Determine whether a request is *third-party* with respect to the page
/// that issued it: the request hostname's registrable domain differs from
/// the page hostname's registrable domain. Allocation-free for normalised
/// hostnames (the common case — [`crate::url::ParsedUrl`] and
/// [`crate::request::FilterRequest`] lower-case theirs at construction).
pub fn is_third_party(request_hostname: &str, page_hostname: &str) -> bool {
    if request_hostname.is_empty() || page_hostname.is_empty() {
        return false;
    }
    if needs_normalising(request_hostname) || needs_normalising(page_hostname) {
        return registrable_domain(request_hostname) != registrable_domain(page_hostname);
    }
    registrable_suffix(request_hostname) != registrable_suffix(page_hostname)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etld1_basic() {
        assert_eq!(registrable_domain("pixel.wp.com"), "wp.com");
        assert_eq!(registrable_domain("wp.com"), "wp.com");
        assert_eq!(registrable_domain("i0.wp.com"), "wp.com");
        assert_eq!(registrable_domain("cdn.google.com"), "google.com");
    }

    #[test]
    fn etld1_multi_label_suffix() {
        assert_eq!(registrable_domain("static.bbc.co.uk"), "bbc.co.uk");
        assert_eq!(
            registrable_domain("www.forevernew.com.au"),
            "forevernew.com.au"
        );
        assert_eq!(registrable_domain("radioshack.com.mx"), "radioshack.com.mx");
        assert_eq!(registrable_domain("cdn.peachjohn.co.jp"), "peachjohn.co.jp");
    }

    #[test]
    fn etld1_single_label_and_ip() {
        assert_eq!(registrable_domain("localhost"), "localhost");
        assert_eq!(registrable_domain("192.168.1.20"), "192.168.1.20");
    }

    #[test]
    fn trailing_dot_and_case_normalised() {
        assert_eq!(registrable_domain("Stats.WP.com."), "wp.com");
    }

    #[test]
    fn registrable_suffix_borrows_from_normalised_input() {
        assert_eq!(registrable_suffix("pixel.wp.com"), "wp.com");
        assert_eq!(registrable_suffix("static.bbc.co.uk"), "bbc.co.uk");
        assert_eq!(registrable_suffix("bbc.co.uk"), "bbc.co.uk");
        assert_eq!(registrable_suffix("localhost"), "localhost");
        assert_eq!(registrable_suffix("10.0.0.1"), "10.0.0.1");
        // Agrees with the allocating wrapper on already-normalised input.
        for host in ["a.b.c.d.example.com", "x.co.jp", "deep.shop.example.co.uk"] {
            assert_eq!(registrable_suffix(host), registrable_domain(host));
        }
    }

    #[test]
    fn hostname_within_is_case_insensitive_without_allocation() {
        assert!(hostname_within("CDN.Google.COM", "google.com"));
        assert!(hostname_within("cdn.google.com", "GOOGLE.com"));
        assert!(!hostname_within("notgoogle.com", "GOOGLE.com"));
    }

    #[test]
    fn within_checks_label_boundaries() {
        assert!(hostname_within("cdn.google.com", "google.com"));
        assert!(hostname_within("google.com", "google.com"));
        assert!(!hostname_within("notgoogle.com", "google.com"));
        assert!(!hostname_within("google.com.evil.net", "google.com"));
    }

    #[test]
    fn third_party_uses_registrable_domain() {
        assert!(!is_third_party("stats.wp.com", "www.wp.com"));
        assert!(is_third_party("stats.wp.com", "somosinvictos.com"));
        assert!(!is_third_party("a.shop.example.co.uk", "example.co.uk"));
    }

    #[test]
    fn hostname_validity() {
        assert!(is_valid_hostname("cdn-1.example.com"));
        assert!(!is_valid_hostname(""));
        assert!(!is_valid_hostname(".example.com"));
        assert!(!is_valid_hostname("-bad.example.com"));
    }

    #[test]
    fn ip_literal_detection() {
        assert!(is_ip_literal("10.0.0.1"));
        assert!(!is_ip_literal("10.0.0"));
        assert!(!is_ip_literal("a.b.c.d"));
    }
}
