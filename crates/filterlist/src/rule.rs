//! A fully parsed network filter rule.

use crate::options::RuleOptions;
use crate::pattern::Pattern;
use crate::request::FilterRequest;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which list a rule came from. The paper uses EasyList (advertising) and
/// EasyPrivacy (tracking); both map to the "tracking" label, but keeping the
/// provenance lets reports distinguish ad-blocking hits from pure tracking
/// hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ListKind {
    /// EasyList — advertising.
    EasyList,
    /// EasyPrivacy — tracking.
    EasyPrivacy,
    /// Any other list supplied by the user.
    Custom,
}

impl fmt::Display for ListKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListKind::EasyList => f.write_str("EasyList"),
            ListKind::EasyPrivacy => f.write_str("EasyPrivacy"),
            ListKind::Custom => f.write_str("Custom"),
        }
    }
}

/// A parsed network filter rule (blocking or exception).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterRule {
    /// The original rule text, as it appeared in the list.
    pub text: String,
    /// Compiled URL pattern.
    pub pattern: Pattern,
    /// Parsed `$` options.
    pub options: RuleOptions,
    /// `true` for `@@` exception (allow) rules.
    pub exception: bool,
    /// Which list the rule came from.
    pub list: ListKind,
    /// Line number in the source list (1-based), for diagnostics.
    pub line: usize,
}

impl FilterRule {
    /// Evaluate the rule against a request: both the URL pattern and every
    /// option constraint must hold.
    pub fn matches(&self, request: &FilterRequest) -> bool {
        if !self.options.matches(request) {
            return false;
        }
        self.pattern.matches(&request.url)
    }

    /// Token hashes used to place the rule into the
    /// [`crate::index::RuleIndex`].
    pub fn index_token_hashes(&self) -> Vec<u64> {
        self.pattern.index_token_hashes()
    }
}

impl fmt::Display for FilterRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use crate::request::ResourceType;

    fn rule(text: &str) -> FilterRule {
        parse_rule(text, ListKind::EasyList, 1).expect("rule should parse")
    }

    fn req(url: &str, source: &str, ty: ResourceType) -> FilterRequest {
        FilterRequest::new(url, source, ty).unwrap()
    }

    #[test]
    fn pattern_and_options_both_required() {
        let r = rule("||tracker.example^$script");
        assert!(r.matches(&req(
            "https://tracker.example/t.js",
            "a.com",
            ResourceType::Script
        )));
        assert!(!r.matches(&req(
            "https://tracker.example/t.gif",
            "a.com",
            ResourceType::Image
        )));
        assert!(!r.matches(&req(
            "https://other.example/t.js",
            "a.com",
            ResourceType::Script
        )));
    }

    #[test]
    fn exception_rules_flagged() {
        let r = rule("@@||cdn.example.com/jquery.js$script");
        assert!(r.exception);
        assert!(r.matches(&req(
            "https://cdn.example.com/jquery.js",
            "a.com",
            ResourceType::Script
        )));
    }

    #[test]
    fn display_round_trips_text() {
        let r = rule("||ads.net^$third-party");
        assert_eq!(r.to_string(), "||ads.net^$third-party");
    }
}
