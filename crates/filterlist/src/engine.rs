//! The filter engine: EasyList + EasyPrivacy semantics over a request.
//!
//! TrackerSift's oracle is simple: *a request that matches EasyList or
//! EasyPrivacy is tracking, everything else is functional* (§3, "Labeling").
//! The engine nevertheless implements the full blocking/exception semantics
//! so it behaves like a real content blocker: an `@@` exception rule
//! overrides a blocking match from any list.

use crate::index::RuleIndex;
use crate::parser::{parse_list, ParseStats};
use crate::request::{FilterRequest, ResourceType};
use crate::rule::{FilterRule, ListKind};
use serde::{Deserialize, Serialize};

/// The label TrackerSift assigns to a single network request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestLabel {
    /// The request matched EasyList or EasyPrivacy (and no exception).
    Tracking,
    /// The request did not match (or an exception overrode the match).
    Functional,
}

impl RequestLabel {
    /// `true` for [`RequestLabel::Tracking`].
    pub fn is_tracking(&self) -> bool {
        matches!(self, RequestLabel::Tracking)
    }
}

/// The detailed outcome of evaluating a request against the engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchOutcome {
    /// A blocking rule matched and no exception rule overrode it.
    Blocked {
        /// Text of the blocking rule.
        rule: String,
        /// List the blocking rule came from.
        list: ListKind,
    },
    /// A blocking rule matched but an exception (`@@`) rule allowed the
    /// request.
    Excepted {
        /// Text of the blocking rule that would have fired.
        rule: String,
        /// Text of the exception rule that overrode it.
        exception: String,
    },
    /// No blocking rule matched.
    NoMatch,
}

impl MatchOutcome {
    /// Collapse the outcome into the binary label the paper uses.
    pub fn label(&self) -> RequestLabel {
        match self {
            MatchOutcome::Blocked { .. } => RequestLabel::Tracking,
            _ => RequestLabel::Functional,
        }
    }
}

/// A compiled filter engine over one or more lists.
#[derive(Debug, Clone, Default)]
pub struct FilterEngine {
    blocking: RuleIndex,
    exceptions: RuleIndex,
    /// `$removeparam=` modifier rules. These never *block* (a global
    /// `*$removeparam=gclid` must not label the whole web as tracking), so
    /// they live outside the blocking index and are consumed by the URL
    /// rewriter as a rule source.
    removeparam: Vec<FilterRule>,
    stats: Vec<(ListKind, ParseStats)>,
}

// The engine is shared read-only across rayon workers during the parallel
// crawl and labeling stages; this compile-time assertion keeps it that way
// (adding interior mutability such as a match cache would break the build
// here rather than in a downstream crate).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FilterEngine>();
};

impl FilterEngine {
    /// Build an engine from already-parsed rules.
    pub fn from_rules(rules: Vec<FilterRule>) -> Self {
        let (removeparam, rest): (Vec<_>, Vec<_>) = rules
            .into_iter()
            .partition(|r| !r.options.removeparam.is_empty());
        let (exceptions, blocking): (Vec<_>, Vec<_>) = rest.into_iter().partition(|r| r.exception);
        FilterEngine {
            blocking: RuleIndex::build(blocking),
            exceptions: RuleIndex::build(exceptions),
            removeparam,
            stats: Vec::new(),
        }
    }

    /// Build an engine from raw list texts, each tagged with its provenance.
    pub fn from_lists(lists: &[(ListKind, &str)]) -> Self {
        let mut rules = Vec::new();
        let mut stats = Vec::new();
        for (kind, text) in lists {
            let parsed = parse_list(text, *kind);
            stats.push((*kind, parsed.stats));
            rules.extend(parsed.rules);
        }
        let mut engine = Self::from_rules(rules);
        engine.stats = stats;
        engine
    }

    /// Build the engine the paper uses: the embedded EasyList + EasyPrivacy
    /// snapshots.
    pub fn easylist_easyprivacy() -> Self {
        Self::from_lists(&[
            (ListKind::EasyList, crate::lists::EASYLIST_CURATED),
            (ListKind::EasyPrivacy, crate::lists::EASYPRIVACY_CURATED),
        ])
    }

    /// Add more rules (e.g. the synthetic ecosystem's tracker domains) to an
    /// existing engine. The new rules are appended and filed incrementally —
    /// existing rules are neither cloned nor re-indexed.
    pub fn extend_with_rules(&mut self, extra: Vec<FilterRule>) {
        let (removeparam, rest): (Vec<_>, Vec<_>) = extra
            .into_iter()
            .partition(|r| !r.options.removeparam.is_empty());
        let (exceptions, blocking): (Vec<_>, Vec<_>) = rest.into_iter().partition(|r| r.exception);
        self.blocking.extend(blocking);
        self.exceptions.extend(exceptions);
        self.removeparam.extend(removeparam);
    }

    /// Total number of rules (blocking + exception).
    pub fn rule_count(&self) -> usize {
        self.blocking.len() + self.exceptions.len()
    }

    /// Number of blocking rules.
    pub fn blocking_rule_count(&self) -> usize {
        self.blocking.len()
    }

    /// Number of exception rules.
    pub fn exception_rule_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Per-list parse statistics (only populated when built from list text).
    pub fn parse_stats(&self) -> &[(ListKind, ParseStats)] {
        &self.stats
    }

    /// Iterate the blocking rules in insertion order (diagnostics and
    /// benchmark baselines; not a hot path).
    pub fn blocking_rules(&self) -> impl Iterator<Item = &FilterRule> {
        self.blocking.rules()
    }

    /// Iterate the exception (`@@`) rules in insertion order.
    pub fn exception_rules(&self) -> impl Iterator<Item = &FilterRule> {
        self.exceptions.rules()
    }

    /// The `$removeparam=` modifier rules, in list order — the rule source a
    /// URL rewriter consumes (they take no part in [`FilterEngine::label`]).
    pub fn removeparam_rules(&self) -> &[FilterRule] {
        &self.removeparam
    }

    /// Number of `$removeparam=` modifier rules.
    pub fn removeparam_rule_count(&self) -> usize {
        self.removeparam.len()
    }

    /// Evaluate a request, returning the full outcome.
    pub fn evaluate(&self, request: &FilterRequest) -> MatchOutcome {
        match self.blocking.first_match(request) {
            Some(block) => match self.exceptions.first_match(request) {
                Some(exc) => MatchOutcome::Excepted {
                    rule: block.text.clone(),
                    exception: exc.text.clone(),
                },
                None => MatchOutcome::Blocked {
                    rule: block.text.clone(),
                    list: block.list,
                },
            },
            None => MatchOutcome::NoMatch,
        }
    }

    /// Evaluate a request and return only the binary label.
    ///
    /// This is the hot path of the labeling stage: unlike
    /// [`FilterEngine::evaluate`], it never clones rule text — the match
    /// scan itself is allocation-free, so labeling a pre-built request
    /// performs zero allocations.
    pub fn label(&self, request: &FilterRequest) -> RequestLabel {
        match self.blocking.first_match(request) {
            Some(_) if self.exceptions.first_match(request).is_none() => RequestLabel::Tracking,
            _ => RequestLabel::Functional,
        }
    }

    /// Convenience: label a raw URL issued from `source_hostname`.
    pub fn label_url(
        &self,
        url: &str,
        source_hostname: &str,
        resource_type: ResourceType,
    ) -> RequestLabel {
        match FilterRequest::new(url, source_hostname, resource_type) {
            Some(req) => self.label(&req),
            None => RequestLabel::Functional,
        }
    }

    /// Reference implementation used by tests/benches: linear scan without
    /// the token index.
    pub fn evaluate_linear(&self, request: &FilterRequest) -> MatchOutcome {
        match self.blocking.first_match_linear(request) {
            Some(block) => match self.exceptions.first_match_linear(request) {
                Some(exc) => MatchOutcome::Excepted {
                    rule: block.text.clone(),
                    exception: exc.text.clone(),
                },
                None => MatchOutcome::Blocked {
                    rule: block.text.clone(),
                    list: block.list,
                },
            },
            None => MatchOutcome::NoMatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(rules: &str) -> FilterEngine {
        FilterEngine::from_lists(&[(ListKind::EasyList, rules)])
    }

    fn req(url: &str, source: &str, ty: ResourceType) -> FilterRequest {
        FilterRequest::new(url, source, ty).unwrap()
    }

    #[test]
    fn blocking_rule_labels_tracking() {
        let e = engine("||tracker.io^$third-party\n");
        let r = req(
            "https://px.tracker.io/collect",
            "shop.com",
            ResourceType::Xhr,
        );
        assert_eq!(e.label(&r), RequestLabel::Tracking);
        assert!(matches!(e.evaluate(&r), MatchOutcome::Blocked { .. }));
    }

    #[test]
    fn exception_overrides_block() {
        let e = engine("||cdn.io^\n@@||cdn.io/lib/jquery.js$script\n");
        let blocked = req("https://cdn.io/px.gif", "shop.com", ResourceType::Image);
        let allowed = req(
            "https://cdn.io/lib/jquery.js",
            "shop.com",
            ResourceType::Script,
        );
        assert_eq!(e.label(&blocked), RequestLabel::Tracking);
        assert_eq!(e.label(&allowed), RequestLabel::Functional);
        assert!(matches!(
            e.evaluate(&allowed),
            MatchOutcome::Excepted { .. }
        ));
    }

    #[test]
    fn no_match_is_functional() {
        let e = engine("||tracker.io^\n");
        let r = req(
            "https://images.shop.com/logo.png",
            "shop.com",
            ResourceType::Image,
        );
        assert_eq!(e.label(&r), RequestLabel::Functional);
        assert_eq!(e.evaluate(&r), MatchOutcome::NoMatch);
    }

    #[test]
    fn embedded_lists_load_and_label_known_trackers() {
        let e = FilterEngine::easylist_easyprivacy();
        assert!(e.rule_count() > 100, "expected a substantive embedded list");
        let ga = req(
            "https://www.google-analytics.com/analytics.js",
            "news.example.com",
            ResourceType::Script,
        );
        let dc = req(
            "https://securepubads.g.doubleclick.net/gpt/pubads_impl.js",
            "news.example.com",
            ResourceType::Script,
        );
        let logo = req(
            "https://pbs.twimg.com/profile_images/1/logo.png",
            "news.example.com",
            ResourceType::Image,
        );
        assert_eq!(e.label(&ga), RequestLabel::Tracking);
        assert_eq!(e.label(&dc), RequestLabel::Tracking);
        assert_eq!(e.label(&logo), RequestLabel::Functional);
    }

    #[test]
    fn indexed_and_linear_evaluation_agree_on_embedded_lists() {
        let e = FilterEngine::easylist_easyprivacy();
        let urls = [
            (
                "https://www.googletagmanager.com/gtm.js?id=GTM-1",
                ResourceType::Script,
            ),
            (
                "https://connect.facebook.net/en_US/fbevents.js",
                ResourceType::Script,
            ),
            (
                "https://cdn.shopify.com/s/files/1/theme.js",
                ResourceType::Script,
            ),
            ("https://stats.wp.com/e-202124.js", ResourceType::Script),
            (
                "https://i0.wp.com/site/wp-content/uploads/photo.jpg",
                ResourceType::Image,
            ),
            (
                "https://secure.quantserve.com/quant.js",
                ResourceType::Script,
            ),
            (
                "https://example.com/wp-content/themes/x/style.css",
                ResourceType::Stylesheet,
            ),
        ];
        for (u, ty) in urls {
            let r = req(u, "publisher-site.com", ty);
            assert_eq!(
                e.evaluate(&r).label(),
                e.evaluate_linear(&r).label(),
                "disagreement for {u}"
            );
        }
    }

    #[test]
    fn extend_with_rules_adds_blocking_rules() {
        let mut e = engine("||tracker.io^\n");
        let before = e.rule_count();
        let extra =
            crate::parser::parse_list("||adnet-42.example^$third-party\n", ListKind::Custom);
        e.extend_with_rules(extra.rules);
        assert_eq!(e.rule_count(), before + 1);
        let r = req(
            "https://px.adnet-42.example/p.gif",
            "shop.com",
            ResourceType::Image,
        );
        assert_eq!(e.label(&r), RequestLabel::Tracking);
    }

    #[test]
    fn extended_engine_matches_a_from_scratch_build() {
        let base = "||tracker.io^\n/collect?\n@@||tracker.io/lib/ok.js$script\n";
        let extra_text = "||adnet.example^$third-party\n@@||adnet.example/allow/\n/pixel/\n";

        let mut extended = engine(base);
        let extra = crate::parser::parse_list(extra_text, ListKind::Custom);
        extended.extend_with_rules(extra.rules);

        let scratch =
            FilterEngine::from_lists(&[(ListKind::EasyList, base), (ListKind::Custom, extra_text)]);

        assert_eq!(extended.rule_count(), scratch.rule_count());
        assert_eq!(
            extended.blocking_rule_count(),
            scratch.blocking_rule_count()
        );
        assert_eq!(
            extended.exception_rule_count(),
            scratch.exception_rule_count()
        );
        let cases = [
            ("https://tracker.io/t.js", ResourceType::Script),
            ("https://tracker.io/lib/ok.js", ResourceType::Script),
            ("https://api.shop.com/collect?id=1", ResourceType::Xhr),
            ("https://px.adnet.example/p.gif", ResourceType::Image),
            ("https://px.adnet.example/allow/p.gif", ResourceType::Image),
            ("https://img.shop.com/pixel/1.gif", ResourceType::Image),
            ("https://img.shop.com/logo.png", ResourceType::Image),
        ];
        for (url, ty) in cases {
            let r = req(url, "shop.com", ty);
            assert_eq!(
                extended.label(&r),
                scratch.label(&r),
                "extended and from-scratch engines disagree for {url}"
            );
            assert_eq!(
                extended.label(&r),
                extended.evaluate_linear(&r).label(),
                "extended engine and linear scan disagree for {url}"
            );
        }
    }

    #[test]
    fn removeparam_rules_are_modifiers_not_blockers() {
        let e = engine("*$removeparam=gclid\n||shop.example^$removeparam=utm_*\n||tracker.io^\n");
        assert_eq!(e.removeparam_rule_count(), 2);
        assert_eq!(e.blocking_rule_count(), 1);
        // A global removeparam rule must not label arbitrary requests.
        let r = req(
            "https://images.shop.com/logo.png?gclid=abc",
            "shop.com",
            ResourceType::Image,
        );
        assert_eq!(e.label(&r), RequestLabel::Functional);
        assert_eq!(
            e.removeparam_rules()[0].options.removeparam,
            vec!["gclid".to_string()]
        );
    }

    #[test]
    fn extend_with_rules_files_removeparam_separately() {
        let mut e = engine("||tracker.io^\n");
        let extra = crate::parser::parse_list("*$removeparam=fbclid\n", ListKind::Custom);
        e.extend_with_rules(extra.rules);
        assert_eq!(e.removeparam_rule_count(), 1);
        assert_eq!(e.blocking_rule_count(), 1);
    }

    #[test]
    fn label_agrees_with_evaluate() {
        let e = engine("||cdn.io^\n@@||cdn.io/lib/jquery.js$script\n");
        let cases = [
            ("https://cdn.io/px.gif", ResourceType::Image),
            ("https://cdn.io/lib/jquery.js", ResourceType::Script),
            ("https://other.org/x.js", ResourceType::Script),
        ];
        for (url, ty) in cases {
            let r = req(url, "shop.com", ty);
            assert_eq!(e.label(&r), e.evaluate(&r).label(), "{url}");
        }
    }

    #[test]
    fn label_url_handles_unparseable_urls() {
        let e = engine("||tracker.io^\n");
        assert_eq!(
            e.label_url("garbage", "shop.com", ResourceType::Script),
            RequestLabel::Functional
        );
    }
}
