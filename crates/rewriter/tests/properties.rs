//! Property-based tests over the rewriter's core guarantees: rewriting is
//! idempotent (a rewritten URL rewrites no further), strips exactly the
//! listed parameters while preserving the order of the survivors and the
//! fragment byte-for-byte, and leaves clean URLs untouched (`None`).

use proptest::prelude::*;
use rewriter::{RewriterBuilder, UrlRewriter};

/// The exact names `default_rules` strips globally (mirrors the builder's
/// curated list so the model predicts the rewriter independently).
const STRIPPED_EXACT: &[&str] = &[
    "gclid",
    "dclid",
    "gbraid",
    "wbraid",
    "fbclid",
    "msclkid",
    "twclid",
    "ttclid",
    "yclid",
    "igshid",
    "mc_eid",
    "mc_cid",
    "mkt_tok",
    "oly_enc_id",
    "oly_anon_id",
    "vero_id",
    "_hsenc",
    "_hsmi",
    "s_cid",
    "wickedid",
    "irclickid",
];

/// The name prefixes `default_rules` strips globally.
const STRIPPED_PREFIXES: &[&str] = &["utm_", "mtm_", "hsa_"];

/// Model of the default rule set: is this parameter name stripped?
fn model_strips(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    STRIPPED_EXACT.contains(&lower.as_str())
        || STRIPPED_PREFIXES.iter().any(|p| lower.starts_with(p))
}

fn default_rewriter() -> UrlRewriter {
    RewriterBuilder::new().default_rules().build()
}

/// A parameter name: mostly clean, sometimes one of the stripped set.
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        // Clean-ish names (may collide with a stripped name by chance;
        // the model predicate, not the generator branch, decides).
        "[a-z][a-z0-9_]{1,8}",
        // Names drawn from the stripped set (exact and prefixed).
        (0usize..STRIPPED_EXACT.len()).prop_map(|i| STRIPPED_EXACT[i].to_string()),
        "utm_[a-z]{1,6}",
        "mtm_[a-z]{1,4}",
        "hsa_[a-z]{1,4}",
    ]
}

/// One query segment: `name=value`, or a bare valueless flag.
fn arb_segment() -> impl Strategy<Value = (String, Option<String>)> {
    (arb_name(), prop::option::of("[a-z0-9]{0,6}"))
}

fn render_segment(segment: &(String, Option<String>)) -> String {
    match &segment.1 {
        Some(value) => format!("{}={value}", segment.0),
        None => segment.0.clone(),
    }
}

fn build_url(host: &str, path: &str, query: &[String], fragment: &Option<String>) -> String {
    let mut url = format!("https://{host}/{path}");
    if !query.is_empty() {
        url.push('?');
        url.push_str(&query.join("&"));
    }
    if let Some(fragment) = fragment {
        url.push('#');
        url.push_str(fragment);
    }
    url
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The rewriter strips exactly the parameters the model predicts,
    /// preserves the survivors' order and bytes, keeps the fragment, and
    /// returns `None` (zero allocation) when nothing is stripped. Its
    /// output is a fixpoint: rewriting it again changes nothing.
    #[test]
    fn strips_exactly_the_listed_params_and_reaches_a_fixpoint(
        host in "[a-z]{3,8}\\.com",
        path in "[a-z0-9]{0,6}",
        segments in prop::collection::vec(arb_segment(), 1..10),
        fragment in prop::option::of("[a-z0-9]{0,5}"),
    ) {
        // Redirect-wrapper names would engage the unwrap rules (covered by
        // their own property below); exclude them here so the strip model
        // stays exact.
        prop_assume!(segments.iter().all(|(name, _)| !matches!(
            name.as_str(),
            "url" | "dest" | "destination" | "redirect" | "redirect_url"
                | "redirect_uri" | "target" | "goto"
        )));
        let rendered: Vec<String> = segments.iter().map(render_segment).collect();
        let input = build_url(&host, &path, &rendered, &fragment);
        let kept: Vec<String> = segments
            .iter()
            .filter(|(name, _)| !model_strips(name))
            .map(render_segment)
            .collect();

        let rewriter = default_rewriter();
        match rewriter.rewrite(&input) {
            None => {
                // Nothing stripped: the model must agree.
                prop_assert_eq!(kept.len(), segments.len(), "model stripped, rewriter kept: {}", input);
            }
            Some(rewritten) => {
                prop_assert!(kept.len() < segments.len(), "rewriter stripped, model kept: {}", input);
                let expected = build_url(&host, &path, &kept, &fragment);
                prop_assert_eq!(rewritten.url(), expected.as_str());
                // Idempotence: the output is a fixpoint.
                prop_assert!(rewriter.rewrite(rewritten.url()).is_none());
            }
        }
    }

    /// Redirect wrappers unwrap to their percent-encoded destination, and
    /// the destination is itself rewritten to a fixpoint.
    #[test]
    fn unwraps_redirect_wrappers_to_the_rewritten_destination(
        inner_host in "[a-z]{3,6}\\.com",
        inner_path in "[a-z]{0,5}",
        id in 0u32..10_000,
        tracked in 0u32..2,
    ) {
        let tracked = tracked == 1;
        let clean = format!("https://{inner_host}/{inner_path}?id={id}");
        let inner = if tracked {
            format!("{clean}&utm_source=wrap")
        } else {
            clean.clone()
        };
        let encoded: String = inner
            .chars()
            .map(|c| match c {
                ':' => "%3A".to_string(),
                '/' => "%2F".to_string(),
                '?' => "%3F".to_string(),
                '&' => "%26".to_string(),
                '=' => "%3D".to_string(),
                other => other.to_string(),
            })
            .collect();
        let wrapper = format!("https://out.example/r?url={encoded}");
        let rewritten = default_rewriter()
            .rewrite(&wrapper)
            .expect("wrappers always rewrite");
        // Whether or not the destination carried identifiers, the result
        // is the clean destination — unwrap, then strip to the fixpoint.
        prop_assert_eq!(rewritten.url(), clean.as_str());
        prop_assert!(default_rewriter().rewrite(rewritten.url()).is_none());
    }
}
