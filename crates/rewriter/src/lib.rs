//! # rewriter — rule-driven URL rewriting for mixed resources
//!
//! TrackerSift's central observation is that many web resources are
//! *mixed*: the request is functional, but the URL carries tracking
//! payloads — campaign parameters (`utm_source`, `gclid`, `fbclid`),
//! mail-merge identifiers (`mc_eid`), or a redirect wrapper whose `?url=`
//! parameter hides the real destination. Blocking such a request breaks
//! the page; allowing it leaks the identifier. The third option — the one
//! this crate implements — is to *rewrite* the URL: strip the listed
//! parameters, unwrap the redirect, and let the cleaned request through.
//!
//! The crate is deliberately small and dependency-free (it reuses the
//! [`filterlist::tokens`] FNV-1a tokenizer for its hot-path prescreen):
//!
//! * [`RewriterBuilder`] assembles rules — global parameter names and
//!   prefixes, per-site rules keyed by registrable domain, redirect
//!   `unwrap` parameters, a curated [`RewriterBuilder::default_rules`]
//!   set, and EasyList-style `$removeparam=` rules straight from a
//!   [`filterlist::FilterEngine`];
//! * [`UrlRewriter::rewrite`] applies them: `None` means "unchanged" and
//!   costs no allocation (a token-hash prescreen over the query string
//!   rejects almost every clean URL before any parsing happens);
//!   `Some(`[`RewrittenUrl`]`)` carries the cleaned URL.
//!
//! ## Example
//!
//! ```
//! use rewriter::RewriterBuilder;
//!
//! let rw = RewriterBuilder::new().default_rules().build();
//!
//! // Tracking parameters are stripped; everything else survives in order.
//! let out = rw
//!     .rewrite("https://shop.example/p?id=7&utm_source=mail&color=red#top")
//!     .expect("utm_source should be stripped");
//! assert_eq!(out.url(), "https://shop.example/p?id=7&color=red#top");
//!
//! // Clean URLs pass through without allocating.
//! assert!(rw.rewrite("https://shop.example/p?id=7&color=red").is_none());
//!
//! // Redirect wrappers are unwrapped to their destination (and the
//! // destination is itself rewritten).
//! let out = rw
//!     .rewrite("https://r.ads.example/click?url=https%3A%2F%2Fnews.example%2Fstory%3Fgclid%3Dabc")
//!     .unwrap();
//! assert_eq!(out.url(), "https://news.example/story");
//! ```
//!
//! Rewriting always reaches a fixpoint: applying [`UrlRewriter::rewrite`]
//! to a URL it has already produced returns `None` (property-tested in the
//! umbrella crate's suite).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod rewriter;

pub use builder::RewriterBuilder;
pub use rewriter::UrlRewriter;

use std::fmt;

/// A URL produced by [`UrlRewriter::rewrite`] — the cleaned form of a
/// request whose original URL carried tracking identifiers.
///
/// This is the payload of the `Decision::Rewrite` enforcement arm: the
/// blocker should *load this URL instead of* the one the page asked for.
/// It deliberately carries nothing but the URL string so the wire codecs
/// (JSON `{"action":"rewrite","url":...}` and the binary `ACTION_REWRITE`
/// frame) round-trip it losslessly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RewrittenUrl {
    url: String,
}

impl RewrittenUrl {
    /// Wrap an already-rewritten URL (used by wire decoders; rewriting
    /// itself goes through [`UrlRewriter::rewrite`]).
    pub fn new(url: impl Into<String>) -> Self {
        RewrittenUrl { url: url.into() }
    }

    /// The cleaned URL the request should be redirected to.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// Consume the wrapper, returning the owned URL string.
    pub fn into_url(self) -> String {
        self.url
    }
}

impl fmt::Display for RewrittenUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.url)
    }
}

impl AsRef<str> for RewrittenUrl {
    fn as_ref(&self) -> &str {
        &self.url
    }
}
