//! Rule assembly for [`UrlRewriter`].

use filterlist::domain::registrable_domain;
use filterlist::rule::FilterRule;
use std::collections::HashMap;

use crate::rewriter::RuleSet;
use crate::UrlRewriter;

/// Builder for a [`UrlRewriter`]: collect rules, then
/// [`build`](RewriterBuilder::build) the compiled, shareable form.
///
/// Rules come from four sources, freely combined:
///
/// * [`strip_param`](Self::strip_param) / [`strip_prefix`](Self::strip_prefix)
///   — global parameter names and name prefixes;
/// * [`strip_param_on`](Self::strip_param_on) — per-site rules, keyed by the
///   registrable domain of the request URL;
/// * [`unwrap_param`](Self::unwrap_param) — redirect-wrapper parameters whose
///   value is the real destination;
/// * [`filter_rules`](Self::filter_rules) — EasyList-style `$removeparam=`
///   rules, e.g. straight from
///   [`FilterEngine::removeparam_rules`](filterlist::FilterEngine::removeparam_rules).
///
/// ```
/// use rewriter::RewriterBuilder;
///
/// let rules = filterlist::parse_list(
///     "*$removeparam=gclid\n||shop.example^$removeparam=session_ref\n",
///     filterlist::ListKind::Custom,
/// );
/// let rw = RewriterBuilder::new()
///     .strip_prefix("utm_")
///     .unwrap_param("url")
///     .filter_rules(&rules.rules)
///     .build();
///
/// let out = rw
///     .rewrite("https://www.shop.example/p?session_ref=9&utm_id=3&q=1")
///     .unwrap();
/// assert_eq!(out.url(), "https://www.shop.example/p?q=1");
/// ```
#[derive(Debug, Clone, Default)]
pub struct RewriterBuilder {
    global: RuleSet,
    per_site: HashMap<String, RuleSet>,
    unwrap: Vec<String>,
}

/// Globally stripped exact parameter names in
/// [`RewriterBuilder::default_rules`]: the cross-site click and campaign
/// identifiers ad networks and mailers append to otherwise functional URLs.
const DEFAULT_STRIP_EXACT: &[&str] = &[
    "gclid",
    "dclid",
    "gbraid",
    "wbraid",
    "fbclid",
    "msclkid",
    "twclid",
    "ttclid",
    "yclid",
    "igshid",
    "mc_eid",
    "mc_cid",
    "mkt_tok",
    "oly_enc_id",
    "oly_anon_id",
    "vero_id",
    "_hsenc",
    "_hsmi",
    "s_cid",
    "wickedid",
    "irclickid",
];

/// Globally stripped name prefixes in [`RewriterBuilder::default_rules`].
const DEFAULT_STRIP_PREFIXES: &[&str] = &["utm_", "mtm_", "hsa_"];

/// Redirect-wrapper parameters unwrapped by
/// [`RewriterBuilder::default_rules`].
const DEFAULT_UNWRAP: &[&str] = &[
    "url",
    "dest",
    "destination",
    "redirect",
    "redirect_url",
    "redirect_uri",
    "target",
    "goto",
];

impl RewriterBuilder {
    /// An empty builder: the resulting rewriter changes nothing until rules
    /// are added.
    pub fn new() -> Self {
        Self::default()
    }

    /// Strip the exactly-named query parameter from every URL.
    pub fn strip_param(mut self, name: &str) -> Self {
        push_unique(&mut self.global.exact, name);
        self
    }

    /// Strip every query parameter whose name starts with `prefix` from
    /// every URL. Prefixes ending at a non-alphanumeric byte (`utm_`) keep
    /// the zero-allocation prescreen sound; a bare alphanumeric prefix
    /// still works but forces a per-URL segment scan.
    pub fn strip_prefix(mut self, prefix: &str) -> Self {
        push_unique(&mut self.global.prefixes, prefix);
        self
    }

    /// Strip a parameter only from URLs under `domain` (compared by
    /// registrable domain, so `shop.example` covers `www.shop.example`).
    /// A trailing `*` in `name` makes it a prefix rule.
    pub fn strip_param_on(mut self, domain: &str, name: &str) -> Self {
        let set = self
            .per_site
            .entry(registrable_domain(&domain.to_ascii_lowercase()))
            .or_default();
        match name.strip_suffix('*') {
            Some(prefix) if !prefix.is_empty() => push_unique(&mut set.prefixes, prefix),
            _ => push_unique(&mut set.exact, name),
        }
        self
    }

    /// Treat `name` as a redirect wrapper: when its value is an absolute
    /// `http(s)` URL (raw or percent-encoded), the rewrite result is that
    /// destination — itself rewritten.
    pub fn unwrap_param(mut self, name: &str) -> Self {
        push_unique(&mut self.unwrap, name);
        self
    }

    /// Add the curated default rule set: `utm_*`-style campaign prefixes,
    /// the common cross-site click identifiers (`gclid`, `fbclid`,
    /// `msclkid`, …), and the usual redirect-wrapper parameters (`url`,
    /// `dest`, `redirect`, …). All of its names carry sound prescreen
    /// tokens, so the zero-allocation pass-through is preserved.
    pub fn default_rules(mut self) -> Self {
        for name in DEFAULT_STRIP_EXACT {
            self = self.strip_param(name);
        }
        for prefix in DEFAULT_STRIP_PREFIXES {
            self = self.strip_prefix(prefix);
        }
        for name in DEFAULT_UNWRAP {
            self = self.unwrap_param(name);
        }
        self
    }

    /// Consume EasyList-style `$removeparam=` rules (e.g. from
    /// [`FilterEngine::removeparam_rules`](filterlist::FilterEngine::removeparam_rules)).
    ///
    /// Scoping is derived per rule: positive `$domain=` entries scope the
    /// names to those registrable domains; otherwise a `||host^` anchor
    /// scopes them to the anchored host's registrable domain; otherwise a
    /// match-all pattern (`*$removeparam=x`) makes them global. Rules whose
    /// pattern constrains URLs in ways a name-level rewriter cannot honour
    /// faithfully (path fragments, for example) are skipped rather than
    /// over-applied. Trailing-`*` names are prefix rules.
    pub fn filter_rules(mut self, rules: &[FilterRule]) -> Self {
        for rule in rules {
            if rule.options.removeparam.is_empty() {
                continue;
            }
            let mut scopes: Vec<String> = rule
                .options
                .domains
                .iter()
                .filter(|d| !d.negated)
                .map(|d| registrable_domain(&d.domain))
                .collect();
            if scopes.is_empty() {
                if let Some(host) = anchored_host(&rule.text) {
                    scopes.push(registrable_domain(host));
                } else if !rule.pattern.is_match_all() {
                    // Pattern-constrained without a host anchor: applying
                    // the names globally would over-strip. Skip.
                    continue;
                }
            }
            for name in &rule.options.removeparam {
                if scopes.is_empty() {
                    self = match name.strip_suffix('*') {
                        Some(prefix) if !prefix.is_empty() => self.strip_prefix(prefix),
                        _ => self.strip_param(name),
                    };
                } else {
                    for domain in &scopes {
                        self = self.strip_param_on(domain, name);
                    }
                }
            }
        }
        self
    }

    /// Compile the collected rules into an immutable [`UrlRewriter`].
    pub fn build(mut self) -> UrlRewriter {
        self.per_site.retain(|_, set| !set.is_empty());
        UrlRewriter::assemble(self.global, self.per_site, self.unwrap)
    }
}

/// Push a lower-cased copy of `value`, skipping duplicates.
fn push_unique(list: &mut Vec<String>, value: &str) {
    let lowered = value.to_ascii_lowercase();
    if !list.contains(&lowered) {
        list.push(lowered);
    }
}

/// The hostname a `||host^`-anchored rule is scoped to, if the rule text
/// starts with a host anchor.
fn anchored_host(text: &str) -> Option<&str> {
    let body = text.strip_prefix("@@").unwrap_or(text);
    let rest = body.strip_prefix("||")?;
    let end = rest.find(['^', '/', '$', '*', '?']).unwrap_or(rest.len());
    let host = &rest[..end];
    (!host.is_empty()
        && host
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b'_'))
    .then_some(host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use filterlist::{parse_list, ListKind};

    #[test]
    fn default_rules_keep_the_prescreen_sound() {
        let rw = RewriterBuilder::new().default_rules().build();
        assert!(rw.rule_count() > 20);
        // Spot-check that a clean query passes through (would be slow but
        // still correct if the prescreen had been disabled; the dedicated
        // micro-bench guards the speed).
        assert!(rw.rewrite("https://a.example/x?page=2&size=10").is_none());
    }

    #[test]
    fn filter_rules_scope_by_domain_option_anchor_or_globally() {
        let parsed = parse_list(
            concat!(
                "*$removeparam=gclid\n",
                "*$removeparam=utm_*\n",
                "||shop.example^$removeparam=sid\n",
                "*$removeparam=aff_id,domain=news.example|~blog.news.example\n",
                "/checkout/$removeparam=step\n", // path-constrained: skipped
            ),
            ListKind::Custom,
        );
        let rw = RewriterBuilder::new().filter_rules(&parsed.rules).build();

        // Global exact + prefix.
        assert_eq!(
            rw.rewrite("https://any.example/?gclid=1&utm_ref=2&q=3")
                .unwrap()
                .url(),
            "https://any.example/?q=3"
        );
        // `||` anchor scopes to the registrable domain.
        assert_eq!(
            rw.rewrite("https://www.shop.example/?sid=1&q=2")
                .unwrap()
                .url(),
            "https://www.shop.example/?q=2"
        );
        assert!(rw.rewrite("https://other.example/?sid=1&q=2").is_none());
        // `$domain=` scopes to the initiator-ish domain of the URL.
        assert_eq!(
            rw.rewrite("https://news.example/?aff_id=1&q=2")
                .unwrap()
                .url(),
            "https://news.example/?q=2"
        );
        // Path-constrained rule was skipped, not applied globally.
        assert!(rw.rewrite("https://any.example/checkout/?step=2").is_none());
    }

    #[test]
    fn duplicate_rules_collapse() {
        let rw = RewriterBuilder::new()
            .strip_param("gclid")
            .strip_param("GCLID")
            .strip_prefix("utm_")
            .strip_prefix("UTM_")
            .build();
        assert_eq!(rw.rule_count(), 2);
    }
}
