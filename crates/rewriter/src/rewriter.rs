//! The compiled rewriter and its matching algorithm.
//!
//! The hot path is [`UrlRewriter::rewrite`] on a URL that does *not*
//! change — the overwhelmingly common case in live traffic. That path
//! performs no allocation: the query string is tokenized with the shared
//! [`filterlist::tokens`] FNV-1a tokenizer and tested against a prebuilt
//! set of *trigger* token hashes (one per rule name); only when a trigger
//! fires does the rewriter parse query segments, and only when a segment
//! actually matches a rule does it build the replacement string.

use filterlist::domain::registrable_suffix;
use filterlist::tokens::{token_hashes, TokenHashBuilder, TokenHashes};
use std::collections::{HashMap, HashSet};

use crate::RewrittenUrl;

/// Parameter-name rules for one scope: the global set or one registrable
/// domain. Names and prefixes are stored lower-cased; matching is ASCII
/// case-insensitive without allocating.
#[derive(Debug, Clone, Default)]
pub(crate) struct RuleSet {
    /// Exact parameter names.
    pub(crate) exact: Vec<String>,
    /// Parameter-name prefixes (`utm_` matches `utm_source`, `utm_medium`, …).
    pub(crate) prefixes: Vec<String>,
}

impl RuleSet {
    pub(crate) fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.prefixes.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.exact.len() + self.prefixes.len()
    }

    fn matches(&self, name: &str) -> bool {
        self.exact.iter().any(|e| name.eq_ignore_ascii_case(e))
            || self
                .prefixes
                .iter()
                .any(|p| starts_with_ignore_case(name, p))
    }
}

/// ASCII case-insensitive prefix test (`prefix` must be ASCII, which every
/// stored rule name is).
fn starts_with_ignore_case(text: &str, prefix: &str) -> bool {
    text.len() >= prefix.len()
        && text.is_char_boundary(prefix.len())
        && text[..prefix.len()].eq_ignore_ascii_case(prefix)
}

/// The query-parameter name of one `&`-separated segment.
fn param_name(segment: &str) -> &str {
    &segment[..segment.find('=').unwrap_or(segment.len())]
}

/// Decode `%XX` escapes. Malformed escapes are kept literally; `None` when
/// the decoded bytes are not valid UTF-8 (such a value cannot be a URL we
/// would ever emit).
fn percent_decode(value: &str) -> Option<String> {
    if !value.contains('%') {
        return Some(value.to_string());
    }
    let bytes = value.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hi = (bytes[i + 1] as char).to_digit(16);
            let lo = (bytes[i + 2] as char).to_digit(16);
            if let (Some(hi), Some(lo)) = (hi, lo) {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8(out).ok()
}

/// If `value` is a percent-encoded (or raw) absolute `http(s)://` URL,
/// return the decoded destination.
fn wrapped_destination(value: &str) -> Option<String> {
    if !starts_with_ignore_case(value, "http") {
        return None;
    }
    let decoded = percent_decode(value)?;
    if starts_with_ignore_case(&decoded, "http://") || starts_with_ignore_case(&decoded, "https://")
    {
        Some(decoded)
    } else {
        None
    }
}

/// The hostname part of a URL head (everything before `?`): the authority
/// after `://`, with userinfo and a numeric port stripped.
fn hostname_of(head: &str) -> Option<&str> {
    let rest = &head[head.find("://")? + 3..];
    let authority = &rest[..rest.find('/').unwrap_or(rest.len())];
    let host = match authority.rfind('@') {
        Some(i) => &authority[i + 1..],
        None => authority,
    };
    let host = match host.rfind(':') {
        Some(i) if host[i + 1..].bytes().all(|b| b.is_ascii_digit()) => &host[..i],
        _ => host,
    };
    (!host.is_empty()).then_some(host)
}

/// A compiled, immutable URL rewriter. Built by
/// [`RewriterBuilder`](crate::RewriterBuilder); shared across serving
/// threads behind an `Arc` (it is `Send + Sync` and never mutated).
#[derive(Debug, Clone, Default)]
pub struct UrlRewriter {
    /// Rules applied to every URL.
    global: RuleSet,
    /// Rules applied only to URLs whose hostname falls under the keyed
    /// registrable domain.
    per_site: HashMap<String, RuleSet>,
    /// Parameters whose value, when it is an absolute `http(s)` URL, *is*
    /// the real destination (redirect wrappers: `?url=`, `?dest=`, …).
    unwrap: Vec<String>,
    /// Token-hash prescreen: a query string none of whose tokens appear
    /// here cannot match any rule, so the URL passes through untouched
    /// without any parsing.
    trigger: HashSet<u64, TokenHashBuilder>,
    /// Set when some rule name yields no token ≥ 3 alphanumeric chars (the
    /// tokenizer's minimum), which makes the prescreen unsound for it —
    /// every URL with a query is then scanned segment by segment.
    always_scan: bool,
}

// Shared read-only across server worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<UrlRewriter>();
};

impl UrlRewriter {
    /// Start building a rewriter (alias for
    /// [`RewriterBuilder::new`](crate::RewriterBuilder::new)).
    pub fn builder() -> crate::RewriterBuilder {
        crate::RewriterBuilder::new()
    }

    /// Assemble the compiled form: store the rule sets and derive the
    /// trigger-hash prescreen from every rule name.
    pub(crate) fn assemble(
        global: RuleSet,
        per_site: HashMap<String, RuleSet>,
        unwrap: Vec<String>,
    ) -> Self {
        let mut trigger = HashSet::with_hasher(TokenHashBuilder);
        let mut always_scan = false;
        {
            let mut add_exact = |name: &str| match token_hashes(name).next() {
                Some(token) => {
                    trigger.insert(token.hash);
                }
                None => always_scan = true,
            };
            for set in std::iter::once(&global).chain(per_site.values()) {
                for name in &set.exact {
                    add_exact(name);
                }
            }
            for name in &unwrap {
                add_exact(name);
            }
        }
        for set in std::iter::once(&global).chain(per_site.values()) {
            for prefix in &set.prefixes {
                match token_hashes(prefix).next() {
                    // A prefix whose first token runs to the end of the
                    // prefix ("utm" as opposed to "utm_") is not a sound
                    // trigger: a matching name extends the run, changing
                    // the hash. Fall back to scanning every query.
                    Some(token) if token.end < prefix.len() => {
                        trigger.insert(token.hash);
                    }
                    _ => always_scan = true,
                }
            }
        }
        UrlRewriter {
            global,
            per_site,
            unwrap,
            trigger,
            always_scan,
        }
    }

    /// Total number of rules (global + per-site + unwrap parameters).
    pub fn rule_count(&self) -> usize {
        self.global.len()
            + self.per_site.values().map(RuleSet::len).sum::<usize>()
            + self.unwrap.len()
    }

    /// `true` when no rule is configured (every URL passes through).
    pub fn is_empty(&self) -> bool {
        self.rule_count() == 0
    }

    /// Rewrite a URL to its tracking-free form.
    ///
    /// Returns `None` when the URL is unchanged — the common case, and an
    /// allocation-free one — or `Some` with the cleaned URL: listed query
    /// parameters stripped (preserving the order, text, and fragment of
    /// everything else) and redirect wrappers unwrapped to their real
    /// destination. The result is a fixpoint: rewriting it again returns
    /// `None`.
    ///
    /// ```
    /// use rewriter::RewriterBuilder;
    ///
    /// let rw = RewriterBuilder::new().strip_param("gclid").build();
    /// let out = rw.rewrite("https://a.example/p?gclid=x&q=1").unwrap();
    /// assert_eq!(out.url(), "https://a.example/p?q=1");
    /// assert!(rw.rewrite(out.url()).is_none());
    /// ```
    pub fn rewrite(&self, url: &str) -> Option<RewrittenUrl> {
        let mut current: Option<String> = None;
        loop {
            let input = current.as_deref().unwrap_or(url);
            match self.rewrite_once(input) {
                Some(next) => {
                    // Every step strictly shrinks the URL (stripping drops
                    // at least one byte, unwrapping keeps a strict suffix
                    // of the decoded query value), which is what bounds
                    // this loop. Enforce it rather than trust it.
                    debug_assert!(next.len() < input.len());
                    if next.len() >= input.len() {
                        break;
                    }
                    current = Some(next);
                }
                None => break,
            }
        }
        current.map(RewrittenUrl::new)
    }

    /// One rewriting step: either unwrap the first redirect-wrapper
    /// parameter, or strip every matching parameter. `None` when nothing
    /// applies.
    fn rewrite_once(&self, url: &str) -> Option<String> {
        let (without_fragment, fragment) = match url.find('#') {
            Some(i) => (&url[..i], &url[i..]),
            None => (url, ""),
        };
        let question = without_fragment.find('?')?;
        let query = &without_fragment[question + 1..];
        if query.is_empty() {
            return None;
        }
        if !self.always_scan
            && !TokenHashes::new(query.as_bytes()).any(|t| self.trigger.contains(&t.hash))
        {
            return None;
        }
        let head = &without_fragment[..question];
        let site = self.site_rules(head);
        let strips_segment = |segment: &str| {
            let name = param_name(segment);
            !name.is_empty() && (self.global.matches(name) || site.is_some_and(|s| s.matches(name)))
        };

        // First pass: does anything apply? (Still allocation-free when the
        // trigger set fired spuriously.)
        let mut strips = false;
        for segment in query.split('&') {
            let name = param_name(segment);
            if name.is_empty() {
                continue;
            }
            if name.len() < segment.len()
                && self.unwrap.iter().any(|u| name.eq_ignore_ascii_case(u))
            {
                if let Some(destination) = wrapped_destination(&segment[name.len() + 1..]) {
                    return Some(destination);
                }
            }
            if strips_segment(segment) {
                strips = true;
            }
        }
        if !strips {
            return None;
        }

        // Second pass: rebuild, keeping unmatched segments byte-for-byte.
        let mut out = String::with_capacity(url.len());
        out.push_str(head);
        let mut first = true;
        for segment in query.split('&') {
            if strips_segment(segment) {
                continue;
            }
            out.push(if first { '?' } else { '&' });
            first = false;
            out.push_str(segment);
        }
        out.push_str(fragment);
        Some(out)
    }

    /// The per-site rule set for the URL's registrable domain, if any.
    fn site_rules(&self, head: &str) -> Option<&RuleSet> {
        if self.per_site.is_empty() {
            return None;
        }
        let host = hostname_of(head)?;
        if host.ends_with('.') || host.bytes().any(|b| b.is_ascii_uppercase()) {
            // Rare denormalised hostname: lower it once for the lookup.
            let lowered = host.trim_end_matches('.').to_ascii_lowercase();
            self.per_site.get(registrable_suffix(&lowered))
        } else {
            self.per_site.get(registrable_suffix(host))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::RewriterBuilder;

    fn defaults() -> super::UrlRewriter {
        RewriterBuilder::new().default_rules().build()
    }

    fn rewritten(rw: &super::UrlRewriter, url: &str) -> String {
        rw.rewrite(url)
            .unwrap_or_else(|| panic!("{url} should rewrite"))
            .into_url()
    }

    #[test]
    fn strips_listed_params_preserving_the_rest() {
        let rw = defaults();
        assert_eq!(
            rewritten(
                &rw,
                "https://shop.example/p?id=7&utm_source=mail&color=red&utm_medium=cpc"
            ),
            "https://shop.example/p?id=7&color=red"
        );
    }

    #[test]
    fn preserves_fragment_and_order() {
        let rw = defaults();
        assert_eq!(
            rewritten(&rw, "https://a.example/x?b=2&gclid=abc&a=1#frag?not=query"),
            "https://a.example/x?b=2&a=1#frag?not=query"
        );
    }

    #[test]
    fn drops_question_mark_when_query_empties() {
        let rw = defaults();
        assert_eq!(
            rewritten(&rw, "https://a.example/x?gclid=abc"),
            "https://a.example/x"
        );
        assert_eq!(
            rewritten(&rw, "https://a.example/x?fbclid=1#top"),
            "https://a.example/x#top"
        );
    }

    #[test]
    fn clean_urls_pass_through() {
        let rw = defaults();
        for url in [
            "https://a.example/x",
            "https://a.example/x?",
            "https://a.example/x?id=1&page=2",
            "https://a.example/x?callback_url=later", // trigger hit, no match
            "https://a.example/utm_source/x?id=1",    // rule name in path, not query
        ] {
            assert!(rw.rewrite(url).is_none(), "{url} should not change");
        }
    }

    #[test]
    fn param_names_match_case_insensitively() {
        let rw = defaults();
        assert_eq!(
            rewritten(&rw, "https://a.example/x?GCLID=abc&id=1"),
            "https://a.example/x?id=1"
        );
        assert_eq!(
            rewritten(&rw, "https://a.example/x?UTM_Source=a&id=1"),
            "https://a.example/x?id=1"
        );
    }

    #[test]
    fn flag_params_without_values_are_stripped() {
        let rw = defaults();
        assert_eq!(
            rewritten(&rw, "https://a.example/x?gclid&id=1"),
            "https://a.example/x?id=1"
        );
    }

    #[test]
    fn per_site_rules_apply_only_to_their_domain() {
        let rw = RewriterBuilder::new()
            .strip_param_on("shop.example", "sid")
            .build();
        assert_eq!(
            rewritten(&rw, "https://www.shop.example/p?sid=9&id=1"),
            "https://www.shop.example/p?id=1"
        );
        assert!(rw.rewrite("https://other.example/p?sid=9&id=1").is_none());
    }

    #[test]
    fn per_site_lookup_handles_uppercase_hostnames() {
        let rw = RewriterBuilder::new()
            .strip_param_on("shop.example", "sid")
            .build();
        assert_eq!(
            rewritten(&rw, "https://WWW.Shop.Example/p?sid=9&id=1"),
            "https://WWW.Shop.Example/p?id=1"
        );
    }

    #[test]
    fn unwraps_redirects_and_cleans_the_destination() {
        let rw = defaults();
        assert_eq!(
            rewritten(
                &rw,
                "https://r.ads.example/click?url=https%3A%2F%2Fnews.example%2Fstory%3Fgclid%3Dabc%26p%3D1"
            ),
            "https://news.example/story?p=1"
        );
        // Raw (unencoded) destination.
        assert_eq!(
            rewritten(&rw, "https://r.ads.example/go?dest=https://news.example/a"),
            "https://news.example/a"
        );
    }

    #[test]
    fn nested_wrappers_unwrap_to_the_innermost_destination() {
        let inner = "https://news.example/story";
        let mid = format!(
            "https://hop.example/r?url={}",
            inner.replace(':', "%3A").replace('/', "%2F")
        );
        let outer = format!(
            "https://r.ads.example/click?url={}",
            mid.replace(':', "%3A")
                .replace('/', "%2F")
                .replace('?', "%3F")
                .replace('=', "%3D")
        );
        let rw = defaults();
        assert_eq!(rewritten(&rw, &outer), inner);
    }

    #[test]
    fn non_url_values_of_unwrap_params_do_not_unwrap() {
        let rw = defaults();
        assert!(rw.rewrite("https://a.example/x?url=section-3").is_none());
        assert!(rw.rewrite("https://a.example/x?dest=httpish").is_none());
    }

    #[test]
    fn rewriting_is_idempotent() {
        let rw = defaults();
        for url in [
            "https://shop.example/p?id=7&utm_source=mail&color=red",
            "https://r.ads.example/click?url=https%3A%2F%2Fnews.example%2F%3Ffbclid%3D1",
            "https://a.example/x?gclid=abc#frag",
        ] {
            let once = rewritten(&rw, url);
            assert!(rw.rewrite(&once).is_none(), "{once} should be a fixpoint");
        }
    }

    #[test]
    fn empty_rewriter_changes_nothing() {
        let rw = RewriterBuilder::new().build();
        assert!(rw.is_empty());
        assert!(rw
            .rewrite("https://a.example/x?utm_source=1&gclid=2")
            .is_none());
    }

    #[test]
    fn ambiguous_prefixes_force_scanning_and_still_match() {
        // "id" yields no ≥3-char token, so the prescreen cannot vouch for
        // it; the rewriter must fall back to scanning and still strip it.
        let rw = RewriterBuilder::new().strip_param("id").build();
        assert_eq!(
            rewritten(&rw, "https://a.example/x?id=1&q=2"),
            "https://a.example/x?q=2"
        );
    }

    #[test]
    fn rule_count_sums_all_scopes() {
        let rw = RewriterBuilder::new()
            .strip_param("gclid")
            .strip_prefix("utm_")
            .strip_param_on("shop.example", "sid")
            .unwrap_param("url")
            .build();
        assert_eq!(rw.rule_count(), 4);
    }
}
