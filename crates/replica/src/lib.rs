//! A read-only replica of a verdict primary: the follower loop, wired to
//! a serving [`VerdictServer`].
//!
//! [`start`] composes three existing pieces into one deployable unit:
//!
//! 1. a [`ReplicaClient`] that bootstraps from the primary's full
//!    snapshot and then polls `GET /v1/snapshot?since=<local version>`
//!    for deltas (re-bootstrapping whenever the primary answers
//!    `410 Gone` because the baseline aged out of its revision ring),
//! 2. a [`TablePublisher`] that atomically publishes each applied state
//!    as a fresh [`VerdictTable`](trackersift::VerdictTable) to lock-free
//!    reader handles, and
//! 3. a [`VerdictServer`] in replica mode
//!    ([`VerdictServer::start_replica`]): decisions, keys, and stats are
//!    served from the published tables; every mutating endpoint answers
//!    `409 Conflict` pointing at the primary.
//!
//! The consistency contract is inherited from
//! [`FollowerState`](trackersift::FollowerState): every table a replica
//! ever serves equals **some exact committed primary version** — a
//! replica can lag, it can never interpolate.
//!
//! ```no_run
//! use trackersift_replica::{start, ReplicaConfig};
//!
//! let replica = start(ReplicaConfig::new("127.0.0.1:8377")).unwrap();
//! println!(
//!     "replica of {} serving on {} at version {}",
//!     replica.status().upstream(),
//!     replica.local_addr(),
//!     replica.status().applied_version(),
//! );
//! replica.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use filterlist::FilterEngine;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use trackersift::{TablePublisher, UrlRewriter};
use trackersift_server::client::{ReplicaClient, RetryPolicy};
use trackersift_server::{ReplicaStatus, ServerConfig, VerdictServer};

/// Configuration of one replica: which primary to follow, how often, and
/// how to serve the result.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The primary's address (`host:port`).
    pub upstream: String,
    /// Delay between delta polls once bootstrapped.
    pub poll_interval: Duration,
    /// Retry behaviour of the sync fetches (shed responses and transport
    /// drops back off under this policy; `410 Gone` is never retried —
    /// its body already carries the re-bootstrap snapshot).
    pub policy: RetryPolicy,
    /// The serving side: where the replica listens, worker count, limits.
    pub server: ServerConfig,
}

impl ReplicaConfig {
    /// Follow the primary at `upstream`, serving on an ephemeral
    /// localhost port with default limits and a 1 s poll interval.
    pub fn new(upstream: impl Into<String>) -> Self {
        ReplicaConfig {
            upstream: upstream.into(),
            poll_interval: Duration::from_secs(1),
            policy: RetryPolicy::default(),
            server: ServerConfig::ephemeral(),
        }
    }
}

/// A running replica: a serving [`VerdictServer`] plus the sync thread
/// keeping it fresh. Dropping (or [`ReplicaServer::shutdown`]) stops
/// both.
#[derive(Debug)]
pub struct ReplicaServer {
    server: Option<VerdictServer>,
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
    sync: Option<JoinHandle<()>>,
}

impl ReplicaServer {
    /// The replica's own bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server
            .as_ref()
            .expect("server lives until shutdown")
            .local_addr()
    }

    /// The live sync gauges (shared with the serving workers' stats
    /// rendering).
    pub fn status(&self) -> &ReplicaStatus {
        &self.status
    }

    /// Stop the sync loop, then the serving workers, and join both.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(sync) = self.sync.take() {
            let _ = sync.join();
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// [`start`] with a locally attached filter engine and URL rewriter.
///
/// Engines and rewriters are configuration, not replicated state: the
/// delta protocol ships verdicts and surrogate plans, and each replica
/// re-attaches its own enforcement plumbing. Pass the same engine and
/// rules the primary serves with for byte-identical engine-sourced
/// decisions.
pub fn start_with_enforcement(
    config: ReplicaConfig,
    engine: Option<Arc<FilterEngine>>,
    rewriter: Option<Arc<UrlRewriter>>,
) -> io::Result<ReplicaServer> {
    let upstream = resolve(&config.upstream)?;
    let mut client = ReplicaClient::new(upstream, config.policy.clone(), engine, rewriter);
    // The bootstrap is part of startup: a replica that cannot reach its
    // primary refuses to serve rather than serving an empty table as if
    // it were a committed state.
    let report = client
        .sync()
        .map_err(|error| io::Error::other(error.to_string()))?;
    let status = Arc::new(ReplicaStatus::new(config.upstream.clone()));
    status.record_sync(report.to, report.to, report.full);
    let (publisher, reader) = TablePublisher::new(Arc::new(client.table()));
    let server = VerdictServer::start_replica(reader, Arc::clone(&status), config.server)?;
    let stop = Arc::new(AtomicBool::new(false));
    let sync = {
        let stop = Arc::clone(&stop);
        let status = Arc::clone(&status);
        let poll_interval = config.poll_interval;
        thread::Builder::new()
            .name("replica-sync".to_string())
            .spawn(move || {
                sync_loop(client, publisher, status, stop, poll_interval);
            })?
    };
    Ok(ReplicaServer {
        server: Some(server),
        status,
        stop,
        sync: Some(sync),
    })
}

/// Start a replica of `config.upstream`: bootstrap synchronously (an
/// unreachable primary fails startup), then serve while a background
/// thread polls deltas every [`ReplicaConfig::poll_interval`] and
/// publishes each applied version atomically.
pub fn start(config: ReplicaConfig) -> io::Result<ReplicaServer> {
    start_with_enforcement(config, None, None)
}

/// The follower loop: poll, apply, publish. Publishes only when the
/// applied version moved (or a re-bootstrap rebuilt the local id space),
/// so an idle primary costs one small HTTP exchange per interval and no
/// table churn.
fn sync_loop(
    mut client: ReplicaClient,
    publisher: TablePublisher,
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
    poll_interval: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        sleep_observing(&stop, poll_interval);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match client.sync() {
            Ok(report) => {
                if report.to != report.from || report.full {
                    publisher.publish(Arc::new(client.table()));
                }
                status.record_sync(report.to, report.to, report.full);
            }
            Err(_) => status.record_error(),
        }
    }
}

/// Sleep `total` in bounded slices so the stop flag is observed promptly.
fn sleep_observing(stop: &AtomicBool, total: Duration) {
    const SLICE: Duration = Duration::from_millis(25);
    let mut left = total;
    while !left.is_zero() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let nap = left.min(SLICE);
        thread::sleep(nap);
        left = left.saturating_sub(nap);
    }
}

/// Resolve `host:port` to the first address it names.
fn resolve(upstream: &str) -> io::Result<SocketAddr> {
    upstream
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "upstream resolves to nothing"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use trackersift::Sifter;

    fn http(addr: SocketAddr, method: &str, target: &str, body: Option<&str>) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        )
        .expect("write request");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("read reply");
        let status: u16 = reply
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let split = reply.find("\r\n\r\n").expect("header terminator");
        (status, reply[split + 4..].to_string())
    }

    #[test]
    fn a_replica_bootstraps_serves_and_refuses_writes() {
        let (writer, _reader) = Sifter::builder().build_concurrent();
        let primary = VerdictServer::start(
            writer,
            ServerConfig {
                workers: 1,
                ..ServerConfig::ephemeral()
            },
        )
        .expect("primary");
        let body = concat!(
            r#"{"observations":[{"domain":"ads.com","hostname":"px.ads.com","#,
            r#""script":"https://pub.com/a.js","method":"send","tracking":true}]}"#,
        );
        let (status, _) = http(primary.local_addr(), "POST", "/v1/observations", Some(body));
        assert_eq!(status, 200);
        let (status, _) = http(primary.local_addr(), "POST", "/v1/commit", None);
        assert_eq!(status, 200);

        let mut config = ReplicaConfig::new(primary.local_addr().to_string());
        config.server.workers = 1;
        config.poll_interval = Duration::from_millis(25);
        let replica = start(config).expect("replica starts");
        assert_eq!(replica.status().applied_version(), 1);

        // The replica serves the primary's verdict...
        let query = concat!(
            r#"{"domain":"ads.com","hostname":"px.ads.com","#,
            r#""script":"https://pub.com/a.js","method":"send"}"#,
        );
        let (status, decision) = http(replica.local_addr(), "POST", "/v1/decisions", Some(query));
        assert_eq!(status, 200);
        assert!(decision.contains(r#""action":"block""#), "got {decision}");

        // ...refuses mutations with a typed conflict...
        let (status, detail) = http(replica.local_addr(), "POST", "/v1/observations", Some(body));
        assert_eq!(status, 409, "mutation must conflict: {detail}");

        // ...and reports its role in stats.
        let (status, stats) = http(replica.local_addr(), "GET", "/v1/stats", None);
        assert_eq!(status, 200);
        assert!(stats.contains(r#""role":"replica""#), "got {stats}");

        // A second commit on the primary flows through the poll loop.
        let body2 = concat!(
            r#"{"observations":[{"domain":"cdn.net","hostname":"a.cdn.net","#,
            r#""script":"https://pub.com/b.js","method":"load","tracking":false}]}"#,
        );
        let (status, _) = http(
            primary.local_addr(),
            "POST",
            "/v1/observations",
            Some(body2),
        );
        assert_eq!(status, 200);
        let (status, _) = http(primary.local_addr(), "POST", "/v1/commit", None);
        assert_eq!(status, 200);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while replica.status().applied_version() < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "replica never caught up: {}",
                replica.status().applied_version()
            );
            thread::sleep(Duration::from_millis(10));
        }
        let query2 = concat!(
            r#"{"domain":"cdn.net","hostname":"a.cdn.net","#,
            r#""script":"https://pub.com/b.js","method":"load"}"#,
        );
        let (status, decision) = http(replica.local_addr(), "POST", "/v1/decisions", Some(query2));
        assert_eq!(status, 200);
        assert!(decision.contains(r#""action":"allow""#), "got {decision}");

        replica.shutdown();
        primary.shutdown();
    }
}
