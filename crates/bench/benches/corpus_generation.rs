//! Criterion benchmark: corpus generation and the parallel crawl substrate
//! (scaling with worker count).

use crawler::{ClusterConfig, CrawlCluster};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use websim::{CorpusGenerator, CorpusProfile};

fn bench_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generation");
    group.sample_size(10);
    group.bench_function("generate_500_sites", |b| {
        b.iter(|| {
            CorpusGenerator::generate(&CorpusProfile::small().with_sites(500), 3)
                .websites
                .len()
        })
    });

    let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(500), 3);
    for workers in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("crawl_500_sites", workers),
            &workers,
            |b, &w| {
                let cluster = CrawlCluster::new(ClusterConfig::default().with_workers(w));
                b.iter(|| cluster.crawl(&corpus).script_initiated_requests())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_corpus);
criterion_main!(benches);
