//! Criterion benchmark: labeling a crawl database (the §3 pipeline stage).

use crawler::{ClusterConfig, CrawlCluster};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use trackersift::Labeler;
use websim::{CorpusGenerator, CorpusProfile};

fn bench_labeling(c: &mut Criterion) {
    let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(300), 5);
    let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
    let engine = websim::filter_rules::engine_for(&corpus.ecosystem);

    let mut group = c.benchmark_group("labeling");
    group.throughput(Throughput::Elements(db.total_requests() as u64));
    group.sample_size(20);
    group.bench_function("label_database", |b| {
        b.iter(|| {
            let (requests, _) = Labeler::new(&engine).label_database(&db);
            requests.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_labeling);
criterion_main!(benches);
