//! Criterion benchmark: the hierarchical classifier (Tables 1–2) and the
//! threshold sweep (Figure 4) over a pre-labeled request set.

use crawler::{ClusterConfig, CrawlCluster};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use trackersift::{HierarchicalClassifier, Labeler, SensitivitySweep, Thresholds};
use websim::{CorpusGenerator, CorpusProfile};

fn bench_hierarchy(c: &mut Criterion) {
    let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(400), 13);
    let db = CrawlCluster::new(ClusterConfig::default()).crawl(&corpus);
    let engine = websim::filter_rules::engine_for(&corpus.ecosystem);
    let (requests, _) = Labeler::new(&engine).label_database(&db);

    let mut group = c.benchmark_group("hierarchy_pipeline");
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.sample_size(20);
    group.bench_function("four_level_classification", |b| {
        b.iter(|| HierarchicalClassifier::new(Thresholds::paper()).classify(&requests))
    });
    group.sample_size(10);
    group.bench_function("figure4_threshold_sweep", |b| {
        b.iter(|| SensitivitySweep::run(&requests, 1.0, 3.0, 0.5))
    });
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
