//! Criterion benchmark: filter-list matching throughput, token index vs the
//! linear-scan baseline (the ablation for the index design choice).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use filterlist::{FilterEngine, FilterRequest};
use websim::{CorpusGenerator, CorpusProfile};

fn requests_and_engine() -> (Vec<FilterRequest>, FilterEngine) {
    let corpus = CorpusGenerator::generate(&CorpusProfile::small().with_sites(200), 7);
    let engine = websim::filter_rules::engine_for(&corpus.ecosystem);
    let mut requests = Vec::new();
    for site in &corpus.websites {
        let source = site.hostname.clone();
        for script in &site.scripts {
            for (_, planned) in script.planned_requests() {
                if let Some(req) = FilterRequest::new(&planned.url, &source, planned.resource_type)
                {
                    requests.push(req);
                }
            }
        }
    }
    (requests, engine)
}

fn bench_filter_matching(c: &mut Criterion) {
    let (requests, engine) = requests_and_engine();
    let mut group = c.benchmark_group("filter_matching");
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.sample_size(20);

    group.bench_function("token_index", |b| {
        b.iter_batched(
            || requests.clone(),
            |reqs| {
                reqs.iter()
                    .filter(|r| engine.label(r).is_tracking())
                    .count()
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("linear_scan_baseline", |b| {
        b.iter_batched(
            || requests.clone(),
            |reqs| {
                reqs.iter()
                    .filter(|r| engine.evaluate_linear(r).label().is_tracking())
                    .count()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_filter_matching);
criterion_main!(benches);
