//! Criterion benchmark: call-graph construction and divergence-point search
//! over the mixed-method residue (Figure 5), plus surrogate generation.

use criterion::{criterion_group, criterion_main, Criterion};
use trackersift::{generate_surrogates, Study, StudyConfig};

fn bench_callstack(c: &mut Criterion) {
    let study = Study::run(StudyConfig::small().with_sites(300));

    let mut group = c.benchmark_group("callstack_analysis");
    group.sample_size(20);
    group.bench_function("mixed_method_call_graphs", |b| {
        b.iter(|| study.callstack_analysis().mixed_methods())
    });
    group.bench_function("surrogate_generation", |b| {
        b.iter(|| generate_surrogates(&study.hierarchy, &study.requests).len())
    });
    group.finish();
}

criterion_group!(benches, bench_callstack);
criterion_main!(benches);
