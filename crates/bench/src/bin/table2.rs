//! Regenerates the paper's **Table 2**: classification of unique *resources*
//! (domains, hostnames, scripts, methods) with per-level separation factors,
//! plus the "notable resources" listing from the paper's prose.

use trackersift::report::{render_notable, render_table2};
use trackersift::Granularity;

fn main() {
    let study = trackersift_bench::run_experiment_study("table2");
    print!("{}", render_table2(&study.hierarchy));
    println!();
    for granularity in [Granularity::Domain, Granularity::Hostname] {
        print!("{}", render_notable(study.hierarchy.level(granularity), 5));
        println!();
    }
}
