//! Regenerates the paper's **Table 2**: classification of unique *resources*
//! (domains, hostnames, scripts, methods) with per-level separation factors,
//! plus the "notable resources" listing from the paper's prose.

use trackersift::report::{render_notable, render_table2};
use trackersift::Granularity;

fn main() {
    let study = trackersift_bench::run_experiment_study("table2");
    // Read the classification through the serving API: the sifter's
    // committed export is byte-identical to the study's batch hierarchy.
    let hierarchy = study.sifter().hierarchy();
    print!("{}", render_table2(&hierarchy));
    println!();
    for granularity in [Granularity::Domain, Granularity::Hostname] {
        print!("{}", render_notable(hierarchy.level(granularity), 5));
        println!();
    }
}
