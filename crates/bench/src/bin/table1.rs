//! Regenerates the paper's **Table 1**: classification of *requests* at the
//! domain, hostname, script and method granularities, with per-level and
//! cumulative separation factors.

use trackersift::report::{render_headline, render_table1};

fn main() {
    let study = trackersift_bench::run_experiment_study("table1");
    // Read the classification through the serving API: the sifter's
    // committed export is byte-identical to the study's batch hierarchy.
    let hierarchy = study.sifter().hierarchy();
    print!("{}", render_table1(&hierarchy));
    println!();
    print!("{}", render_headline(&trackersift::headline(&hierarchy)));
}
